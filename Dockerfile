# Container image for the HTTP serving layer (`repro serve`).
#
#   docker build -t probesim-serve .
#   docker run --rm -p 8080:8080 probesim-serve
#
# The default command serves the tiny wiki-vote stand-in dataset with
# query-seeded RNG (answers are pure functions of (config, graph, query),
# which is what makes request coalescing byte-exact).  To serve your own
# graph, mount an edge list and override the command:
#
#   docker run --rm -p 8080:8080 -v /path/to/graph.txt:/data/graph.txt \
#       probesim-serve repro serve /data/graph.txt --host 0.0.0.0 --port 8080

FROM python:3.12-slim

WORKDIR /app

# Layer the dependency install ahead of the source copy so rebuilding after
# a code change reuses the cached numpy/scipy wheels.
COPY pyproject.toml README.md ./
RUN pip install --no-cache-dir numpy scipy

COPY src ./src
# [server] is the (currently empty) extra naming the serving deployment.
RUN pip install --no-cache-dir .[server]

EXPOSE 8080

# --host 0.0.0.0: the server must bind all interfaces to be reachable
# through the container's published port.
CMD ["repro", "serve", "--dataset", "wiki-vote", "--scale", "tiny", \
     "--host", "0.0.0.0", "--port", "8080", \
     "--seed", "7", "--query-seeded", \
     "--eps-a", "0.2", "--delta", "0.1", "--num-walks", "100"]

HEALTHCHECK --interval=10s --timeout=3s --start-period=15s \
    CMD ["python", "-c", \
         "import json, urllib.request; \
          h = json.load(urllib.request.urlopen('http://127.0.0.1:8080/healthz', timeout=2)); \
          assert h['status'] == 'ok', h"]
