"""E-A1 — ablation: the §4.1 pruning rules and the error-budget split.

DESIGN.md calls out two design choices for ablation:
(1) pruning on/off — walk truncation + score pruning buy speed for a bounded
    one-sided error;
(2) how the Theorem 2 budget is split between sampling / truncation / pruning.
"""

import pytest

from conftest import SCALE, emit_table, get_csr, get_ground_truth, get_queries, make_probesim
from repro.eval.metrics import abs_error_max

DATASET = "as"  # mid-density small stand-in


def _run(engine, queries, truth):
    errors, times, probes = [], [], 0
    for query in queries:
        result = engine.single_source(query)
        errors.append(abs_error_max(result.scores, truth.single_source(query), query))
        times.append(result.elapsed)
        probes += engine.last_stats.num_probes
    return {
        "abs_error": sum(errors) / len(errors),
        "query_time_s": sum(times) / len(times),
        "probes": probes,
    }


def test_ablation_pruning_on_off(benchmark):
    truth = get_ground_truth(DATASET)
    queries = get_queries(DATASET, 3)

    def run_all():
        rows = []
        for label, overrides in (
            ("pruned (paper)", {"prune": True}),
            ("unpruned", {"prune": False}),
        ):
            engine = make_probesim(DATASET, eps_a=0.1, **overrides)
            row = {"config": label}
            row.update(_run(engine, queries, truth))
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit_table("ablation_pruning", rows, f"Ablation: pruning rules, scale={SCALE}")
    pruned, unpruned = rows
    # both honour the budget; pruning must not cost accuracy beyond eps_a
    assert pruned["abs_error"] <= 0.1
    assert unpruned["abs_error"] <= 0.1


@pytest.mark.parametrize(
    "split",
    [
        (0.5, 0.4, 0.1),
        (0.7, 0.2, 0.1),  # the library default
        (0.9, 0.08, 0.02),
    ],
    ids=["sampling-light", "default", "sampling-heavy"],
)
def test_ablation_budget_split(benchmark, split):
    """More budget to sampling -> more walks (slower) but smaller sampling
    error; the guarantee holds at every valid split."""
    sampling, truncation, pruning = split
    truth = get_ground_truth(DATASET)
    queries = get_queries(DATASET, 2)
    engine = make_probesim(
        DATASET,
        eps_a=0.1,
        sampling_fraction=sampling,
        truncation_fraction=truncation,
        pruning_fraction=pruning,
    )

    def run():
        return _run(engine, queries, truth)

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    row["split(s,t,p)"] = str(split)
    row["num_walks"] = engine.config.walk_count(get_csr(DATASET).num_nodes)
    emit_table("ablation_budget", [row], f"Ablation: budget split {split}, scale={SCALE}")
    assert row["abs_error"] <= 0.1
