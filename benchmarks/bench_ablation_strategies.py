"""E-A2 — ablation: basic vs batch vs randomized vs hybrid (§3.2, §4.2-4.4).

The batching claim: deduplicating shared walk prefixes in the reachability
tree reduces the number of PROBE invocations; hybrid adds the worst-case
escape hatch.  Also ablates the deterministic-probe backend (python dicts vs
vectorized numpy).
"""

import pytest

from conftest import SCALE, emit_table, get_ground_truth, get_queries, make_probesim
from repro.eval.metrics import abs_error_max

DATASET = "wiki-vote"
STRATEGIES = ["basic", "batch", "randomized", "hybrid"]


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_ablation_strategy(benchmark, strategy):
    truth = get_ground_truth(DATASET)
    query = get_queries(DATASET, 1)[0]
    engine = make_probesim(DATASET, eps_a=0.1, strategy=strategy)
    result = benchmark.pedantic(
        engine.single_source, args=(query,), rounds=2, iterations=1
    )
    error = abs_error_max(result.scores, truth.single_source(query), query)
    stats = engine.last_stats
    emit_table(
        "ablation_strategies",
        [
            {
                "strategy": strategy,
                "abs_error": error,
                "probes": stats.num_probes,
                "tree_nodes": stats.num_tree_nodes,
                "hybrid_switches": stats.num_hybrid_switches,
                "query_time_s": stats.elapsed,
            }
        ],
        f"Ablation: strategy={strategy}, scale={SCALE}",
    )
    assert error <= 0.1  # every strategy keeps the guarantee


def test_ablation_batching_reduces_probes(benchmark):
    """The §4.2 claim, measured: batch probes <= basic probes on the same
    walk multiset (identical seed)."""
    query = get_queries(DATASET, 1)[0]

    def run_both():
        basic = make_probesim(DATASET, eps_a=0.1, strategy="basic", seed=7)
        basic.single_source(query)
        batch = make_probesim(DATASET, eps_a=0.1, strategy="batch", seed=7)
        batch.single_source(query)
        return basic.last_stats, batch.last_stats

    basic_stats, batch_stats = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit_table(
        "ablation_strategies",
        [
            {
                "metric": "probe invocations",
                "basic": basic_stats.num_probes,
                "batch": batch_stats.num_probes,
                "saved": basic_stats.num_probes - batch_stats.num_probes,
            }
        ],
        "Ablation: batching saves probes (same walks)",
    )
    assert batch_stats.num_probes <= basic_stats.num_probes


@pytest.mark.parametrize("backend", ["vectorized", "python"])
def test_ablation_backend(benchmark, backend):
    """numpy frontier propagation vs the dict-based reference backend."""
    query = get_queries(DATASET, 1)[0]
    engine = make_probesim(
        DATASET, eps_a=0.15, strategy="batch", backend=backend, num_walks=300
    )
    result = benchmark.pedantic(
        engine.single_source, args=(query,), rounds=2, iterations=1
    )
    assert result.score(query) == 1.0
