"""E-B1 — batched trie-sharing engine vs per-prefix loop engine.

The tentpole claim of the batched engine: replacing the per-prefix probe
loop with one level-synchronous sparse-matmul sweep over the prefix trie
turns the dominant per-query cost into a handful of C-level kernels.  This
bench measures both engines on the identical workload (same seed, so the
walk multiset and trie are bit-identical) across graph sizes, single-query
and service-batch shapes, and asserts the headline acceptance number:
**>= 3x single-query speedup at n ~ 10k, R ~ 1000**.

A third arm measures the **native kernel engine** (``engine="native"``,
:mod:`repro.core.native`) on the same workload shapes.  Its walks come
from a counter RNG, so loop-vs-native is a same-statistics comparison,
not a same-walks one; correctness is held by the engine's own parity and
oracle suites.  Headline: **>= 10x single-query over the loop engine at
n ~ 10k, R ~ 1000 on the numba backend**; the numpy fallback (this
container, and any install without the ``[native]`` extra) is held to a
**>= 5x** floor.  ``--json-native`` writes the native arm's gate report
(``benchmarks/baselines/BENCH_native.json`` is the committed baseline).

Run through pytest (``pytest benchmarks/bench_batched_engine.py -q``) or
standalone (``python benchmarks/bench_batched_engine.py``) — standalone
skips nothing and prints the same tables.
"""

import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from conftest import emit_table  # noqa: E402

from repro.core.engine import ProbeSim  # noqa: E402
from repro.graph import CSRGraph  # noqa: E402
from repro.graph.generators import erdos_renyi_graph  # noqa: E402

#: REPRO_SMOKE=1 shrinks everything to seconds (CI bench-smoke job) and
#: disables the headline assertion, which needs the full acceptance sizes.
SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")

#: (num_nodes, num_edges) series; the n = 10k rows are the acceptance config.
if SMOKE:
    SIZES = [(500, 2_500), (2_000, 8_000)]
    NUM_WALKS = 200
    HEADLINE_N = 2_000
else:
    SIZES = [(1_000, 5_000), (4_000, 20_000), (10_000, 30_000), (10_000, 50_000)]
    NUM_WALKS = 1_000
    HEADLINE_N = 10_000
HEADLINE_SPEEDUP = 3.0
#: native-arm acceptance: compiled kernels must clear 10x; the numpy
#: fallback trades the compiled inner loops for vectorized primitives and
#: is held to a 5x floor (same workload, same acceptance point).
NATIVE_HEADLINE_NUMBA = 10.0
NATIVE_HEADLINE_FALLBACK = 5.0
BATCH_QUERIES = 16

_graphs: dict[tuple[int, int], CSRGraph] = {}


def get_graph(n: int, m: int) -> CSRGraph:
    """Cached uniform random digraph with its probe operator prebuilt."""
    if (n, m) not in _graphs:
        csr = CSRGraph.from_digraph(erdos_renyi_graph(n, num_edges=m, seed=7))
        csr.backward_operator  # build outside the timed region
        _graphs[(n, m)] = csr
    return _graphs[(n, m)]


def make_engine(csr: CSRGraph, engine: str) -> ProbeSim:
    return ProbeSim(
        csr, strategy="batch", engine=engine, c=0.6, eps_a=0.1,
        num_walks=NUM_WALKS, seed=3,
    )


def best_of(fn, rounds: int = 3) -> float:
    """Minimum wall-clock over ``rounds`` runs (robust to scheduler noise)."""
    best = float("inf")
    for _ in range(rounds):
        begin = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - begin)
    return best


def time_single_query(n: int, m: int) -> dict:
    csr = get_graph(n, m)
    query = n // 2
    # fresh engine per round: the loop/batched arms then sample identical
    # walks; the native arm warms its context + kernel dispatch first so
    # the timed rounds measure the steady state every serving tier sees
    make_engine(csr, "batched").single_source(query)  # warm allocator/caches
    make_engine(csr, "native").single_source(query)
    loop_s = best_of(lambda: make_engine(csr, "loop").single_source(query), rounds=4)
    batched_s = best_of(
        lambda: make_engine(csr, "batched").single_source(query), rounds=4
    )
    native_s = best_of(
        lambda: make_engine(csr, "native").single_source(query), rounds=4
    )
    probe = make_engine(csr, "batched")
    probe.single_source(query)
    return {
        "n": n,
        "m": m,
        "walks": NUM_WALKS,
        "tree_nodes": probe.last_stats.num_tree_nodes,
        "loop_s": round(loop_s, 4),
        "batched_s": round(batched_s, 4),
        "native_s": round(native_s, 4),
        "speedup": round(loop_s / batched_s, 2),
        "native_speedup": round(loop_s / native_s, 2),
    }


def time_query_batch(n: int, m: int, num_queries: int) -> dict:
    csr = get_graph(n, m)
    queries = [(n // 4 + i) % n for i in range(num_queries)]
    loop_s = best_of(
        lambda: make_engine(csr, "loop").single_source_many(queries), rounds=1
    )
    batched_s = best_of(
        lambda: make_engine(csr, "batched").single_source_many(queries), rounds=1
    )
    native_s = best_of(
        lambda: make_engine(csr, "native").single_source_many(queries), rounds=1
    )
    return {
        "n": n,
        "queries": num_queries,
        "loop_s": round(loop_s, 4),
        "batched_s": round(batched_s, 4),
        "native_s": round(native_s, 4),
        "per_query_ms": round(1000 * batched_s / num_queries, 1),
        "speedup": round(loop_s / batched_s, 2),
        "native_speedup": round(loop_s / native_s, 2),
    }


_single_rows: list[dict] = []


def run_single_query_rows() -> list[dict]:
    """Single-query speedups across sizes (shared by pytest and --json).

    Memoized: the loop/batched and native headline tests assert over one
    measurement run instead of timing the whole matrix twice.
    """
    if not _single_rows:
        _single_rows.extend(time_single_query(n, m) for n, m in SIZES)
        emit_table(
            "batched_engine",
            _single_rows,
            f"Batched vs loop vs native engine: single query, R={NUM_WALKS}",
        )
    return _single_rows


def test_single_query_speedup_across_sizes():
    """Headline: >= 3x single-query speedup at the n ~ 10k acceptance point
    (informational only under the smoke preset — the sizes are too small)."""
    rows = run_single_query_rows()
    headline = [r["speedup"] for r in rows if r["n"] == HEADLINE_N]
    if SMOKE:
        assert headline, rows  # ran, produced numbers; that is all smoke asks
        return
    assert max(headline) >= HEADLINE_SPEEDUP, rows
    assert all(s > 1.5 for s in headline), rows


def native_headline_floor() -> float:
    """The single-query acceptance floor for the running native backend."""
    from repro.core.native import native_backend

    return (NATIVE_HEADLINE_NUMBA if native_backend() == "numba"
            else NATIVE_HEADLINE_FALLBACK)


def test_native_single_query_speedup():
    """Native-arm headline: >= 10x over the loop engine at the acceptance
    point on numba, >= 5x on the numpy fallback (informational under the
    smoke preset — the sizes are too small for timing ratios to mean much)."""
    rows = run_single_query_rows()
    headline = [r["native_speedup"] for r in rows if r["n"] == HEADLINE_N]
    if SMOKE:
        assert headline, rows
        return
    assert max(headline) >= native_headline_floor(), rows


def test_native_answers_are_bit_reproducible():
    """The native arm's serving contract: a fresh engine returns the exact
    bytes of the previous one for the same (seed, query)."""
    import numpy as np

    csr = get_graph(*SIZES[0])
    query = SIZES[0][0] // 2
    a = make_engine(csr, "native").single_source(query).scores
    b = make_engine(csr, "native").single_source(query).scores
    np.testing.assert_array_equal(a, b)


def run_query_batch_rows() -> list[dict]:
    """Service-batch speedups (shared by pytest and --json)."""
    rows = [time_query_batch(n, m, BATCH_QUERIES) for n, m in (SIZES[0], SIZES[-1])]
    emit_table(
        "batched_engine",
        rows,
        f"Batched vs loop engine: {BATCH_QUERIES}-query service batch",
    )
    return rows


def test_query_batch_throughput():
    """Service batches: the forest sweep amortizes per-level Python overhead
    across every query in the batch (dramatic on small graphs, still a clear
    win at the acceptance size)."""
    rows = run_query_batch_rows()
    if SMOKE:
        return  # timing ratios at smoke sizes are noise; the run is the test
    for row in rows:
        assert row["speedup"] > 1.0, row


def test_engines_answer_identically():
    """The comparison is apples-to-apples: same seed, same walks, and
    (pruning off) the same scores to float round-off."""
    import numpy as np

    csr = get_graph(1_000, 5_000)
    shared = dict(strategy="batch", c=0.6, eps_a=0.1, num_walks=300, seed=3,
                  prune=False, max_walk_length=8)
    a = ProbeSim(csr, engine="loop", **shared).single_source(5).scores
    b = ProbeSim(csr, engine="batched", **shared).single_source(5).scores
    np.testing.assert_allclose(a, b, rtol=0, atol=1e-12)


def main(argv=None) -> int:
    """Standalone entry point; ``--json`` feeds the perf-regression gate."""
    import argparse
    import json
    from pathlib import Path

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default=None,
                        help="write the machine-readable report here")
    parser.add_argument("--json-native", default=None, dest="json_native",
                        help="write the native arm's gate report here "
                             "(baseline: benchmarks/baselines/BENCH_native.json)")
    args = parser.parse_args(argv)

    test_engines_answer_identically()
    test_native_answers_are_bit_reproducible()
    single_rows = run_single_query_rows()
    batch_rows = run_query_batch_rows()
    if not SMOKE:
        headline = [r["speedup"] for r in single_rows if r["n"] == HEADLINE_N]
        assert max(headline) >= HEADLINE_SPEEDUP, single_rows
        native_headline = [
            r["native_speedup"] for r in single_rows if r["n"] == HEADLINE_N
        ]
        assert max(native_headline) >= native_headline_floor(), single_rows
    if args.json:
        # gate on absolute batched-engine latencies (monotone under a slow
        # commit vs a same-hardware baseline); loop-vs-batched speedup
        # ratios are machine-shaped, so they ride along under "derived"
        # and the >= 3x headline stays enforced by the assert above.
        gate = {}
        derived = {}
        for row in single_rows:
            derived[f"speedup:single:n{row['n']}-m{row['m']}"] = row["speedup"]
            gate[f"latency:single-batched_s:n{row['n']}-m{row['m']}"] = row["batched_s"]
        for row in batch_rows:
            derived[f"speedup:batch:n{row['n']}"] = row["speedup"]
            gate[f"latency:batch-batched_s:n{row['n']}"] = row["batched_s"]
        import multiprocessing

        payload = {
            "bench": "batched_engine",
            "preset": "smoke" if SMOKE else "full",
            "cores": multiprocessing.cpu_count(),
            "walks": NUM_WALKS,
            "single_query": single_rows,
            "query_batch": batch_rows,
            "derived": derived,
            "gate": gate,
        }
        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                       encoding="utf-8")
        print(f"wrote JSON report to {out}")
    if args.json_native:
        # the native arm gates on its own absolute latencies so a kernel
        # regression can't hide behind a loop-engine slowdown; speedup
        # ratios are machine-shaped and ride along under "derived".  The
        # backend is recorded because the two backends have different
        # performance envelopes — a baseline blessed on one must not gate
        # the other (--strict flags the metric-set mismatch).
        from repro.core.native import native_backend

        import multiprocessing

        gate = {}
        derived = {}
        for row in single_rows:
            key = f"n{row['n']}-m{row['m']}"
            gate[f"latency:single-native_s:{key}"] = row["native_s"]
            derived[f"speedup:single-native:{key}"] = row["native_speedup"]
        for row in batch_rows:
            gate[f"latency:batch-native_s:n{row['n']}"] = row["native_s"]
            derived[f"speedup:batch-native:n{row['n']}"] = row["native_speedup"]
        payload = {
            "bench": "native_engine",
            "preset": "smoke" if SMOKE else "full",
            "cores": multiprocessing.cpu_count(),
            "backend": native_backend(),
            "walks": NUM_WALKS,
            "single_query": single_rows,
            "query_batch": batch_rows,
            "derived": derived,
            "gate": gate,
        }
        out = Path(args.json_native)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                       encoding="utf-8")
        print(f"wrote native JSON report to {out}")
    print("bench_batched_engine: all assertions passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
