"""E-A3 — dynamic graphs: the paper's motivating scenario (§1).

Compares, under a stream of edge updates interleaved with queries:
- ProbeSim: index-free; an O(m) snapshot refresh is its entire maintenance;
- TSF: incremental one-way-graph maintenance (the only updatable index);
- TSF with full rebuilds (the SLING-style worst case the paper argues
  against, stood in by rebuilding TSF's index every update).
"""

import pytest

from conftest import SCALE, emit_table, get_dataset, make_probesim
from repro.baselines.tsf import TSFIndex
from repro.graph import apply_update, generate_update_stream
from repro.utils.timer import Timer

DATASET = "as"
NUM_UPDATES = 30


@pytest.fixture()
def workload():
    graph = get_dataset(DATASET).copy()
    stream = generate_update_stream(graph, NUM_UPDATES, seed=3)
    return graph, stream


def test_dynamic_probesim_maintenance(benchmark, workload):
    graph, stream = workload
    engine = make_probesim(DATASET, eps_a=0.15)
    engine._source_graph = graph  # query the evolving copy

    def run_stream():
        maintenance = Timer()
        for update in stream:
            apply_update(graph, update)
            with maintenance:
                engine.sync()
        return maintenance.elapsed / len(stream)

    per_update = benchmark.pedantic(run_stream, rounds=1, iterations=1)
    emit_table(
        "dynamic",
        [{"method": "probesim (sync)", "maintenance_per_update_s": per_update}],
        f"Dynamic updates: ProbeSim maintenance, scale={SCALE}",
    )
    result = engine.single_source(0)
    assert result.score(0) == 1.0


def test_dynamic_tsf_incremental_vs_rebuild(benchmark, workload):
    graph, stream = workload

    def run_stream():
        incremental = TSFIndex(graph, rg=60, rq=4, seed=5)
        inc_timer = Timer()
        rebuild_timer = Timer()
        rebuild_index = TSFIndex(graph, rg=60, rq=4, seed=6)
        for update in stream:
            apply_update(graph, update)
            with inc_timer:
                incremental.apply_update(update)
            with rebuild_timer:
                rebuild_index.sync()
        return (
            inc_timer.elapsed / len(stream),
            rebuild_timer.elapsed / len(stream),
        )

    inc_per_update, rebuild_per_update = benchmark.pedantic(
        run_stream, rounds=1, iterations=1
    )
    emit_table(
        "dynamic",
        [
            {
                "method": "tsf (incremental)",
                "maintenance_per_update_s": inc_per_update,
            },
            {
                "method": "tsf (full rebuild)",
                "maintenance_per_update_s": rebuild_per_update,
            },
            {
                "method": "speedup",
                "maintenance_per_update_s": rebuild_per_update
                / max(inc_per_update, 1e-12),
            },
        ],
        f"Dynamic updates: TSF incremental vs rebuild, scale={SCALE}",
    )
    # the reason TSF is the paper's dynamic competitor: incremental
    # maintenance is much cheaper than rebuilding
    assert inc_per_update < rebuild_per_update


def test_dynamic_query_freshness(benchmark, workload):
    """After the stream, a refreshed ProbeSim answers against the *current*
    graph within its error budget (the real-time-queries claim)."""
    from repro.eval.ground_truth import compute_ground_truth
    from repro.eval.metrics import abs_error_max

    graph, stream = workload
    for update in stream:
        apply_update(graph, update)
    engine = make_probesim(DATASET, eps_a=0.1)
    engine._source_graph = graph
    engine.sync()
    truth = compute_ground_truth(graph, c=0.6, iterations=40)
    query = 5

    result = benchmark.pedantic(
        engine.single_source, args=(query,), rounds=1, iterations=1
    )
    error = abs_error_max(result.scores, truth.single_source(query), query)
    emit_table(
        "dynamic",
        [{"method": "probesim post-stream", "abs_error": error}],
        "Dynamic updates: freshness after the stream",
    )
    assert error <= 0.1
