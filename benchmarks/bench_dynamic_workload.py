"""E-A4 — heavy mixed traffic: queries under an interleaved update stream.

The paper's §1 motivation measured end to end: one reproducible trace of
Zipf-skewed queries interleaved with edge updates is replayed, per
read/write ratio, against

- ``probesim-batched`` — index-free, vectorized; maintenance is an O(m)
  snapshot re-sync;
- ``tsf`` — the updatable index baseline; incremental one-way-graph
  patching per update;
- ``probesim-walkindex`` — the §7 walk cache; fine-grained invalidation
  per update.

Unlike ``bench_dynamic_updates.py`` (which times maintenance in isolation),
this bench measures *interference*: per-op latency percentiles and
sustained QPS while the update stream competes with the query path.
Besides the usual text tables, it writes a machine-readable JSON report
(p50/p95/p99, QPS, maintenance, staleness, per-method digests) to
``benchmarks/results/<scale>/bench_dynamic_workload.json``.
"""

from conftest import RESULTS_DIR, SCALE, TSF_RG, TSF_RQ, emit_table, get_dataset
from repro.eval.reporting import write_json_report
from repro.workloads import generate_workload, run_workload

DATASET = "as"
SEED = 2017
READ_FRACTIONS = [0.5, 0.9, 0.99]
METHODS = ["probesim-batched", "tsf", "probesim-walkindex"]
NUM_OPS = {"tiny": 150, "small": 600, "paper": 2000}[SCALE]
WORKERS = {"tiny": 2, "small": 2, "paper": 4}[SCALE]
EPS_A = 0.2


def method_configs() -> dict[str, dict]:
    """Per-method configuration at the harness scale (fixed seeds)."""
    return {
        "probesim-batched": {"eps_a": EPS_A, "delta": 0.1, "seed": SEED},
        "tsf": {"rg": TSF_RG, "rq": TSF_RQ, "depth": 8, "seed": SEED},
        "probesim-walkindex": {"eps_a": EPS_A, "delta": 0.1, "seed": SEED},
    }


def test_dynamic_workload_across_read_write_ratios(benchmark):
    graph = get_dataset(DATASET).copy()

    def run_all():
        payload = {"dataset": DATASET, "scale": SCALE, "workers": WORKERS,
                   "read_fractions": READ_FRACTIONS, "runs": []}
        for read_fraction in READ_FRACTIONS:
            trace = generate_workload(
                graph,
                num_ops=NUM_OPS,
                read_fraction=read_fraction,
                zipf_s=1.0,
                insert_fraction=0.5,
                seed=SEED,
            )
            result = run_workload(
                graph, trace, METHODS, configs=method_configs(), workers=WORKERS
            )
            payload["runs"].append({
                "read_fraction": read_fraction,
                **result.to_dict(),
            })
            rows = [
                {"read_fraction": read_fraction, **row} for row in result.rows()
            ]
            emit_table(
                "dynamic_workload",
                rows,
                (f"Mixed workload: {trace.num_queries} queries / "
                 f"{trace.num_updates} updates, read_fraction={read_fraction}, "
                 f"workers={WORKERS}, scale={SCALE}"),
            )
        return payload

    payload = benchmark.pedantic(run_all, rounds=1, iterations=1)
    path = write_json_report(RESULTS_DIR / "bench_dynamic_workload.json", payload)
    print(f"\nwrote JSON report to {path}")

    # every method answered the full query load at every ratio
    for run in payload["runs"]:
        assert len(run["reports"]) == len(METHODS)
        for report in run["reports"]:
            assert report["num_queries"] > 0
            assert report["latency"]["p50_s"] > 0
            assert report["qps"] > 0
            assert report["digest"]


def test_dynamic_workload_is_bit_reproducible():
    """Same graph + seed + config => identical trace signature and digests."""
    graph = get_dataset(DATASET).copy()
    trace_a = generate_workload(graph, num_ops=60, read_fraction=0.8, seed=SEED)
    trace_b = generate_workload(graph, num_ops=60, read_fraction=0.8, seed=SEED)
    assert trace_a.signature() == trace_b.signature()
    configs = method_configs()
    first = run_workload(graph, trace_a, METHODS, configs=configs, workers=WORKERS)
    second = run_workload(graph, trace_b, METHODS, configs=configs, workers=WORKERS)
    assert [r.digest for r in first.reports] == [r.digest for r in second.reports]
