"""E-A6 — extension: adaptive top-k (early stopping).

Measures how many walks the Hoeffding stopping rule saves on *clear-cut*
queries (large gap between the k-th and (k+1)-th true scores) versus
ambiguous ones, and that accuracy is unaffected either way.  The expected
shape: savings scale with the gap; ambiguous queries fall back to the fixed
Theorem 1 walk count (adaptivity never hurts).
"""

import numpy as np

from conftest import SCALE, emit_table, get_csr, get_ground_truth
from repro.eval.metrics import precision_at_k
from repro.eval.queries import sample_query_nodes
from repro.extensions.adaptive_topk import AdaptiveTopK

DATASET = "as"
K = 1


def _query_gap(truth, query: int) -> float:
    """True-score gap between rank k and k+1 for the query."""
    row = truth.single_source(query).copy()
    row = np.delete(row, query)
    top = np.sort(row)[::-1]
    return float(top[K - 1] - top[K])


def test_adaptive_walk_savings(benchmark):
    csr = get_csr(DATASET)
    truth = get_ground_truth(DATASET)
    candidates = sample_query_nodes(csr, 30, seed=2017)
    by_gap = sorted(candidates, key=lambda q: _query_gap(truth, q))
    queries = {
        "ambiguous": by_gap[0],
        "median": by_gap[len(by_gap) // 2],
        "clear-cut": by_gap[-1],
    }

    def run():
        adaptive = AdaptiveTopK(csr, c=0.6, eps_a=0.03, delta=0.05, seed=13)
        cap = adaptive.config.walk_count(csr.num_nodes)
        rows = []
        for label, query in queries.items():
            top = adaptive.topk(query, K)
            precision = precision_at_k(
                top.nodes, truth.single_source(query), K, query
            )
            rows.append(
                {
                    "query_kind": label,
                    "true_gap": _query_gap(truth, query),
                    "walks_used": adaptive.last_walks_used,
                    "walk_cap": cap,
                    "saved_frac": 1.0 - adaptive.last_walks_used / cap,
                    "stopped_early": adaptive.last_stopped_early,
                    "precision": precision,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "extension_adaptive",
        rows,
        f"Extension: adaptive top-{K} walk savings by query difficulty, scale={SCALE}",
    )
    by_kind = {row["query_kind"]: row for row in rows}
    # accuracy is never sacrificed
    assert all(row["precision"] == 1.0 for row in rows)
    # the clear-cut query stops early and saves a large fraction of walks
    assert by_kind["clear-cut"]["stopped_early"]
    assert by_kind["clear-cut"]["saved_frac"] > 0.5
    # savings are monotone in the gap
    assert (
        by_kind["clear-cut"]["walks_used"] <= by_kind["median"]["walks_used"]
        <= by_kind["ambiguous"]["walks_used"]
    )
