"""E-A4 — extension: the §7 future-work lightweight walk-cache index.

Measures what the extension buys (repeated-query speedup from cached walk
trees) and what it costs (a small, m-independent index), versus plain
index-free ProbeSim and the heavyweight TSF index.
"""

from conftest import SCALE, emit_table, get_csr, get_queries, make_tsf
from repro.extensions import WalkIndex
from repro.utils.sizing import format_bytes
from repro.utils.timer import Timer

DATASET = "wiki-vote"


def test_extension_repeat_query_speedup(benchmark):
    queries = get_queries(DATASET, 3)
    index = WalkIndex(get_csr(DATASET), c=0.6, eps_a=0.1, delta=0.1, seed=11)

    def run():
        cold = Timer()
        warm = Timer()
        for query in queries:
            with cold:
                index.single_source(query)
        for query in queries:  # second pass: all cache hits
            with warm:
                index.single_source(query)
        return cold.elapsed, warm.elapsed

    cold_t, warm_t = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "extension_walk_index",
        [
            {
                "pass": "cold (sample+build+probe)",
                "total_s": cold_t,
            },
            {"pass": "warm (probe only)", "total_s": warm_t},
            {"pass": "speedup", "total_s": cold_t / max(warm_t, 1e-12)},
        ],
        f"Extension: walk-cache repeat queries, scale={SCALE}",
    )
    assert index.hit_rate == 0.5
    # probing dominates both passes; warm skips sampling + tree building.
    # generous factor: at tiny scale the saved work is small and noisy.
    assert warm_t <= cold_t * 1.5


def test_extension_space_vs_tsf(benchmark):
    queries = get_queries(DATASET, 3)

    def build_and_measure():
        walk_index = WalkIndex(get_csr(DATASET), c=0.6, eps_a=0.1, delta=0.1, seed=12)
        walk_index.warm(queries)
        tsf = make_tsf(DATASET)
        tsf.materialize_reverse()
        # compare C-equivalent payloads: raw arrays for TSF, 16B/tree-node
        # for the walk cache (deep_sizeof would charge Python object headers
        # to one side only)
        return walk_index.payload_bytes(), tsf.index_bytes()

    walk_bytes, tsf_bytes = benchmark.pedantic(build_and_measure, rounds=1, iterations=1)
    graph_bytes = get_csr(DATASET).payload_bytes()
    emit_table(
        "extension_walk_index",
        [
            {"structure": "graph (CSR)", "bytes": format_bytes(graph_bytes)},
            {"structure": f"walk index ({len(queries)} hot nodes)", "bytes": format_bytes(walk_bytes)},
            {"structure": "tsf index", "bytes": format_bytes(tsf_bytes)},
        ],
        f"Extension: space comparison, scale={SCALE}",
    )
    # "lightweight": orders below TSF's per-node index
    assert walk_bytes < tsf_bytes
