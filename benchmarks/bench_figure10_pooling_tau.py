"""E-F10 — Figure 10: Kendall τk via pooling on the four large graphs, at
the figure's five k buckets.  Shares its pooling run with Figures 8 and 9."""

import pytest

from conftest import SCALE, emit_table
from repro.datasets import large_dataset_names
from shared_runs import mean_pool_metric, pool_k_series, pool_metric_series

DATASETS = large_dataset_names()


@pytest.mark.parametrize("dataset", DATASETS)
def test_figure10_tau(benchmark, dataset):
    series = benchmark.pedantic(
        pool_metric_series, args=(dataset, "tau"), rounds=1, iterations=1
    )
    emit_table(
        "figure10",
        series,
        f"Figure 10({dataset}): pooled Kendall tau@k for k={pool_k_series()}, scale={SCALE}",
    )
    # ranking accuracy: ProbeSim's ordering beats TSF's at the deepest k
    # (the paper's Twitter observation: equal precision but better tau)
    means = mean_pool_metric(dataset, "tau")
    assert means["probesim"] >= means["tsf"] - 0.05
