"""E-F4 — Figure 4: absolute error vs query time for single-source queries
on the four small graphs.

The paper's claim: ProbeSim reaches lower AbsError at lower query cost than
the TopSim family and TSF, and its accuracy/time tradeoff is tunable via
eps_a while TopSim's error floor (Power Method with T = 3) is fixed.
"""

import pytest

from conftest import SCALE, emit_chart, emit_table, get_queries
from repro.datasets import small_dataset_names
from shared_runs import method_factory, single_source_outcomes

DATASETS = small_dataset_names()


@pytest.mark.parametrize("dataset", DATASETS)
def test_figure4_series(benchmark, dataset):
    """Emit the (query time, abs error) series — the figure's data points —
    and benchmark one representative ProbeSim query."""
    outcomes = benchmark.pedantic(
        single_source_outcomes, args=(dataset,), rounds=1, iterations=1
    )
    rows = [o.as_row() for o in outcomes]
    emit_table(
        "figure4",
        rows,
        f"Figure 4({dataset}): AbsError vs query time, scale={SCALE}",
    )
    plottable = [r for r in rows if r["abs_error"] > 0 and r["query_time_s"] > 0]
    if plottable:
        emit_chart(
            "figure4", plottable, "query_time_s", "abs_error",
            title=f"Figure 4({dataset}) — paper-style log-log scatter",
            x_label="query time (s)", y_label="abs error",
            log_x=True, log_y=True,
        )
    by_name = {o.method: o for o in outcomes}
    probesim_best = min(
        (o for o in outcomes if o.method.startswith("probesim")),
        key=lambda o: o.mean_abs_error,
    )
    # the paper's qualitative shape:
    # (1) ProbeSim's tightest setting honours its error budget
    tightest_eps = float(probesim_best.method.split("=")[1].rstrip(")"))
    assert probesim_best.mean_abs_error <= tightest_eps + 0.02
    # (2) the eps series trades time for accuracy monotonically (in time)
    probesim_series = [o for o in outcomes if o.method.startswith("probesim")]
    times = [o.mean_time for o in probesim_series]
    assert times == sorted(times, reverse=True)  # tighter eps -> slower
    # (3) TSF is less accurate than ProbeSim's tightest setting
    assert by_name["tsf"].mean_abs_error > probesim_best.mean_abs_error


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("method", ["probesim", "tsf", "topsim-sm"])
def test_figure4_query_time(benchmark, dataset, method):
    """Wall-clock of one single-source query per method (the x-axis)."""
    instance = method_factory(dataset, method)()
    query = get_queries(dataset, 1)[0]
    result = benchmark.pedantic(
        instance.single_source, args=(query,), rounds=3, iterations=1
    )
    assert result.score(query) == 1.0
