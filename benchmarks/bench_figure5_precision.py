"""E-F5 — Figure 5: Precision@k vs query time for top-k queries on the four
small graphs (k = 50 in the paper, scaled by REPRO_SCALE here).

Shares its run with Figures 6-7 via shared_runs.topk_outcomes.
"""

import pytest

from conftest import SCALE, TOP_K, emit_chart, emit_table, get_queries
from repro.datasets import small_dataset_names
from shared_runs import method_factory, topk_outcomes

DATASETS = small_dataset_names()


@pytest.mark.parametrize("dataset", DATASETS)
def test_figure5_precision(benchmark, dataset):
    outcomes = benchmark.pedantic(
        topk_outcomes, args=(dataset,), rounds=1, iterations=1
    )
    rows = [
        {
            "method": name,
            "precision": outcome.mean_precision,
            "query_time_s": outcome.mean_time,
        }
        for name, outcome in outcomes.items()
    ]
    emit_table(
        "figure5",
        rows,
        f"Figure 5({dataset}): Precision@{TOP_K} vs query time, scale={SCALE}",
    )
    plottable = [r for r in rows if r["query_time_s"] > 0]
    if plottable:
        emit_chart(
            "figure5", plottable, "query_time_s", "precision",
            title=f"Figure 5({dataset}) — precision vs time (log x)",
            x_label="query time (s)", y_label="precision", log_x=True,
        )
    # the paper's shape: ProbeSim achieves high precision, and beats TSF
    assert outcomes["probesim"].mean_precision >= 0.75
    assert outcomes["probesim"].mean_precision >= outcomes["tsf"].mean_precision


@pytest.mark.parametrize("dataset", DATASETS)
def test_figure5_topk_query_time(benchmark, dataset):
    """Times the full top-k pipeline (single-source + sort) for ProbeSim."""
    engine = method_factory(dataset, "probesim")()
    query = get_queries(dataset, 1)[0]
    top = benchmark.pedantic(engine.topk, args=(query, TOP_K), rounds=3, iterations=1)
    assert top.k <= TOP_K
