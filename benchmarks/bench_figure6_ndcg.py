"""E-F6 — Figure 6: NDCG@k vs query time for top-k queries on the four small
graphs.  Shares its run with Figures 5 and 7."""

import pytest

from conftest import SCALE, TOP_K, emit_table, get_queries
from repro.datasets import small_dataset_names
from shared_runs import method_factory, topk_outcomes

DATASETS = small_dataset_names()


@pytest.mark.parametrize("dataset", DATASETS)
def test_figure6_ndcg(benchmark, dataset):
    outcomes = benchmark.pedantic(
        topk_outcomes, args=(dataset,), rounds=1, iterations=1
    )
    rows = [
        {
            "method": name,
            "ndcg": outcome.mean_ndcg,
            "query_time_s": outcome.mean_time,
        }
        for name, outcome in outcomes.items()
    ]
    emit_table(
        "figure6",
        rows,
        f"Figure 6({dataset}): NDCG@{TOP_K} vs query time, scale={SCALE}",
    )
    assert outcomes["probesim"].mean_ndcg >= 0.9
    assert outcomes["probesim"].mean_ndcg >= outcomes["tsf"].mean_ndcg - 0.02


@pytest.mark.parametrize("dataset", DATASETS)
def test_figure6_tsf_query_time(benchmark, dataset):
    index = method_factory(dataset, "tsf")()
    query = get_queries(dataset, 1)[0]
    result = benchmark.pedantic(
        index.single_source, args=(query,), rounds=3, iterations=1
    )
    assert result.score(query) == 1.0
