"""E-F7 — Figure 7: Kendall τk vs query time for top-k queries on the four
small graphs.  Shares its run with Figures 5 and 6."""

import pytest

from conftest import SCALE, TOP_K, emit_table, get_queries
from repro.datasets import small_dataset_names
from shared_runs import method_factory, topk_outcomes

DATASETS = small_dataset_names()


@pytest.mark.parametrize("dataset", DATASETS)
def test_figure7_tau(benchmark, dataset):
    outcomes = benchmark.pedantic(
        topk_outcomes, args=(dataset,), rounds=1, iterations=1
    )
    rows = [
        {
            "method": name,
            "tau": outcome.mean_tau,
            "query_time_s": outcome.mean_time,
        }
        for name, outcome in outcomes.items()
    ]
    emit_table(
        "figure7",
        rows,
        f"Figure 7({dataset}): Kendall tau@{TOP_K} vs query time, scale={SCALE}",
    )
    # ranking quality: ProbeSim orders the top-k better than TSF
    assert outcomes["probesim"].mean_tau >= outcomes["tsf"].mean_tau - 0.02


@pytest.mark.parametrize("dataset", DATASETS)
def test_figure7_topsim_query_time(benchmark, dataset):
    method = method_factory(dataset, "topsim-sm")()
    query = get_queries(dataset, 1)[0]
    result = benchmark.pedantic(
        method.single_source, args=(query,), rounds=3, iterations=1
    )
    assert result.score(query) == 1.0
