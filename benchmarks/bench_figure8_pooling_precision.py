"""E-F8 — Figure 8: Precision@k via pooling on the four large graphs.

The ground truth on large graphs is unavailable, so (as in the paper) the
competing methods' top-k lists are pooled and scored by a trusted expert;
the pool's best k nodes become the reference answer.  As in the figure, the
metric is reported at five k buckets.
"""

import pytest

from conftest import METHOD_ORDER, SCALE, emit_table
from repro.datasets import large_dataset_names
from shared_runs import mean_pool_metric, pool_k_series, pool_metric_series, pooling_evaluations

DATASETS = large_dataset_names()


@pytest.mark.parametrize("dataset", DATASETS)
def test_figure8_precision(benchmark, dataset):
    series = benchmark.pedantic(
        pool_metric_series, args=(dataset, "precision"), rounds=1, iterations=1
    )
    emit_table(
        "figure8",
        series,
        f"Figure 8({dataset}): pooled Precision@k for k={pool_k_series()}, scale={SCALE}",
    )
    _, times = pooling_evaluations(dataset)
    emit_table(
        "figure8",
        [{"method": name, "query_time_s": times[name]} for name in METHOD_ORDER],
        f"Figure 8({dataset}) companion: mean query time",
    )
    # paper shape at the deepest k: ProbeSim matches or beats TSF
    means = mean_pool_metric(dataset, "precision")
    assert means["probesim"] >= means["tsf"] - 0.05
    assert means["probesim"] >= 0.5
