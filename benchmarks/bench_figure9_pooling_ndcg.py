"""E-F9 — Figure 9: NDCG@k via pooling on the four large graphs, at the
figure's five k buckets.  Shares its pooling run with Figures 8 and 10."""

import pytest

from conftest import SCALE, emit_table
from repro.datasets import large_dataset_names
from shared_runs import mean_pool_metric, pool_k_series, pool_metric_series

DATASETS = large_dataset_names()


@pytest.mark.parametrize("dataset", DATASETS)
def test_figure9_ndcg(benchmark, dataset):
    series = benchmark.pedantic(
        pool_metric_series, args=(dataset, "ndcg"), rounds=1, iterations=1
    )
    emit_table(
        "figure9",
        series,
        f"Figure 9({dataset}): pooled NDCG@k for k={pool_k_series()}, scale={SCALE}",
    )
    means = mean_pool_metric(dataset, "ndcg")
    assert means["probesim"] >= 0.85
    assert means["probesim"] >= means["tsf"] - 0.05
