"""E-C2 — served-traffic benchmark of the asyncio HTTP front door.

An in-process :class:`repro.server.SimRankHTTPApp` fronts a sequential
:class:`~repro.api.service.SimRankService` and the open-loop load
generator (:mod:`repro.server.loadgen`) replays a Zipf-hot query trace
against it over real sockets.  Two questions are answered on fixed seeds:

- **Bit-exactness** — with a ``query_seeded`` engine config, every
  coalesced HTTP response body must equal the byte string a fresh oracle
  service produces for the same query with direct sequential calls.
  Coalescing may regroup requests into any batches; it may not change a
  single byte of any answer.
- **Served throughput** — offered arrival rates from cruise to saturation,
  with request coalescing on vs off.  Under Zipf-hot traffic the
  coalescing tier dedups repeated keys inside each collection window and
  amortizes per-request dispatch, so saturated QPS must *improve* with
  coalescing on (asserted on the full preset).

An overload run (tight admission capacity at twice the saturation rate)
additionally demonstrates load shedding: 503s with ``Retry-After``, no
client-visible errors, reported as ``shed_rate``.

Usage::

    python benchmarks/bench_http_serving.py                  # full preset
    python benchmarks/bench_http_serving.py --smoke          # seconds
    python benchmarks/bench_http_serving.py --json out.json  # perf gate

The ``--json`` report carries a flat ``gate`` block consumed by
``tools/check_bench_regression.py`` (the nightly perf-regression gate).
"""

import argparse
import asyncio
import json
import multiprocessing
import os
import sys
from pathlib import Path

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from conftest import emit_table  # noqa: E402

from repro.api.service import SimRankService  # noqa: E402
from repro.graph.generators import erdos_renyi_graph  # noqa: E402
from repro.server import (  # noqa: E402
    ServerConfig,
    SimRankHTTPApp,
    requests_from_trace,
    run_load,
    serialize_result,
    serialize_topk,
)
from repro.workloads import generate_workload  # noqa: E402

SEED = 2017
#: the loop engine: batching gains then come purely from the deterministic
#: levers (hot-key dedup + amortized dispatch), not graph-shaped trie luck.
METHOD = "probesim"
SCORES_LIMIT = 10
TOP_K = 10

#: graph size, trace length, offered rates (last one saturates a
#: sequential service), and walk count per preset.
PRESETS = {
    "full": dict(nodes=1_500, edges=6_000, ops=200, rates=(15, 60, 240),
                 walks=60, zipf=1.3),
    "smoke": dict(nodes=200, edges=800, ops=40, rates=(80, 200),
                  walks=80, zipf=1.3),
}


def method_config(preset: dict) -> dict:
    # query_seeded: answers are pure functions of (config, graph, query),
    # which is what makes the bit-exactness phase meaningful at all
    return {METHOD: {
        "eps_a": 0.2, "delta": 0.1, "num_walks": preset["walks"],
        "seed": SEED, "query_seeded": True,
    }}


def build_workload(preset: dict):
    graph = erdos_renyi_graph(
        preset["nodes"], num_edges=preset["edges"], seed=SEED
    )
    trace = generate_workload(
        graph, num_ops=preset["ops"], read_fraction=1.0,
        zipf_s=preset["zipf"], seed=SEED,
    )
    return graph, trace


async def _serve_run(graph, preset, requests, rate, coalesce,
                     capacity=None, collect_bodies=False):
    """One load-generator run against a fresh in-process server."""
    service = SimRankService(
        graph, methods=[METHOD], configs=method_config(preset)
    )
    app = SimRankHTTPApp(service, ServerConfig(
        host="127.0.0.1", port=0, coalesce=coalesce,
        admission_capacity=capacity, scores_limit=SCORES_LIMIT,
    ))
    await app.start()
    try:
        report = await run_load(
            "127.0.0.1", app.port, requests, rate,
            collect_bodies=collect_bodies,
        )
    finally:
        await app.aclose()
    coalesce_stats = (
        app.coalescer.stats.metrics() if app.coalescer is not None else {}
    )
    return report, coalesce_stats


def bit_exactness(graph, trace, preset) -> dict:
    """Coalesced HTTP bodies vs a direct sequential oracle, byte for byte."""
    single = requests_from_trace(trace, limit=SCORES_LIMIT)
    topk = requests_from_trace(trace, kind="topk", k=TOP_K)
    # a rate high enough that collection windows really fill
    rate = max(preset["rates"])
    # lanes sized to the trace: these runs measure bits, not shedding
    single_report, _ = asyncio.run(_serve_run(
        graph, preset, single, rate, coalesce=True,
        capacity=len(single), collect_bodies=True,
    ))
    topk_report, _ = asyncio.run(_serve_run(
        graph, preset, topk, rate, coalesce=True,
        capacity=len(topk), collect_bodies=True,
    ))

    oracle = SimRankService(
        graph, methods=[METHOD], configs=method_config(preset)
    )
    queries = trace.query_nodes()
    mismatches = 0
    for query, body in zip(queries, single_report.bodies):
        expected = serialize_result(oracle.single_source(query), SCORES_LIMIT)
        mismatches += body != expected
    for query, body in zip(queries, topk_report.bodies):
        expected = serialize_topk(oracle.topk(query, TOP_K))
        mismatches += body != expected
    oracle.close()
    compared = 2 * len(queries)
    assert single_report.errors == topk_report.errors == 0, (
        "bit-exactness runs must complete cleanly"
    )
    assert mismatches == 0, (
        f"{mismatches}/{compared} coalesced HTTP bodies differ from the "
        "sequential oracle — the coalescing tier changed an answer"
    )
    return {"responses_compared": compared, "mismatches": mismatches}


def rate_sweep(graph, trace, preset):
    """The served-traffic comparison: offered rate x coalescing on/off."""
    requests = requests_from_trace(trace, limit=SCORES_LIMIT)
    rows = []
    for rate in preset["rates"]:
        for coalesce in (False, True):
            # lanes sized to the trace: saturation shows as queueing
            # latency and QPS, not as sheds muddying the comparison
            report, stats = asyncio.run(_serve_run(
                graph, preset, requests, rate, coalesce=coalesce,
                capacity=len(requests),
            ))
            assert report.errors == 0, (
                f"rate={rate} coalesce={coalesce}: {report.errors} transport "
                "errors (the sweep must measure serving, not broken sockets)"
            )
            row = report.as_row()
            row = {
                "mode": "coalesce" if coalesce else "direct",
                **{k: round(v, 3) if isinstance(v, float) else v
                   for k, v in row.items()},
            }
            row["batches"] = int(stats.get("coalesce_batches", 0))
            row["dedup_saved"] = int(stats.get("coalesce_dedup_saved", 0))
            rows.append(row)
    return rows


def overload_run(graph, trace, preset) -> dict:
    """Tight lanes at twice the saturation rate: shedding, not errors."""
    requests = requests_from_trace(trace, limit=SCORES_LIMIT)
    rate = 2 * max(preset["rates"])
    report, _ = asyncio.run(_serve_run(
        graph, preset, requests, rate, coalesce=True, capacity=16,
    ))
    assert report.errors == 0, (
        "overload must surface as 503 sheds, never as transport errors"
    )
    assert report.shed_rate > 0, (
        f"capacity 16 at {rate}/s was expected to shed some requests"
    )
    return {
        "rate": rate, "capacity": 16,
        "shed_rate": round(report.shed_rate, 3),
        "completed_200": report.status_counts.get(200, 0),
    }


def run_bench(smoke: bool) -> dict:
    preset_name = "smoke" if smoke else "full"
    preset = PRESETS[preset_name]
    graph, trace = build_workload(preset)

    exact = bit_exactness(graph, trace, preset)
    print(f"bit-exactness: {exact['responses_compared']} coalesced responses "
          "match the sequential oracle byte for byte: OK")

    rows = rate_sweep(graph, trace, preset)
    overload = overload_run(graph, trace, preset)
    unique = len(set(trace.query_nodes()))
    emit_table(
        "http_serving", rows,
        (f"HTTP front door, open-loop replay of {len(trace.query_nodes())} "
         f"Zipf queries ({unique} unique; {preset_name} preset, "
         f"cores={multiprocessing.cpu_count()})"),
    )
    emit_table("http_serving", [overload],
               "Overload: admission capacity 16 at 2x the saturation rate")

    def qps_of(mode, rate):
        return next(
            r["qps"] for r in rows if r["mode"] == mode and r["rate"] == rate
        )

    gate = {}
    for rate in preset["rates"]:
        gate[f"qps:direct:r{rate}"] = qps_of("direct", rate)
        gate[f"qps:coalesce:r{rate}"] = qps_of("coalesce", rate)
    cruise = preset["rates"][0]
    for row in rows:
        if row["rate"] == cruise:
            gate[f"p50_ms:{row['mode']}:r{cruise}"] = row["p50_ms"]
            gate[f"p95_ms:{row['mode']}:r{cruise}"] = row["p95_ms"]
    saturated = max(preset["rates"])
    derived = {
        "speedup:coalesce-at-saturation": round(
            qps_of("coalesce", saturated) / qps_of("direct", saturated), 3
        ),
        "dedup:unique-fraction": round(unique / len(trace.query_nodes()), 3),
        "overload:shed_rate": overload["shed_rate"],
    }
    return {
        "bench": "http_serving",
        "preset": preset_name,
        "method": METHOD,
        "cores": multiprocessing.cpu_count(),
        "trace": {"queries": len(trace.query_nodes()), "unique": unique,
                  "signature": trace.signature()},
        "bit_exactness": exact,
        "series": rows,
        "overload": overload,
        "derived": derived,
        "gate": gate,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny preset: seconds, for the CI bench-smoke job")
    parser.add_argument("--json", default=None,
                        help="write the machine-readable report here")
    args = parser.parse_args(argv)

    payload = run_bench(args.smoke)
    speedup = payload["derived"]["speedup:coalesce-at-saturation"]
    if not args.smoke:
        # the tentpole acceptance claim: at saturation, coalescing must
        # improve served QPS (dedup of Zipf-hot keys guarantees headroom)
        assert speedup >= 1.05, (
            f"coalescing at saturation is only {speedup:.2f}x the direct "
            "path (needs >= 1.05x)"
        )
        print(f"\nacceptance: coalescing is {speedup:.2f}x direct QPS at "
              "saturation (>= 1.05x): OK")
    else:
        print(f"\ncoalescing speedup at saturation: {speedup:.2f}x "
              "(not asserted on the smoke preset)")

    if args.json:
        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                       encoding="utf-8")
        print(f"wrote JSON report to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
