"""E-C2 — delta propagation vs full epoch rebuild under update-heavy traffic.

One update-heavy Zipf trace (``read_fraction=0.5`` — half the operations
mutate edges) is replayed through the workload driver on the process
executor twice, differing only in the parallel service's maintenance path:

- **rebuild**: every update burst publishes a fresh shared-memory graph
  generation, every worker rebuilds every estimator replica against it,
  and the whole result cache turns over — O(m) per burst (PR 4's only
  path);
- **delta**: the burst is appended to the shared edge-delta log, workers
  absorb it in place via ``apply_updates`` (replica RNG streams continue),
  and only cache entries in the touched 1-hop neighborhood are dropped —
  O(Δ) per burst.

Two numbers decide the comparison, and both must improve for the delta
path to earn its keep: **maintenance seconds** (the O(m) → O(Δ) claim) and
the **post-update cache hit rate** (hot Zipf keys staying warm across
small bursts).  Both runs are also digest-checked against the sequential
in-process oracle — the delta path must buy its speed with zero drift.

Usage::

    python benchmarks/bench_incremental_sync.py                  # full preset
    python benchmarks/bench_incremental_sync.py --smoke          # seconds
    python benchmarks/bench_incremental_sync.py --json out.json  # perf gate

The ``--json`` report carries a flat ``gate`` block consumed by
``tools/check_bench_regression.py`` (the nightly perf-regression gate).
"""

import argparse
import json
import multiprocessing
import os
import sys
from pathlib import Path

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from conftest import emit_table  # noqa: E402

from repro.graph.generators import erdos_renyi_graph  # noqa: E402
from repro.workloads import generate_workload, run_workload  # noqa: E402

SEED = 2017
METHOD = "tsf"  # the paper's incremental-update index
WORKERS = 2

#: (num_nodes, num_edges, num_ops) presets; smoke finishes in seconds.
PRESETS = {
    "full": (3_000, 12_000, 320),
    "smoke": (300, 1_200, 60),
}


def build_trace(smoke: bool):
    """The shared workload: update-heavy, Zipf-hot queries, deterministic."""
    n, m, num_ops = PRESETS["smoke" if smoke else "full"]
    graph = erdos_renyi_graph(n, num_edges=m, seed=SEED)
    trace = generate_workload(
        graph, num_ops=num_ops, read_fraction=0.5, zipf_s=1.2,
        max_query_batch=8, max_update_batch=4, seed=SEED,
    )
    return graph, trace


def method_config(smoke: bool) -> dict:
    rg = 30 if smoke else 60
    return {METHOD: {"rg": rg, "rq": 3, "depth": 5, "seed": SEED}}


def replay(graph, trace, smoke: bool, maintenance: str,
           executor: str = "process") -> dict:
    """One driver replay; returns the flat row the tables/JSON share."""
    report = run_workload(
        graph, trace, [METHOD], configs=method_config(smoke),
        workers=WORKERS, executor=executor, maintenance=maintenance,
        cache_size=graph.num_nodes,
    ).reports[0]
    return {
        "maintenance": maintenance,
        "executor": executor,
        "maint_s": round(report.maintenance_seconds, 4),
        "maint_per_update_ms": round(report.maintenance_per_update * 1e3, 3),
        "qps": round(report.qps, 1),
        "hit_rate": round(report.cache["hit_rate"], 3),
        "delta_syncs": report.delta_syncs,
        "epochs": report.epochs,
        "digest": report.digest,
    }


def run_bench(smoke: bool) -> dict:
    """The full comparison; returns the JSON payload (with the gate block)."""
    graph, trace = build_trace(smoke)
    rows = [
        replay(graph, trace, smoke, maintenance)
        for maintenance in ("rebuild", "delta")
    ]
    preset = "smoke" if smoke else "full"
    emit_table(
        "incremental_sync", rows,
        (f"Delta vs rebuild maintenance: {trace.num_updates} updates / "
         f"{trace.num_queries} queries ({preset} preset, "
         f"cores={multiprocessing.cpu_count()})"),
    )

    by_mode = {row["maintenance"]: row for row in rows}
    # gate on the absolute numbers the delta path exists to improve:
    # maintenance wall-clock (lower-better) and the post-update cache hit
    # rate (higher-better, and deterministic for fixed seeds); QPS rides
    # along as the end-to-end sanity number.
    gate = {}
    for mode, row in by_mode.items():
        gate[f"maint_s:{mode}:w{WORKERS}"] = row["maint_s"]
        gate[f"qps:{mode}:w{WORKERS}"] = row["qps"]
        gate[f"hit:rate:{mode}"] = row["hit_rate"]
    derived = {
        "speedup:maintenance:delta-vs-rebuild": round(
            by_mode["rebuild"]["maint_s"] / max(by_mode["delta"]["maint_s"], 1e-9), 2
        ),
    }
    return {
        "bench": "incremental_sync",
        "preset": preset,
        "method": METHOD,
        "cores": multiprocessing.cpu_count(),
        "trace": {
            "queries": trace.num_queries,
            "updates": trace.num_updates,
            "signature": trace.signature(),
        },
        "series": rows,
        "derived": derived,
        "gate": gate,
        "_graph": graph,  # popped before serialisation; reused by the asserts
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny preset: seconds, for the CI bench-smoke job")
    parser.add_argument("--json", default=None,
                        help="write the machine-readable report here")
    args = parser.parse_args(argv)

    payload = run_bench(args.smoke)
    graph = payload.pop("_graph")
    _, trace = build_trace(args.smoke)
    by_mode = {row["maintenance"]: row for row in payload["series"]}

    # correctness: each maintenance path must be bit-identical to the
    # sequential in-process oracle replaying the identical schedule
    for mode in ("rebuild", "delta"):
        oracle = replay(graph, trace, args.smoke, mode, executor="sequential")
        assert oracle["digest"] == by_mode[mode]["digest"], (
            f"{mode} maintenance drifted from the sequential oracle: the "
            "process executor must stay bit-exact under updates"
        )
    print("\ndigests bit-identical to the sequential oracle on both paths: OK")

    # acceptance: O(Δ) must beat O(m) on both axes it claims
    assert by_mode["delta"]["maint_s"] < by_mode["rebuild"]["maint_s"], (
        f"delta maintenance ({by_mode['delta']['maint_s']}s) did not beat "
        f"the full rebuild ({by_mode['rebuild']['maint_s']}s)"
    )
    assert by_mode["delta"]["hit_rate"] > by_mode["rebuild"]["hit_rate"], (
        f"delta cache hit rate ({by_mode['delta']['hit_rate']}) did not beat "
        f"the rebuild path's ({by_mode['rebuild']['hit_rate']})"
    )
    ratio = payload["derived"]["speedup:maintenance:delta-vs-rebuild"]
    print(f"acceptance: delta maintenance is {ratio:.1f}x cheaper than "
          f"rebuild and keeps the cache warmer "
          f"({by_mode['delta']['hit_rate']:.3f} vs "
          f"{by_mode['rebuild']['hit_rate']:.3f} hit rate): OK")

    if args.json:
        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                       encoding="utf-8")
        print(f"wrote JSON report to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
