"""E-C1 — multi-core QPS scaling of the shared-memory parallel service.

One read-heavy Zipf trace is replayed through the workload driver on both
executors at increasing pool widths, answering the scale-out questions:

- **thread** (the PR 3 path): estimator replicas on a thread pool — the
  GIL-bound single-process ceiling;
- **process**: the same positional dispatch across worker processes over a
  zero-copy shared-memory graph (:mod:`repro.parallel`) — throughput
  scales with cores;
- **process + cache**: the update-aware result cache in front of the
  process pool, showing the hot-key hit-rate speedup Zipf traffic earns.

The headline acceptance number — ``--workers 4`` at ≥ 2x the thread
executor's single-source QPS on the same trace — only shows on real
multi-core hardware; pass ``--assert-speedup`` to enforce it (CI perf
machines), leave it off on laptops/containers with throttled cores.

Usage::

    python benchmarks/bench_parallel_service.py                  # full preset
    python benchmarks/bench_parallel_service.py --smoke          # seconds
    python benchmarks/bench_parallel_service.py --json out.json  # perf gate
    python benchmarks/bench_parallel_service.py --workers 1,2,4,8

The ``--json`` report carries a flat ``gate`` block consumed by
``tools/check_bench_regression.py`` (the nightly perf-regression gate).

``--free-threaded-probe`` (opt-in) re-runs the thread-executor sweep and
reports whether it scales with pool width — the question only a
free-threaded build (3.13t, ``python -X gil=0`` / PEP 703) can answer
with "yes".  On a GIL build the probe still runs and records the flat
scaling curve as the control measurement; nothing gates on it either
way, it is an instrumentation surface for free-threaded CPython.
"""

import argparse
import json
import multiprocessing
import os
import sys
from pathlib import Path

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from conftest import emit_table  # noqa: E402

from repro.graph.generators import erdos_renyi_graph  # noqa: E402
from repro.workloads import generate_workload, run_workload  # noqa: E402

SEED = 2017
METHOD = "probesim-batched"

#: (num_nodes, num_edges, num_ops) presets; smoke finishes in seconds.
PRESETS = {
    "full": (4_000, 16_000, 600),
    "smoke": (300, 1_200, 120),
}


def build_trace(smoke: bool):
    """The shared workload: read-only, Zipf-hot, deterministic."""
    n, m, num_ops = PRESETS["smoke" if smoke else "full"]
    graph = erdos_renyi_graph(n, num_edges=m, seed=SEED)
    trace = generate_workload(
        graph, num_ops=num_ops, read_fraction=1.0, zipf_s=1.1,
        max_query_batch=16, seed=SEED,
    )
    return graph, trace


def method_config(smoke: bool) -> dict:
    walks = 200 if smoke else 400
    return {METHOD: {"eps_a": 0.2, "delta": 0.1, "num_walks": walks, "seed": SEED}}


def replay(graph, trace, smoke: bool, executor: str, workers: int,
           cache_size: int = 0) -> dict:
    """One driver replay; returns the flat row the tables/JSON share."""
    report = run_workload(
        graph, trace, [METHOD], configs=method_config(smoke),
        workers=workers, executor=executor, cache_size=cache_size,
    ).reports[0]
    row = {
        "executor": executor,
        "workers": workers,
        "cache": cache_size,
        "qps": round(report.qps, 1),
        "p50_ms": round(report.latency.percentile(50) * 1e3, 2),
        "p95_ms": round(report.latency.percentile(95) * 1e3, 2),
        "digest": report.digest,
    }
    if report.cache:
        row["hit_rate"] = round(report.cache["hit_rate"], 3)
    return row


def run_bench(worker_series, smoke: bool) -> dict:
    """The full comparison; returns the JSON payload (with the gate block)."""
    graph, trace = build_trace(smoke)
    rows = []
    for workers in worker_series:
        rows.append(replay(graph, trace, smoke, "thread", workers))
        rows.append(replay(graph, trace, smoke, "process", workers))
    cache_off = replay(graph, trace, smoke, "process", worker_series[-1])
    cache_on = replay(
        graph, trace, smoke, "process", worker_series[-1],
        cache_size=graph.num_nodes,
    )
    preset = "smoke" if smoke else "full"
    emit_table(
        "parallel_service", rows,
        (f"Executor scaling on {trace.num_queries} Zipf queries "
         f"({preset} preset, cores={multiprocessing.cpu_count()})"),
    )
    emit_table(
        "parallel_service", [cache_off, cache_on],
        f"Update-aware result cache at {worker_series[-1]} process workers",
    )

    def qps_of(executor, workers):
        return next(
            r["qps"] for r in rows
            if r["executor"] == executor and r["workers"] == workers
        )

    # gate metrics are *absolute* QPS/latency numbers (plus the
    # deterministic cache hit rate): against a same-hardware baseline they
    # regress monotonically with a slow commit.  Machine-relative ratios
    # (process-vs-thread, cache speedup) go under "derived" — informative,
    # but too hardware-shaped to gate at a fixed threshold.
    gate = {}
    for workers in worker_series:
        gate[f"qps:thread:w{workers}"] = qps_of("thread", workers)
        gate[f"qps:process:w{workers}"] = qps_of("process", workers)
    for row in rows:
        gate[f"p95_ms:{row['executor']}:w{row['workers']}"] = row["p95_ms"]
    gate[f"qps:process-cached:w{worker_series[-1]}"] = cache_on["qps"]
    gate["hit:rate:cached"] = cache_on.get("hit_rate", 0.0)
    derived = {
        f"speedup:process-vs-thread:w{workers}": round(
            qps_of("process", workers) / qps_of("thread", workers), 3
        )
        for workers in worker_series
    }
    derived["speedup:cache"] = round(cache_on["qps"] / cache_off["qps"], 3)
    return {
        "bench": "parallel_service",
        "preset": preset,
        "method": METHOD,
        "cores": multiprocessing.cpu_count(),
        "trace": {"queries": trace.num_queries, "signature": trace.signature()},
        "series": rows,
        "cache": {"off": cache_off, "on": cache_on},
        "derived": derived,
        "gate": gate,
    }


def gil_enabled() -> bool | None:
    """``True``/``False`` on 3.13+, ``None`` where the probe cannot tell."""
    probe = getattr(sys, "_is_gil_enabled", None)
    return probe() if callable(probe) else None


def run_free_threaded_probe(worker_series, smoke: bool) -> dict:
    """Thread-executor scaling curve plus the interpreter's GIL status.

    On a free-threaded build the thread executor should approach the
    process executor's scaling (no pickling, no fork); on a GIL build the
    curve stays flat.  Either result is recorded, never gated.
    """
    graph, trace = build_trace(smoke)
    rows = [
        replay(graph, trace, smoke, "thread", workers)
        for workers in worker_series
    ]
    emit_table(
        "parallel_service", rows,
        (f"Free-threaded probe: thread executor sweep "
         f"(gil_enabled={gil_enabled()}, cores={multiprocessing.cpu_count()})"),
    )
    base = rows[0]["qps"]
    return {
        "gil_enabled": gil_enabled(),
        "python": sys.version,
        "series": rows,
        "scaling": round(rows[-1]["qps"] / base, 3) if base else None,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", default="1,2,4,8",
                        help="comma-separated pool widths to sweep")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny preset: seconds, for the CI bench-smoke job")
    parser.add_argument("--json", default=None,
                        help="write the machine-readable report here")
    parser.add_argument("--assert-speedup", action="store_true",
                        help="fail unless process w4 >= 2x thread QPS "
                             "(needs real multi-core hardware)")
    parser.add_argument("--free-threaded-probe", action="store_true",
                        dest="free_threaded_probe",
                        help="also sweep the thread executor and record "
                             "whether it scales (meaningful on a 3.13t "
                             "free-threaded build; informational elsewhere)")
    args = parser.parse_args(argv)
    worker_series = [int(w) for w in args.workers.split(",") if w.strip()]

    payload = run_bench(worker_series, args.smoke)
    if args.free_threaded_probe:
        payload["free_threaded_probe"] = run_free_threaded_probe(
            worker_series, args.smoke
        )
    digests = {
        (row["executor"], row["workers"]): row["digest"]
        for row in payload["series"]
    }
    for workers in worker_series:
        thread_digest = digests[("thread", workers)]
        process_digest = digests[("process", workers)]
        assert thread_digest == process_digest, (
            f"executors disagree at {workers} workers: the process service "
            "must be bit-identical to the thread replay on a static graph"
        )
    print("\ndigests bit-identical across executors at every width: OK")

    if args.json:
        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                       encoding="utf-8")
        print(f"wrote JSON report to {out}")
    if args.assert_speedup:
        ratio = payload["derived"].get("speedup:process-vs-thread:w4")
        assert ratio is not None, "--assert-speedup needs 4 in --workers"
        assert ratio >= 2.0, (
            f"process executor at 4 workers is only {ratio:.2f}x the thread "
            f"executor (needs >= 2x; cores={payload['cores']})"
        )
        print(f"acceptance: process w4 is {ratio:.2f}x thread QPS (>= 2x): OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
