"""E-C2 — batch QPS scaling of the sharded serving router across shard counts.

One read-heavy Zipf trace is replayed through the workload driver against
:class:`~repro.parallel.sharded.ShardedSimRankService` at increasing shard
counts P (one worker process per shard), answering the partition-and-route
questions PR 7 adds:

- **process, P shards**: batches split by owning shard and fan out
  shard-parallel — batch QPS should scale with P, since the shards'
  worker groups answer their sub-batches concurrently;
- **sequential, P shards**: the per-P bit-exactness oracle (identical
  routing/dispatch schedule, no worker processes) — its digest pins the
  process run at the same P;
- **P=1 vs the unsharded service**: the anchor — one shard must be
  bit-identical to ``ParallelSimRankService`` on the same trace.

Every process digest is asserted against its sequential oracle, and P=1
against the unsharded service, before any number is reported.

Usage::

    python benchmarks/bench_sharded_service.py                  # full preset
    python benchmarks/bench_sharded_service.py --smoke          # seconds
    python benchmarks/bench_sharded_service.py --json out.json  # perf gate
    python benchmarks/bench_sharded_service.py --shards 1,2,4

The ``--json`` report carries a flat ``gate`` block consumed by
``tools/check_bench_regression.py`` (the nightly perf-regression gate).
"""

import argparse
import json
import multiprocessing
import os
import sys
from pathlib import Path

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from conftest import emit_table  # noqa: E402

from repro.graph.generators import erdos_renyi_graph  # noqa: E402
from repro.workloads import generate_workload, run_workload  # noqa: E402

SEED = 2017
METHOD = "probesim-batched"

#: (num_nodes, num_edges, num_ops) presets; smoke finishes in seconds.
PRESETS = {
    "full": (4_000, 16_000, 600),
    "smoke": (300, 1_200, 120),
}


def build_trace(smoke: bool):
    """The shared workload: read-only, Zipf-hot, big batches, deterministic."""
    n, m, num_ops = PRESETS["smoke" if smoke else "full"]
    graph = erdos_renyi_graph(n, num_edges=m, seed=SEED)
    trace = generate_workload(
        graph, num_ops=num_ops, read_fraction=1.0, zipf_s=1.1,
        max_query_batch=16, seed=SEED,
    )
    return graph, trace


def method_config(smoke: bool) -> dict:
    walks = 200 if smoke else 400
    return {METHOD: {"eps_a": 0.2, "delta": 0.1, "num_walks": walks, "seed": SEED}}


def replay(graph, trace, smoke: bool, executor: str, shards=None,
           partition: str = "hash") -> dict:
    """One driver replay; returns the flat row the tables/JSON share."""
    report = run_workload(
        graph, trace, [METHOD], configs=method_config(smoke),
        workers=1, executor=executor, shards=shards, partition=partition,
    ).reports[0]
    return {
        "executor": executor,
        "shards": shards or 0,
        "partition": partition if shards else "-",
        "qps": round(report.qps, 1),
        "p50_ms": round(report.latency.percentile(50) * 1e3, 2),
        "p95_ms": round(report.latency.percentile(95) * 1e3, 2),
        "digest": report.digest,
    }


def run_bench(shard_series, smoke: bool) -> dict:
    """The full sweep; returns the JSON payload (with the gate block)."""
    graph, trace = build_trace(smoke)
    rows = []
    for shards in shard_series:
        rows.append(replay(graph, trace, smoke, "sequential", shards))
        rows.append(replay(graph, trace, smoke, "process", shards))
    flat = replay(graph, trace, smoke, "sequential")  # unsharded anchor
    degree = replay(
        graph, trace, smoke, "process", shard_series[-1], partition="degree"
    )
    preset = "smoke" if smoke else "full"
    emit_table(
        "sharded_service", rows + [degree],
        (f"Shard scaling on {trace.num_queries} Zipf queries "
         f"({preset} preset, 1 worker/shard, "
         f"cores={multiprocessing.cpu_count()})"),
    )

    def row_of(executor, shards):
        return next(
            r for r in rows
            if r["executor"] == executor and r["shards"] == shards
        )

    # digests are the acceptance criteria, checked before any number ships:
    # process == sequential at every P, and P=1 == the unsharded service
    for shards in shard_series:
        seq = row_of("sequential", shards)["digest"]
        proc = row_of("process", shards)["digest"]
        assert seq == proc, (
            f"sharded process run diverged from its sequential oracle at "
            f"P={shards}"
        )
    if 1 in shard_series:
        assert row_of("sequential", 1)["digest"] == flat["digest"], (
            "one shard must be bit-identical to the unsharded service"
        )

    # gate metrics are *absolute* QPS/latency numbers: against a
    # same-hardware baseline they regress monotonically with a slow commit.
    # Machine-relative scaling ratios go under "derived".
    gate = {}
    for shards in shard_series:
        gate[f"qps:process:p{shards}"] = row_of("process", shards)["qps"]
        gate[f"p95_ms:process:p{shards}"] = row_of("process", shards)["p95_ms"]
    gate[f"qps:process-degree:p{shard_series[-1]}"] = degree["qps"]
    base = row_of("process", shard_series[0])["qps"]
    derived = {
        f"speedup:process:p{shards}-vs-p{shard_series[0]}": round(
            row_of("process", shards)["qps"] / base, 3
        )
        for shards in shard_series[1:]
    }
    return {
        "bench": "sharded_service",
        "preset": preset,
        "method": METHOD,
        "cores": multiprocessing.cpu_count(),
        "trace": {"queries": trace.num_queries, "signature": trace.signature()},
        "series": rows,
        "unsharded": flat,
        "degree_partition": degree,
        "derived": derived,
        "gate": gate,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", default="1,2,4",
                        help="comma-separated shard counts to sweep")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny preset: seconds, for the CI bench-smoke job")
    parser.add_argument("--json", default=None,
                        help="write the machine-readable report here")
    parser.add_argument("--assert-scaling", action="store_true",
                        help="fail unless the widest sweep point beats one "
                             "shard's batch QPS (needs real multi-core "
                             "hardware)")
    args = parser.parse_args(argv)
    shard_series = [int(p) for p in args.shards.split(",") if p.strip()]

    payload = run_bench(shard_series, args.smoke)
    print("\ndigests: process == sequential oracle at every shard count, "
          "P=1 == unsharded service: OK")

    if args.json:
        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                       encoding="utf-8")
        print(f"wrote JSON report to {out}")
    if args.assert_scaling:
        widest = shard_series[-1]
        key = f"speedup:process:p{widest}-vs-p{shard_series[0]}"
        ratio = payload["derived"].get(key)
        assert ratio is not None, "--assert-scaling needs >= 2 shard counts"
        assert ratio > 1.0, (
            f"P={widest} is only {ratio:.2f}x one shard's batch QPS "
            f"(needs > 1x; cores={payload['cores']})"
        )
        print(f"acceptance: P={widest} is {ratio:.2f}x one-shard QPS (> 1x): OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
