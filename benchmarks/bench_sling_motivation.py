"""E-A5 — the §1 motivation, quantified: index-free vs index-based SimRank.

The paper's opening argument: SLING has the best static query times, but its
index is expensive to build, large, and must be rebuilt from scratch on
every graph update — so on dynamic graphs, index-free ProbeSim wins end to
end.  This bench measures all four corners of that trade-off on one graph.
"""

from conftest import SCALE, emit_table, get_csr, get_dataset, get_ground_truth, get_queries, make_probesim
from repro.baselines.sling import SLINGIndex
from repro.eval.metrics import abs_error_max
from repro.graph import apply_update, generate_update_stream
from repro.utils.sizing import format_bytes
from repro.utils.timer import Timer

DATASET = "as"


def _build_sling(graph):
    return SLINGIndex(graph, c=0.6, theta=1e-3, d_mode="monte_carlo",
                      d_samples=400, seed=9)


def test_sling_query_faster_but_build_heavy(benchmark):
    """Static profile: SLING queries beat ProbeSim's, but only after a
    preprocessing phase ProbeSim never pays."""
    csr = get_csr(DATASET)
    queries = get_queries(DATASET, 3)
    truth = get_ground_truth(DATASET)

    def run():
        sling = _build_sling(csr)
        probesim = make_probesim(DATASET, eps_a=0.1)
        rows = []
        for name, method, build_t, space in (
            ("sling", sling, sling.build_time, sling.index_bytes()),
            ("probesim", probesim, 0.0, 0),
        ):
            query_t, err = 0.0, 0.0
            for query in queries:
                result = method.single_source(query)
                query_t += result.elapsed / len(queries)
                err += abs_error_max(
                    result.scores, truth.single_source(query), query
                ) / len(queries)
            rows.append(
                {
                    "method": name,
                    "build_s": build_t,
                    "query_s": query_t,
                    "abs_error": err,
                    "index_space": format_bytes(space),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table("sling", rows, f"SLING vs ProbeSim: static profile, scale={SCALE}")
    sling_row, probesim_row = rows
    assert sling_row["query_s"] < probesim_row["query_s"]  # SLING queries win...
    assert sling_row["build_s"] > 0.0  # ...after paying preprocessing
    assert probesim_row["index_space"] == "0 B"


def test_sling_rebuild_dominates_on_dynamic_graphs(benchmark):
    """Dynamic profile: amortised over an update stream with one query per
    update, SLING's rebuild cost swamps its query advantage."""
    graph = get_dataset(DATASET).copy()
    stream = generate_update_stream(graph, 5, seed=10)
    query = get_queries(DATASET, 1)[0]

    def run():
        sling_total = Timer()
        probesim_total = Timer()
        sling = _build_sling(graph)
        probesim = make_probesim(DATASET, eps_a=0.1)
        probesim._source_graph = graph
        for update in stream:
            apply_update(graph, update)
            with sling_total:
                sling.sync()  # SLING's only maintenance option
                sling.single_source(query)
            with probesim_total:
                probesim.sync()
                probesim.single_source(query)
        return sling_total.elapsed, probesim_total.elapsed

    sling_t, probesim_t = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "sling",
        [
            {"method": "sling (sync/update)", "total_s": sling_t},
            {"method": "probesim (sync/update)", "total_s": probesim_t},
            {"method": "probesim advantage", "total_s": sling_t / max(probesim_t, 1e-12)},
        ],
        f"SLING vs ProbeSim: dynamic stream ({len(stream)} updates), scale={SCALE}",
    )
    assert probesim_t < sling_t  # the paper's §1 conclusion
