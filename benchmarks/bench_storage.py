"""E-C4 — the persistent tier: ingest throughput, warm attach vs cold start.

The storage tier's performance claims, measured on one synthetic graph:

- **ingest**: the out-of-core pipeline (parse → spill → counting-sort →
  snapshot) must convert an edge list at a throughput that makes multi-GB
  inputs practical, and its output must be **bit-identical** to the
  in-memory reference path (asserted, not assumed);
- **warm attach vs cold start**: serving from a snapshot is an ``mmap`` +
  header parse — O(1) in the graph size — where the cold path re-reads the
  edge list and rebuilds the CSR every restart.  The speedup is the whole
  reason the snapshot format exists;
- **recovery**: replaying a snapshot + WAL tail after a crash, digest-
  checked against the sequentially applied oracle.

Usage::

    python benchmarks/bench_storage.py                  # full preset
    python benchmarks/bench_storage.py --smoke          # seconds
    python benchmarks/bench_storage.py --json out.json  # perf gate

The ``--json`` report carries a flat ``gate`` block consumed by
``tools/check_bench_regression.py`` (the nightly perf-regression gate).
"""

import argparse
import json
import multiprocessing
import os
import statistics
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from conftest import emit_table  # noqa: E402

from repro.graph import CSRGraph, read_edge_list, write_edge_list  # noqa: E402
from repro.graph.dynamic import EdgeUpdate, apply_update  # noqa: E402
from repro.graph.generators import erdos_renyi_graph  # noqa: E402
from repro.storage import (  # noqa: E402
    PersistentGraphStore,
    attach_snapshot,
    ingest_edge_list,
    recover,
)

SEED = 2017
ATTACH_REPEATS = 5
WAL_TAIL_UPDATES = 64

#: (num_nodes, num_edges) presets; smoke finishes in seconds.
PRESETS = {
    "full": (30_000, 240_000),
    "smoke": (1_000, 6_000),
}


def build_edge_list(workdir: Path, smoke: bool) -> Path:
    n, m = PRESETS["smoke" if smoke else "full"]
    graph = erdos_renyi_graph(n, num_edges=m, seed=SEED)
    path = workdir / "graph.txt"
    write_edge_list(graph, path)
    return path


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def bench_ingest(source: Path, out: Path) -> dict:
    """Out-of-core ingest, digest-checked against the in-memory path."""
    stats, seconds = timed(lambda: ingest_edge_list(source, out))
    reference = CSRGraph.from_digraph(read_edge_list(source)).digest()
    assert stats.digest == reference, (
        "out-of-core ingest drifted from write_snapshot(read_edge_list(...))"
    )
    return {
        "stage": "ingest",
        "seconds": round(seconds, 4),
        "edges_per_s": round(stats.edges / seconds),
        "spill_mb": round(stats.spill_bytes / 2**20, 2),
        "digest": stats.digest[:16],
    }


def bench_cold_start(source: Path) -> dict:
    """The pre-storage restart path: re-read the text, rebuild the CSR."""
    csr, seconds = timed(
        lambda: CSRGraph.from_digraph(read_edge_list(source))
    )
    return {
        "stage": "cold_start",
        "seconds": round(seconds, 4),
        "edges_per_s": round(csr.num_edges / seconds),
        "spill_mb": 0.0,
        "digest": csr.digest()[:16],
    }


def bench_warm_attach(snapshot: Path) -> dict:
    """The storage restart path: mmap the snapshot, zero-copy views."""
    samples = []
    digest = ""
    for _ in range(ATTACH_REPEATS):
        start = time.perf_counter()
        mapped = attach_snapshot(snapshot)
        graph = mapped.graph()
        edges = graph.num_edges
        samples.append(time.perf_counter() - start)
        digest = mapped.header.digest
        del graph
        mapped.close()
    seconds = statistics.median(samples)
    return {
        "stage": "warm_attach",
        "seconds": round(seconds, 6),
        "edges_per_s": round(edges / seconds),
        "spill_mb": 0.0,
        "digest": digest[:16],
    }


def bench_recovery(workdir: Path, source: Path) -> dict:
    """Crash recovery: snapshot + WAL tail replay, oracle-checked."""
    base = CSRGraph.from_digraph(read_edge_list(source)).to_digraph()
    updates = [
        EdgeUpdate("insert", i, (i * 7 + 1) % base.num_nodes)
        for i in range(WAL_TAIL_UPDATES)
        if i != (i * 7 + 1) % base.num_nodes
        and not base.has_edge(i, (i * 7 + 1) % base.num_nodes)
    ]
    store_dir = workdir / "store"
    with PersistentGraphStore.create(store_dir, base) as store:
        store.log(updates)

    start = time.perf_counter()
    with recover(store_dir) as state:
        recovered = state.digest()
        edges = state.snapshot.header.num_edges + len(state.tail)
    seconds = time.perf_counter() - start

    oracle = base.copy()
    for update in updates:
        apply_update(oracle, update)
    assert recovered == CSRGraph.from_digraph(oracle).digest(), (
        "recovery drifted from the sequentially applied oracle"
    )
    return {
        "stage": "recover",
        "seconds": round(seconds, 4),
        "edges_per_s": round(edges / seconds),
        "spill_mb": 0.0,
        "digest": recovered[:16],
    }


def run_bench(smoke: bool) -> dict:
    preset = "smoke" if smoke else "full"
    with tempfile.TemporaryDirectory(prefix="bench-storage-") as tmp:
        workdir = Path(tmp)
        source = build_edge_list(workdir, smoke)
        snapshot = workdir / "graph.csr"
        rows = [
            bench_ingest(source, snapshot),
            bench_cold_start(source),
            bench_warm_attach(snapshot),
            bench_recovery(workdir, source),
        ]
    n, m = PRESETS[preset]
    emit_table(
        "storage", rows,
        (f"Persistent tier: ingest / cold start / warm attach / recovery "
         f"on {n} nodes, {m} edges ({preset} preset, "
         f"cores={multiprocessing.cpu_count()})"),
    )
    by_stage = {row["stage"]: row for row in rows}
    assert by_stage["ingest"]["digest"] == by_stage["cold_start"]["digest"]
    assert by_stage["ingest"]["digest"] == by_stage["warm_attach"]["digest"]

    gate = {
        f"seconds:{stage}": by_stage[stage]["seconds"]
        for stage in ("ingest", "cold_start", "warm_attach", "recover")
    }
    derived = {
        "speedup:attach-vs-cold": round(
            by_stage["cold_start"]["seconds"]
            / max(by_stage["warm_attach"]["seconds"], 1e-9), 1
        ),
    }
    gate.update(derived)
    return {
        "bench": "storage",
        "preset": preset,
        "graph": {"nodes": n, "edges": m, "seed": SEED},
        "cores": multiprocessing.cpu_count(),
        "series": rows,
        "derived": derived,
        "gate": gate,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny preset: seconds, for the CI bench-smoke job")
    parser.add_argument("--json", default=None,
                        help="write the machine-readable report here")
    args = parser.parse_args(argv)

    payload = run_bench(args.smoke)
    print(f"\nwarm attach is {payload['derived']['speedup:attach-vs-cold']}x "
          "faster than the cold edge-list restart (digest-checked)")
    if args.json:
        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
