"""E-T2 — Table 2: SimRank similarities w.r.t. node a on the toy graph.

Regenerates the paper's Table 2 (Power Method at c = 0.25 on the Figure 1
graph) and times the Power Method and a ProbeSim query on the same graph.
"""

import pytest

from conftest import emit_table
from repro import PowerMethod, ProbeSim
from repro.datasets import (
    TOY_DECAY,
    TOY_EXPECTED_SIMRANK_FROM_A,
    TOY_NODE_NAMES,
    toy_graph,
)
from repro.datasets.toy import TOY_TABLE2_TOLERANCE


@pytest.fixture(scope="module")
def toy():
    return toy_graph()


def test_table2_power_method(benchmark, toy):
    """The table itself: paper value vs reproduced value per node."""
    S = benchmark(lambda: PowerMethod(toy, c=TOY_DECAY).compute(iterations=55))
    rows = []
    for name, expected in TOY_EXPECTED_SIMRANK_FROM_A.items():
        got = float(S[0, TOY_NODE_NAMES.index(name)])
        rows.append(
            {
                "node": name,
                "paper_s(a,v)": expected,
                "repro_s(a,v)": round(got, 4),
                "match": abs(got - expected) <= TOY_TABLE2_TOLERANCE,
            }
        )
    emit_table("table2", rows, "Table 2: s(a, *) on the toy graph (c=0.25)")
    assert all(row["match"] for row in rows)


def test_table2_probesim_estimates(benchmark, toy):
    """ProbeSim on the same toy graph: its estimates must sit within eps_a of
    every Table 2 value (the worked-example sanity check)."""
    engine = ProbeSim(toy, c=TOY_DECAY, eps_a=0.05, delta=0.01, seed=1)
    result = benchmark(engine.single_source, 0)
    rows = []
    for name, expected in TOY_EXPECTED_SIMRANK_FROM_A.items():
        got = result.score(TOY_NODE_NAMES.index(name))
        rows.append(
            {
                "node": name,
                "paper_s(a,v)": expected,
                "probesim": round(got, 4),
                "abs_err": round(abs(got - expected), 4),
            }
        )
    emit_table("table2", rows, "Table 2 companion: ProbeSim estimates (eps_a=0.05)")
    assert all(row["abs_err"] <= 0.05 for row in rows)
