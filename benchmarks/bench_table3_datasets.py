"""E-T3 — Table 3: dataset statistics.

Prints the stand-in datasets with the same columns the paper reports (type,
n, m) plus the profile statistics DESIGN.md §2 uses to justify each
substitution, and benchmarks dataset generation + CSR snapshotting.
"""

from conftest import SCALE, emit_table, get_dataset
from repro.datasets import DATASETS, large_dataset_names, load_dataset, small_dataset_names
from repro.graph import CSRGraph, compute_stats


def test_table3_statistics(benchmark):
    def build_rows():
        rows = []
        for name in small_dataset_names() + large_dataset_names():
            stats = compute_stats(get_dataset(name))
            row = {"dataset": name, "kind": DATASETS[name].kind}
            row.update(stats.as_row())
            rows.append(row)
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    emit_table("table3", rows, f"Table 3: stand-in datasets (scale={SCALE})")
    assert len(rows) == 8


def test_bench_generate_wiki_vote(benchmark):
    graph = benchmark.pedantic(
        load_dataset, args=("wiki-vote", SCALE), rounds=1, iterations=1
    )
    assert graph.num_edges > 0


def test_bench_csr_snapshot_largest(benchmark):
    graph = get_dataset("friendster")
    csr = benchmark(CSRGraph.from_digraph, graph)
    assert csr.num_edges == graph.num_edges
