"""E-T4 — Table 4: query time and space overhead on the four large graphs.

The paper's claims reproduced here:
- ProbeSim answers queries on every large graph with zero index space;
- TSF's index is one to two orders of magnitude larger than the graph;
- the TopSim family's cost explodes on locally dense graphs (Twitter-like),
  where ProbeSim stays fast.
"""

import pytest

from conftest import SCALE, emit_table, get_csr, get_queries, make_probesim, make_topsim, make_tsf
from repro.datasets import large_dataset_names
from repro.utils.sizing import format_bytes

DATASETS = large_dataset_names()


def _mean_query_time(method, queries) -> float:
    total = 0.0
    for query in queries:
        total += method.single_source(query).elapsed
    return total / len(queries)


@pytest.mark.parametrize("dataset", DATASETS)
def test_table4_row(benchmark, dataset):
    """One Table 4 row: per-method mean query time + space overhead."""
    csr = get_csr(dataset)
    queries = get_queries(dataset, 3)
    graph_bytes = csr.payload_bytes()

    def build_row():
        probesim = make_probesim(dataset)
        tsf = make_tsf(dataset)
        tsf.materialize_reverse()
        trun = make_topsim(dataset, "truncated")
        prio = make_topsim(dataset, "prioritized")
        row = {
            "dataset": dataset,
            "graph_size": format_bytes(graph_bytes),
            "probesim_t": _mean_query_time(probesim, queries),
            "trun-topsim_t": _mean_query_time(trun, queries),
            "prio-topsim_t": _mean_query_time(prio, queries),
            "tsf_t": _mean_query_time(tsf, queries),
            "probesim_space": format_bytes(0),  # index-free
            "tsf_space": format_bytes(tsf.index_bytes()),
            "tsf_space_x_graph": round(tsf.index_bytes() / graph_bytes, 1),
        }
        return row, tsf.index_bytes()

    row, tsf_bytes = benchmark.pedantic(build_row, rounds=1, iterations=1)
    emit_table("table4", [row], f"Table 4({dataset}): query time & space, scale={SCALE}")
    # the space shape: TSF's index dwarfs the graph (paper: 1-2 orders)
    assert tsf_bytes > 3 * graph_bytes
    # ProbeSim requires no index at all
    assert row["probesim_space"] == "0 B"


def test_table4_full_topsim_cost_on_locally_dense(benchmark):
    """The paper excludes full TopSim on Twitter/Friendster (>24h). At our
    scale it still runs, but must be markedly slower than ProbeSim on the
    locally dense stand-in."""
    dataset = "twitter"
    queries = get_queries(dataset, 2)

    def run_both():
        probesim_t = _mean_query_time(make_probesim(dataset), queries)
        topsim_t = _mean_query_time(make_topsim(dataset, "full"), queries)
        return probesim_t, topsim_t

    probesim_t, topsim_t = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit_table(
        "table4",
        [
            {
                "dataset": dataset,
                "probesim_t": probesim_t,
                "topsim-sm_t": topsim_t,
                "slowdown": round(topsim_t / max(probesim_t, 1e-9), 1),
            }
        ],
        "Table 4 companion: full TopSim vs ProbeSim on the locally dense graph",
    )
    assert topsim_t > probesim_t
