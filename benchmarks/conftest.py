"""Shared infrastructure for the benchmark harness.

Every paper table/figure has one ``bench_*.py`` file.  Scale is controlled by
the ``REPRO_SCALE`` environment variable:

- ``tiny``  (default): minutes for the whole harness; graph sizes of a few
  hundred nodes.  The *shape* of every comparison (who wins, by roughly what
  factor) already shows at this scale.
- ``small``: the sizes used while developing this reproduction (~1k-12k
  nodes); tens of minutes.
- ``paper``: the largest stand-ins (up to 100k nodes).  Hours; closest to the
  paper's relative numbers.

Each bench prints the rows/series of its paper artifact via
``repro.eval.reporting.format_table`` and also appends them to
``benchmarks/results/<scale>/<bench>.txt`` so EXPERIMENTS.md can cite a
concrete run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.api import create
from repro.datasets import load_dataset
from repro.eval.ground_truth import GroundTruth, compute_ground_truth
from repro.eval.queries import sample_query_nodes
from repro.eval.reporting import format_table
from repro.graph import CSRGraph

SCALE = os.environ.get("REPRO_SCALE", "tiny")
if SCALE not in ("tiny", "small", "paper"):
    raise RuntimeError(f"REPRO_SCALE must be tiny|small|paper, got {SCALE!r}")

#: REPRO_SMOKE=1 further shrinks the workload *within* a scale: the CI
#: bench-smoke job runs every bench file in seconds purely to prove the
#: scripts still execute end to end — numbers from a smoke run are not
#: comparable to anything.
SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")

#: number of query nodes averaged per experiment (paper: 100 small / 20 large)
NUM_QUERIES = {"tiny": 4, "small": 10, "paper": 20}[SCALE]
if SMOKE:
    NUM_QUERIES = 2
#: top-k depth (paper: 50)
TOP_K = {"tiny": 10, "small": 25, "paper": 50}[SCALE]
#: TSF index parameters (paper: Rg=300, Rq=40)
TSF_RG = {"tiny": 60, "small": 120, "paper": 300}[SCALE]
TSF_RQ = {"tiny": 6, "small": 12, "paper": 40}[SCALE]
#: ProbeSim eps_a series for the accuracy/time tradeoff (paper: 0.0125..0.1;
#: pure Python needs looser settings at the larger scales to stay tractable)
EPS_SERIES = {
    "tiny": [0.05, 0.1, 0.2],
    "small": [0.1, 0.15, 0.2],
    "paper": [0.1, 0.2],
}[SCALE]
#: fixed eps_a for top-k and large-graph experiments (paper: 0.1)
EPS_TOPK = 0.1

RESULTS_DIR = Path(__file__).parent / "results" / SCALE

_dataset_cache: dict[str, object] = {}
_truth_cache: dict[str, GroundTruth] = {}


def get_dataset(name: str):
    """Cached stand-in dataset at the harness scale."""
    if name not in _dataset_cache:
        _dataset_cache[name] = load_dataset(name, scale=SCALE)
    return _dataset_cache[name]


def get_csr(name: str) -> CSRGraph:
    key = f"{name}#csr"
    if key not in _dataset_cache:
        _dataset_cache[key] = CSRGraph.from_digraph(get_dataset(name))
    return _dataset_cache[key]


def get_ground_truth(name: str) -> GroundTruth:
    """Exact ground truth (Power Method); only valid for graphs under the
    dense cap — the small datasets at every scale, large ones at tiny."""
    if name not in _truth_cache:
        iterations = 55  # the paper's ground-truth recipe
        _truth_cache[name] = compute_ground_truth(
            get_dataset(name), c=0.6, iterations=iterations
        )
    return _truth_cache[name]


def get_queries(name: str, count: int | None = None) -> list[int]:
    return sample_query_nodes(get_dataset(name), count or NUM_QUERIES, seed=2017)


# --------------------------------------------------------------------- #
# method factories (fixed seeds: benches are reproducible)
# --------------------------------------------------------------------- #


#: registry names of the TopSim variants, keyed the way the paper labels them.
TOPSIM_VARIANTS = {
    "full": "topsim",
    "truncated": "trun-topsim",
    "prioritized": "prio-topsim",
}


def make_probesim(name: str, eps_a: float = EPS_TOPK, **overrides):
    """ProbeSim through the method registry at the harness defaults."""
    defaults = dict(c=0.6, eps_a=eps_a, delta=0.1, seed=42, strategy="hybrid")
    defaults.update(overrides)
    return create("probesim", get_csr(name), **defaults)


def make_topsim(name: str, variant: str = "full"):
    """One TopSim variant through the method registry (paper parameters)."""
    return create(
        TOPSIM_VARIANTS[variant],
        get_csr(name),
        c=0.6,
        depth=3,
        degree_threshold=100,
        eta=0.001,
        priority_width=100,
    )


def make_tsf(name: str):
    """TSF through the method registry at the harness scale parameters."""
    return create("tsf", get_csr(name), c=0.6, rg=TSF_RG, rq=TSF_RQ, depth=8, seed=42)


def make_mc(name: str):
    """Monte Carlo through the method registry."""
    return create("mc", get_csr(name), c=0.6, seed=42)


#: the five methods of Figures 4-10, in the paper's legend order.
METHOD_ORDER = ["probesim", "tsf", "topsim-sm", "trun-topsim-sm", "prio-topsim-sm"]


def standard_methods(name: str) -> dict[str, object]:
    """Instantiate the paper's five compared methods for a dataset."""
    return {
        "probesim": make_probesim(name),
        "tsf": make_tsf(name),
        "topsim-sm": make_topsim(name, "full"),
        "trun-topsim-sm": make_topsim(name, "truncated"),
        "prio-topsim-sm": make_topsim(name, "prioritized"),
    }


# --------------------------------------------------------------------- #
# result recording
# --------------------------------------------------------------------- #


def emit_text(bench_name: str, text: str) -> None:
    """Print and persist one experiment artifact (table or chart)."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out = RESULTS_DIR / f"{bench_name}.txt"
    with open(out, "a", encoding="utf-8") as handle:
        handle.write(text + "\n\n")
    print("\n" + text)


def emit_table(bench_name: str, rows: list[dict], title: str) -> str:
    """Render, print, and persist one experiment table."""
    table = format_table(rows, title=title)
    emit_text(bench_name, table)
    return table


def emit_chart(bench_name: str, rows: list[dict], x_key: str, y_key: str,
               title: str, **kwargs) -> None:
    """Render the rows as the paper-style ASCII scatter plot."""
    from repro.eval.charts import tradeoff_chart

    chart = tradeoff_chart(rows, x_key, y_key, title=title, **kwargs)
    emit_text(bench_name, chart)


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_dir():
    """Truncate previous result files once per session."""
    if RESULTS_DIR.exists():
        for path in RESULTS_DIR.glob("*.txt"):
            path.unlink()
    yield
