"""Cached expensive runs shared between benchmark files.

Figures 5-7 plot three metrics of the *same* top-k run; Figures 8-10 plot
three metrics of the *same* pooling run.  These helpers compute each run once
per session and let every figure bench read its own column.
"""

from __future__ import annotations

from functools import lru_cache

import conftest as C
from repro.eval.pooling import exact_expert, monte_carlo_expert, pool_evaluate
from repro.eval.runner import MethodSpec, run_single_source, run_topk


def method_factory(dataset: str, name: str):
    """Zero-argument factory for one of the five standard methods."""
    factories = {
        "probesim": lambda: C.make_probesim(dataset),
        "tsf": lambda: C.make_tsf(dataset),
        "topsim-sm": lambda: C.make_topsim(dataset, "full"),
        "trun-topsim-sm": lambda: C.make_topsim(dataset, "truncated"),
        "prio-topsim-sm": lambda: C.make_topsim(dataset, "prioritized"),
    }
    return factories[name]


@lru_cache(maxsize=None)
def topk_outcomes(dataset: str):
    """Figures 5-7 run: top-k quality of the five methods vs exact truth."""
    truth = C.get_ground_truth(dataset)
    queries = C.get_queries(dataset)
    specs = [
        MethodSpec(name, method_factory(dataset, name)) for name in C.METHOD_ORDER
    ]
    outcomes = run_topk(specs, queries, truth, k=C.TOP_K)
    return {o.method: o for o in outcomes}


@lru_cache(maxsize=None)
def single_source_outcomes(dataset: str):
    """Figure 4 run: AbsError + time; ProbeSim swept over the eps_a series."""
    truth = C.get_ground_truth(dataset)
    queries = C.get_queries(dataset)
    specs = [
        MethodSpec(
            f"probesim(eps={eps})",
            (lambda e=eps: C.make_probesim(dataset, eps_a=e)),
        )
        for eps in C.EPS_SERIES
    ] + [
        MethodSpec("tsf", lambda: C.make_tsf(dataset)),
        MethodSpec("topsim-sm", lambda: C.make_topsim(dataset, "full")),
        MethodSpec("trun-topsim-sm", lambda: C.make_topsim(dataset, "truncated")),
        MethodSpec("prio-topsim-sm", lambda: C.make_topsim(dataset, "prioritized")),
    ]
    return run_single_source(specs, queries, truth)


def pool_k_series() -> list[int]:
    """The k values of Figures 8-10's x-axis (paper: 10, 20, 30, 40, 50),
    scaled so the largest matches the harness TOP_K."""
    step = max(1, C.TOP_K // 5)
    return [step * i for i in range(1, 6)]


@lru_cache(maxsize=None)
def pooling_evaluations(dataset: str):
    """Figures 8-10 run: pooling protocol over the large stand-ins.

    Each method's top-TOP_K list per query is pooled once; the pooled truth
    is then evaluated at every k in :func:`pool_k_series` (the figures' five
    x-axis buckets).  Returns ``(evaluations_by_k, mean query time per
    method)`` where ``evaluations_by_k[k]`` is the per-query evaluation list.
    """
    methods = C.standard_methods(dataset)
    queries = C.get_queries(dataset)
    graph = C.get_dataset(dataset)
    if graph.num_nodes <= 2000:  # exact expert affordable at tiny scale
        expert = exact_expert(C.get_ground_truth(dataset))
    else:
        expert = monte_carlo_expert(
            C.get_csr(dataset), c=0.6, eps=0.02, delta=0.01, seed=7
        )
    evaluations_by_k: dict[int, list] = {k: [] for k in pool_k_series()}
    times: dict[str, list[float]] = {name: [] for name in methods}
    for query in queries:
        results = {}
        for name, method in methods.items():
            top = method.single_source(query).topk(C.TOP_K)
            results[name] = top
            times[name].append(top.elapsed)
        for k in pool_k_series():
            truncated = {
                name: type(top)(
                    query=top.query,
                    nodes=top.nodes[:k],
                    scores=top.scores[:k],
                    elapsed=top.elapsed,
                    method=top.method,
                )
                for name, top in results.items()
            }
            evaluations_by_k[k].append(pool_evaluate(truncated, expert, k=k))
    mean_times = {
        name: sum(vals) / len(vals) for name, vals in times.items()
    }
    return evaluations_by_k, mean_times


def mean_pool_metric(dataset: str, metric: str, k: int | None = None) -> dict[str, float]:
    """Average a pooling metric (precision / ndcg / tau) per method at ``k``
    (defaults to the deepest bucket)."""
    evaluations_by_k, _ = pooling_evaluations(dataset)
    if k is None:
        k = max(evaluations_by_k)
    evaluations = evaluations_by_k[k]
    out: dict[str, float] = {}
    for name in C.METHOD_ORDER:
        values = [getattr(ev, metric)[name] for ev in evaluations]
        out[name] = sum(values) / len(values)
    return out


def pool_metric_series(dataset: str, metric: str) -> list[dict]:
    """Figure 8-10 rows: one row per (k, method) with the metric mean."""
    rows = []
    for k in pool_k_series():
        means = mean_pool_metric(dataset, metric, k=k)
        for name in C.METHOD_ORDER:
            rows.append({"k": k, "method": name, metric: means[name]})
    return rows
