"""Batched trie-sharing engine: the serving hot path, demonstrated.

One ProbeSim configuration, two execution engines:

- ``engine="loop"``   — the paper's per-prefix probe loop (oracle path);
- ``engine="batched"`` — all sampled walks enter a prefix trie and every
  trie level advances with one sparse matmul; a whole query batch shares
  the sweep as a forest.

The demo checks three things end to end: identical fixed-seed answers to
float round-off, a single-query speedup, and a service batch flowing
through ``SimRankService.topk_many`` into one forest sweep.

Run:  python examples/batched_throughput.py
"""

import numpy as np

from repro import ProbeSim, SimRankService
from repro.graph.generators import erdos_renyi_graph
from repro.utils.timer import Timer

graph = erdos_renyi_graph(800, num_edges=4_000, seed=11)
print(f"graph: {graph}")

CONFIG = dict(c=0.6, eps_a=0.1, delta=0.1, strategy="batch",
              num_walks=800, seed=42)
QUERY = 17

# -- same answers, different execution ------------------------------------
loop_engine = ProbeSim(graph, engine="loop", **CONFIG)
batched_engine = ProbeSim(graph, engine="batched", **CONFIG)

with Timer() as t_loop:
    loop_result = loop_engine.single_source(QUERY)
with Timer() as t_batched:
    batched_result = batched_engine.single_source(QUERY)

gap = float(np.abs(loop_result.scores - batched_result.scores).max())
print(f"\nsingle-source from node {QUERY} ({loop_result.num_walks} walks)")
print(f"  loop engine:    {t_loop.elapsed:.3f}s")
print(f"  batched engine: {t_batched.elapsed:.3f}s "
      f"({t_loop.elapsed / t_batched.elapsed:.1f}x)")
print(f"  max |loop - batched| = {gap:.2e} (same walks, shared probes)")
assert gap <= loop_engine.config.eps_a  # bounded by the pruning budget
assert batched_engine.capabilities().vectorized

# -- a service batch rides one forest sweep -------------------------------
service = SimRankService(
    graph,
    methods=("probesim-batched",),
    configs={"probesim-batched": dict(eps_a=0.1, delta=0.1,
                                      num_walks=800, seed=7)},
)
hot_queries = [17, 3, 17, 250, 3, 17, 99]  # hot-key mix: dedup + forest
with Timer() as t_batch:
    tops = service.topk_many(hot_queries, k=5)
print(f"\nservice batch of {len(hot_queries)} top-5 queries "
      f"({service.stats.batch_dedup_saved} served from batch dedup): "
      f"{t_batch.elapsed:.3f}s")
for query, top in zip(hot_queries[:3], tops[:3]):
    best, score = top.as_pairs()[0]
    print(f"  node {query}: most similar {best} (s ~= {score:.3f})")

# duplicates inside the batch share one answer object
assert tops[0].as_pairs() == tops[2].as_pairs()
print("\nbatched engine = same guarantee, shared work — done.")
