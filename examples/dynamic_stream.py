"""Real-time SimRank on a dynamic graph — the paper's headline scenario.

An evolving social graph receives a stream of edge insertions/deletions with
similarity queries interleaved.  Three maintenance regimes are compared:

- **ProbeSim** (index-free): an O(m) adjacency sync is its *entire*
  maintenance cost, so every answer reflects the current graph;
- **TSF incremental**: the one-way-graph index is patched per update (the
  only index in the paper's comparison that supports updates at all);
- **TSF stale**: the same index left unmaintained — what happens to an
  index-based method that cannot afford update handling.

Run:  python examples/dynamic_stream.py
"""

from repro import ProbeSim, TSFIndex
from repro.datasets import load_dataset
from repro.eval import abs_error_max, compute_ground_truth, sample_query_nodes
from repro.graph import apply_update, generate_update_stream
from repro.utils.timer import Timer

graph = load_dataset("as", scale="tiny").copy()
print(f"evolving graph: {graph}")

stream = generate_update_stream(graph, num_updates=120, insert_fraction=0.6, seed=5)
print(f"update stream: {stream}")

probesim = ProbeSim(graph, c=0.6, eps_a=0.1, delta=0.05, seed=1)
tsf_live = TSFIndex(graph, c=0.6, rg=80, rq=8, seed=2)
tsf_stale = TSFIndex(graph, c=0.6, rg=80, rq=8, seed=3)  # never updated

query = sample_query_nodes(graph, 1, seed=4)[0]
maintenance = {"probesim": Timer(), "tsf-incremental": Timer()}

CHECKPOINTS = (39, 79, 119)
print(f"\nquerying node {query} at checkpoints {CHECKPOINTS}:")
print(f"{'updates':>8} {'probesim':>10} {'tsf-live':>10} {'tsf-stale':>10}")

for i, update in enumerate(stream):
    apply_update(graph, update)
    with maintenance["probesim"]:
        probesim.sync()
    with maintenance["tsf-incremental"]:
        tsf_live.apply_update(update)
    # tsf_stale receives nothing
    if i in CHECKPOINTS:
        truth = compute_ground_truth(graph, c=0.6, iterations=40)
        row = truth.single_source(query)
        errors = {
            "probesim": abs_error_max(probesim.single_source(query).scores, row, query),
            "tsf-live": abs_error_max(tsf_live.single_source(query).scores, row, query),
            "tsf-stale": abs_error_max(tsf_stale.single_source(query).scores, row, query),
        }
        print(
            f"{i + 1:>8} {errors['probesim']:>10.4f} "
            f"{errors['tsf-live']:>10.4f} {errors['tsf-stale']:>10.4f}"
        )

per_update_probesim = maintenance["probesim"].elapsed / len(stream)
per_update_tsf = maintenance["tsf-incremental"].elapsed / len(stream)
print(
    f"\nmaintenance per update: probesim sync {per_update_probesim * 1e3:.2f} ms, "
    f"tsf incremental {per_update_tsf * 1e3:.2f} ms"
)
print("probesim answers always reflect the current graph; an unmaintained "
      "index drifts — done.")
