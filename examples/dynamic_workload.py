"""Mixed query/update traffic: the paper's dynamic-graph claim, end to end.

Generates one reproducible workload trace (Zipf-skewed queries interleaved
with edge updates) and replays it against three methods with different
maintenance stories:

- ``probesim-batched``  — index-free; maintenance is an O(m) re-snapshot;
- ``tsf``               — updatable index; incremental patch per update;
- ``probesim-walkindex``— walk cache; fine-grained invalidation per update.

Run with ``PYTHONPATH=src python examples/dynamic_workload.py``.
"""

from repro import generate_workload, run_workload
from repro.eval.reporting import format_table
from repro.graph.generators import erdos_renyi_graph

SEED = 7
METHODS = ["probesim-batched", "tsf", "probesim-walkindex"]
CONFIGS = {
    # num_walks overrides keep the example fast; drop them for the
    # Chernoff-sized budgets (eps_a/delta) the experiments use
    "probesim-batched": {"num_walks": 150, "seed": SEED},
    "tsf": {"rg": 40, "rq": 6, "depth": 6, "seed": SEED},
    "probesim-walkindex": {"num_walks": 150, "seed": SEED},
}


def main() -> None:
    graph = erdos_renyi_graph(250, 1_200, seed=1)

    # one trace, 85% reads with web-like key skew, valid updates throughout
    trace = generate_workload(
        graph, num_ops=200, read_fraction=0.85, zipf_s=1.0,
        insert_fraction=0.5, seed=SEED,
    )
    print(trace)

    result = run_workload(graph, trace, METHODS, configs=CONFIGS, workers=2)
    print(format_table(
        result.rows(),
        title=(f"{trace.num_queries} queries / {trace.num_updates} updates, "
               f"2 workers"),
    ))

    # the replay is bit-reproducible: same trace + seeds => same digests
    # (re-checked on the two cheap methods to keep the example snappy)
    subset = ["probesim-batched", "tsf"]
    configs = {name: CONFIGS[name] for name in subset}
    first = run_workload(graph, trace, subset, configs=configs, workers=2)
    again = run_workload(graph, trace, subset, configs=configs, workers=2)
    assert [r.digest for r in first.reports] == [r.digest for r in again.reports]
    print("replay digests reproduced bit-for-bit")

    # every method answered the full query load
    assert all(r.num_queries == trace.num_queries for r in result.reports)
    assert all(r.latency.count == trace.num_queries for r in result.reports)
    print("done.")


if __name__ == "__main__":
    main()
