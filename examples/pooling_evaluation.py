"""Evaluating SimRank methods without ground truth, via pooling (§6.2).

On graphs too large for the exact Power Method, the paper borrows *pooling*
from IR: merge every method's top-k list into a pool, score the pool with a
trusted expert (here: single-pair Monte Carlo with a Chernoff budget), and
treat the pool's best k as ground truth.  This example runs the full
protocol on a mid-size stand-in graph and prints the Figure 8-10 metrics.

Run:  python examples/pooling_evaluation.py
"""

from repro import ProbeSim, TSFIndex, TopSim
from repro.datasets import load_dataset
from repro.eval import format_table, sample_query_nodes
from repro.eval.pooling import monte_carlo_expert, pool_evaluate

graph = load_dataset("livejournal", scale="tiny")
print(f"graph: {graph} (no exact ground truth used)")

methods = {
    "probesim": ProbeSim(graph, c=0.6, eps_a=0.1, delta=0.1, seed=1),
    "tsf": TSFIndex(graph, c=0.6, rg=60, rq=6, seed=2),
    "prio-topsim-sm": TopSim(graph, c=0.6, depth=3, variant="prioritized",
                             priority_width=100),
}

# the expert: single-pair MC at a (scaled-down) Chernoff budget
expert = monte_carlo_expert(graph, c=0.6, eps=0.02, delta=0.01, seed=3)

K = 10
queries = sample_query_nodes(graph, 4, seed=4)
per_method = {name: {"precision": 0.0, "ndcg": 0.0, "tau": 0.0} for name in methods}

for query in queries:
    results = {name: method.topk(query, K) for name, method in methods.items()}
    evaluation = pool_evaluate(results, expert, k=K)
    print(f"query {query}: pool size {len(evaluation.pool)}, "
          f"pooled truth {list(evaluation.truth_nodes)[:5]}...")
    for name in methods:
        per_method[name]["precision"] += evaluation.precision[name] / len(queries)
        per_method[name]["ndcg"] += evaluation.ndcg[name] / len(queries)
        per_method[name]["tau"] += evaluation.tau[name] / len(queries)

rows = [{"method": name, **metrics} for name, metrics in per_method.items()]
print()
print(format_table(rows, title=f"pooled top-{K} quality over {len(queries)} queries"))

assert per_method["probesim"]["precision"] >= per_method["tsf"]["precision"] - 0.05
print("\nProbeSim matches or beats the index-based TSF under pooling — done.")
