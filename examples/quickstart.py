"""Quickstart: single-source and top-k SimRank with ProbeSim.

Builds a small graph, runs the two query types from the paper's problem
definition (Definitions 1-2), and checks the answers against the exact Power
Method — all through the public API.

Run:  python examples/quickstart.py
"""

from repro import DiGraph, PowerMethod, ProbeSim

# A small directed graph: edges point from follower to followee.
edges = [
    (0, 1), (0, 2),
    (1, 0), (1, 2), (1, 3), (1, 4),
    (2, 0), (2, 5),
    (3, 5), (3, 6),
    (4, 5), (4, 6),
    (5, 6),
    (6, 2),
]
graph = DiGraph.from_edges(edges)
print(f"graph: {graph}")

# ProbeSim: index-free; eps_a / delta give the Theorem 1 guarantee that with
# probability >= 1 - delta every estimate is within eps_a of the true value.
engine = ProbeSim(graph, c=0.6, eps_a=0.05, delta=0.01, seed=7)

QUERY = 5

# -- Definition 1: approximate single-source query ------------------------
result = engine.single_source(QUERY)
print(f"\nsingle-source from node {QUERY} "
      f"({result.num_walks} sqrt(c)-walks, {result.elapsed:.3f}s):")
for node, score in sorted(result.as_dict(threshold=0.001).items()):
    print(f"  s({QUERY}, {node}) ~= {score:.4f}")

# -- Definition 2: approximate top-k query --------------------------------
top = engine.topk(QUERY, k=3)
print(f"\ntop-{top.k} most similar to node {QUERY}:")
for rank, (node, score) in enumerate(top, start=1):
    print(f"  #{rank}: node {node} (s ~= {score:.4f})")

# -- cross-check against the exact Power Method ---------------------------
exact = PowerMethod(graph, c=0.6).single_source(QUERY)
worst = max(
    abs(result.score(v) - exact.score(v))
    for v in range(graph.num_nodes)
    if v != QUERY
)
print(f"\nmax |estimate - exact| = {worst:.4f}  (guarantee: <= 0.05)")
assert worst <= 0.05
print("within the configured error budget — done.")
