"""Related-paper recommendation on a citation network (top-k SimRank).

The scenario from the paper's introduction: SimRank's "two nodes are similar
if their neighbours are similar" recursion makes it a natural relatedness
measure on citation graphs — two papers are similar when they are cited by
similar papers.  This example builds a synthetic citation network with
planted topic communities, then uses top-k SimRank to recommend related
papers and checks the recommendations stay inside the query's topic.

Run:  python examples/topk_recommendation.py
"""

import numpy as np

from repro import DiGraph, ProbeSim

rng = np.random.default_rng(2017)

# --- build a citation network with 4 planted topics ----------------------
NUM_TOPICS = 4
PAPERS_PER_TOPIC = 120
N = NUM_TOPICS * PAPERS_PER_TOPIC

def topic_of(paper: int) -> int:
    return paper // PAPERS_PER_TOPIC

graph = DiGraph(N)
for paper in range(N):
    # each paper cites ~6 earlier papers: 85% within its topic
    base = topic_of(paper) * PAPERS_PER_TOPIC
    earlier_in_topic = paper - base
    for _ in range(6):
        if earlier_in_topic > 0 and rng.random() < 0.85:
            target = base + int(rng.integers(earlier_in_topic))
        elif paper > 0:
            target = int(rng.integers(paper))
        else:
            continue
        if target != paper and not graph.has_edge(paper, target):
            graph.add_edge(paper, target)

print(f"citation network: {graph} with {NUM_TOPICS} planted topics")

# --- recommend related papers with top-k SimRank -------------------------
engine = ProbeSim(graph, c=0.6, eps_a=0.1, delta=0.05, seed=11)

K = 10
queries = [int(q) for q in rng.choice(N // 2, size=5, replace=False) + N // 2]
in_topic_total = 0
for query in queries:
    top = engine.topk(query, k=K)
    in_topic = sum(1 for node, _ in top if topic_of(node) == topic_of(query))
    in_topic_total += in_topic
    preview = ", ".join(
        f"{node}(t{topic_of(node)})" for node, _ in list(top)[:5]
    )
    print(
        f"paper {query} (topic {topic_of(query)}): "
        f"{in_topic}/{K} recommendations in-topic — top-5: {preview}"
    )

rate = in_topic_total / (len(queries) * K)
print(f"\noverall in-topic recommendation rate: {rate:.0%}")
assert rate > 0.6, "SimRank should recover the planted topics"
print("recommendations follow the planted community structure — done.")
