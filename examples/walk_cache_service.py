"""A similarity service with the walk-cache index (§7 future-work extension).

Scenario: a "people also follow" endpoint serves repeated top-k queries for
a hot set of accounts while the follower graph keeps changing.  The
WalkIndex extension caches each hot account's sqrt(c)-walk tree: repeat
queries skip walk sampling, and updates evict exactly the trees whose walks
they staled — a lightweight middle ground between index-free ProbeSim and a
heavyweight structure like TSF.

Run:  python examples/walk_cache_service.py
"""

import numpy as np

from repro import WalkIndex
from repro.datasets import load_dataset
from repro.eval import sample_query_nodes
from repro.graph import apply_update, generate_update_stream
from repro.utils.sizing import format_bytes
from repro.utils.timer import Timer

graph = load_dataset("wiki-vote", scale="tiny").copy()
print(f"follower graph: {graph}")

service = WalkIndex(graph, c=0.6, eps_a=0.1, delta=0.1, seed=9)
hot_accounts = sample_query_nodes(graph, 6, seed=10)
service.warm(hot_accounts)
print(f"warmed cache for hot accounts {hot_accounts}: "
      f"{service.num_cached} trees, payload {format_bytes(service.payload_bytes())}")

# --- serve a request mix: 80% hot accounts, interleaved with updates -----
# request:update ratio of 8:1 — similarity reads vastly outnumber graph
# writes in a serving workload, which is what makes caching pay off.
rng = np.random.default_rng(11)
stream = generate_update_stream(graph, 15, seed=12)
serving = Timer()
served = 0
for i, update in enumerate(stream):
    apply_update(graph, update)
    service.apply_update(update)
    for _ in range(8):  # eight requests between updates
        if rng.random() < 0.8:
            account = hot_accounts[int(rng.integers(len(hot_accounts)))]
        else:
            account = sample_query_nodes(graph, 1, seed=int(rng.integers(1 << 30)))[0]
        with serving:
            top = service.topk(account, k=5)
        served += 1
        assert top.k <= 5

print(f"\nserved {served} top-5 requests in {serving.elapsed:.2f}s "
      f"({serving.elapsed / served * 1e3:.1f} ms/request)")
print(f"cache after the stream: {service.num_cached} trees alive, "
      f"hit rate {service.hit_rate:.0%}")
assert service.hit_rate > 0.3
print("cached walk trees survive unrelated updates and keep answers exact "
      "w.r.t. the live graph — done.")
