"""A similarity service backed by SimRankService + the walk-cache index.

Scenario: a "people also follow" endpoint serves batched top-k queries for a
hot set of accounts while the follower graph keeps changing.  The service
layer owns the graph and the estimators:

- requests arrive in *batches*; the service deduplicates each batch, so a
  hot account queried five times in one batch samples its sqrt(c)-walks once;
- the ``probesim-walkindex`` method caches each hot account's walk tree
  across batches and advertises ``incremental_updates``, so the service
  notifies it per edge update (evicting exactly the stale trees) instead of
  re-syncing from scratch.

Run:  python examples/walk_cache_service.py
"""

import numpy as np

from repro import SimRankService
from repro.datasets import load_dataset
from repro.eval import sample_query_nodes
from repro.graph import generate_update_stream
from repro.utils.sizing import format_bytes
from repro.utils.timer import Timer

graph = load_dataset("wiki-vote", scale="tiny").copy()
print(f"follower graph: {graph}")

service = SimRankService(
    graph,
    methods=("probesim-walkindex",),
    configs={"probesim-walkindex": {"c": 0.6, "eps_a": 0.1, "delta": 0.1, "seed": 9}},
)
cache = service.estimator()  # the WalkIndex instance behind the method
print(f"capabilities: {service.capabilities()}")

hot_accounts = sample_query_nodes(graph, 6, seed=10)
cache.warm(hot_accounts)
print(f"warmed cache for hot accounts {hot_accounts}: "
      f"{cache.num_cached} trees, payload {format_bytes(cache.payload_bytes())}")

# --- serve batched requests: 80% hot accounts, interleaved with updates ----
# request:update ratio of 8:1 — similarity reads vastly outnumber graph
# writes in a serving workload, which is what makes caching pay off.
rng = np.random.default_rng(11)
stream = generate_update_stream(graph, 15, seed=12)
serving = Timer()
served = 0
for update in stream:
    # the service applies the update to the graph and, because the walk
    # cache is incremental, evicts only the trees the update staled
    service.apply_update_stream([update])
    batch = []
    for _ in range(8):  # eight requests between updates, served as one batch
        if rng.random() < 0.8:
            batch.append(hot_accounts[int(rng.integers(len(hot_accounts)))])
        else:
            batch.append(sample_query_nodes(graph, 1, seed=int(rng.integers(1 << 30)))[0])
    with serving:
        tops = service.topk_many(batch, k=5)
    served += len(tops)
    assert all(top.k <= 5 for top in tops)

stats = service.stats
print(f"\nserved {served} top-5 requests in {serving.elapsed:.2f}s "
      f"({serving.elapsed / served * 1e3:.1f} ms/request)")
print(f"batch dedup saved {stats.batch_dedup_saved} of {stats.batched_queries} "
      f"queries; {stats.incremental_notifications} incremental update "
      f"notifications, {stats.syncs} full syncs")
print(f"cache after the stream: {cache.num_cached} trees alive, "
      f"cross-batch hit rate {cache.hit_rate:.0%}")
# within a batch, duplicates are served by the batch dedup (they never even
# reach the cache); across batches, surviving trees serve the hot accounts
assert stats.batch_dedup_saved > 0
assert stats.syncs == 0  # the walk cache never needed a full rebuild
assert cache.num_cached > 0
print("cached walk trees survive unrelated updates, batches share sampling, "
      "and answers stay exact w.r.t. the live graph — done.")
