"""Setup shim: this environment's setuptools lacks the `wheel` package, so
PEP 660 editable installs fail; this file enables the legacy editable path.
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
