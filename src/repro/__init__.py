"""ProbeSim — scalable single-source and top-k SimRank on dynamic graphs.

A from-scratch Python reproduction of Liu et al., PVLDB 11(1), 2017
(arXiv:1709.06955).  See README.md for a tour of the system, the method
registry, and the dynamic-update story.

Quickstart::

    from repro import DiGraph, ProbeSim

    graph = DiGraph.from_edges([(0, 1), (1, 0), (2, 0), (2, 1)])
    engine = ProbeSim(graph, c=0.6, eps_a=0.1, delta=0.01, seed=42)
    result = engine.single_source(0)       # Definition 1
    top = engine.topk(0, k=10)             # Definition 2

Every method conforms to the :class:`SimRankEstimator` protocol and is
constructible by name through the registry::

    from repro.api import create

    estimator = create("probesim", graph, eps_a=0.1, seed=42)
    results = estimator.single_source_many([0, 1, 2])   # batched hot path
    estimator.sync()                                    # after graph updates
"""

from repro.api import Capabilities, SimRankEstimator, SimRankService
from repro.baselines import MonteCarlo, PowerMethod, SLINGIndex, TSFIndex, TopSim
from repro.core import ProbeSim, ProbeSimConfig, SimRankResult, TopKResult
from repro.errors import ReproError
from repro.extensions import AdaptiveTopK, WalkIndex
from repro.graph import CSRGraph, DiGraph
from repro.storage import (
    PersistentGraphStore,
    attach_snapshot,
    ingest_edge_list,
    recover,
    write_snapshot,
)
from repro.workloads import WorkloadConfig, WorkloadTrace, generate_workload, run_workload

__version__ = "2.0.0"

__all__ = [
    "AdaptiveTopK",
    "CSRGraph",
    "Capabilities",
    "DiGraph",
    "MonteCarlo",
    "PersistentGraphStore",
    "PowerMethod",
    "ProbeSim",
    "ProbeSimConfig",
    "ReproError",
    "SLINGIndex",
    "SimRankEstimator",
    "SimRankResult",
    "SimRankService",
    "TSFIndex",
    "TopKResult",
    "TopSim",
    "WalkIndex",
    "WorkloadConfig",
    "WorkloadTrace",
    "__version__",
    "attach_snapshot",
    "generate_workload",
    "ingest_edge_list",
    "recover",
    "run_workload",
    "write_snapshot",
]
