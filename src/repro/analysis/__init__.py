"""Static invariant analysis for the repro codebase.

The serving stack's correctness rests on conventions that no general
linter checks: every RNG must be seed-derived, annotated fields must only
mutate under their lock, every shared-memory/mmap/WAL handle must reach a
finalizer, HTTP error sites must emit the ``{"error": {"code", ...}}``
envelope, and thread/process spawns must go through the pool/driver
abstractions.  This package enforces those invariants with stdlib-``ast``
rules (``repro analyze``) plus a runtime lock-order sanitizer
(``repro.analysis.sanitizer``, a pytest plugin).

Layout:

- ``findings``  -- the :class:`~repro.analysis.findings.Finding` model.
- ``visitor``   -- parsed-source context (parents, qualnames, comment
  annotations) shared by every rule.
- ``rules``     -- one module per invariant family.
- ``baseline``  -- committed suppression file with justifications.
- ``runner``    -- two-pass orchestration (project index, then rules).
- ``report``    -- text/JSON reporters with stable ordering.
- ``sanitizer`` -- runtime lock-order + dispatch-thread sanitizer.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.findings import Finding
from repro.analysis.runner import AnalysisReport, analyze, default_target, iter_rules

__all__ = [
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "analyze",
    "default_target",
    "iter_rules",
]
