"""Committed baseline suppressions for pre-existing / deliberate findings.

The baseline is a JSON file (``.analysis-baseline.json`` at the repo
root) whose entries match findings by ``(rule, path, key)`` — the key is
line-independent, so suppressions survive unrelated edits.  Every entry
must carry a non-empty ``justification``; ``repro analyze --strict``
additionally fails when an entry no longer matches anything (stale
suppressions hide regressions of the fix that made them stale).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.findings import Finding
from repro.errors import AnalysisError

FORMAT_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    key: str
    justification: str

    def identity(self) -> tuple[str, str, str]:
        """The ``(rule, path, key)`` triple this entry suppresses."""
        return (self.rule, self.path, self.key)

    def to_dict(self) -> dict[str, object]:
        """The entry's on-disk JSON object form."""
        return {
            "rule": self.rule,
            "path": self.path,
            "key": self.key,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    entries: list[BaselineEntry]
    path: Path | None = None

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries=[])

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise AnalysisError(f"cannot read baseline file {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"baseline file {path} is not valid JSON: {exc}") from exc
        if not isinstance(raw, dict) or "suppressions" not in raw:
            raise AnalysisError(
                f"baseline file {path} must be an object with a 'suppressions' list"
            )
        version = raw.get("version", FORMAT_VERSION)
        if version != FORMAT_VERSION:
            raise AnalysisError(
                f"baseline file {path} has unsupported version {version!r} "
                f"(expected {FORMAT_VERSION})"
            )
        suppressions = raw["suppressions"]
        if not isinstance(suppressions, list):
            raise AnalysisError(f"baseline file {path}: 'suppressions' must be a list")
        entries: list[BaselineEntry] = []
        for position, item in enumerate(suppressions):
            if not isinstance(item, dict):
                raise AnalysisError(
                    f"baseline file {path}: suppression #{position} is not an object"
                )
            try:
                entry = BaselineEntry(
                    rule=str(item["rule"]),
                    path=str(item["path"]),
                    key=str(item["key"]),
                    justification=str(item["justification"]),
                )
            except KeyError as exc:
                raise AnalysisError(
                    f"baseline file {path}: suppression #{position} is missing {exc}"
                ) from exc
            if not entry.justification.strip():
                raise AnalysisError(
                    f"baseline file {path}: suppression #{position} "
                    f"({entry.rule} / {entry.key}) has an empty justification; "
                    "every exemption must say why"
                )
            entries.append(entry)
        return cls(entries=entries, path=path)

    def partition(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """Split findings into (unsuppressed, suppressed) and report stale
        baseline entries that matched nothing."""
        by_identity = {entry.identity(): entry for entry in self.entries}
        matched: set[tuple[str, str, str]] = set()
        unsuppressed: list[Finding] = []
        suppressed: list[Finding] = []
        for finding in findings:
            identity = finding.identity()
            if identity in by_identity:
                matched.add(identity)
                suppressed.append(finding)
            else:
                unsuppressed.append(finding)
        stale = [entry for entry in self.entries if entry.identity() not in matched]
        return unsuppressed, suppressed, stale
