"""Finding model shared by every analysis rule and reporter."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a concrete source location.

    ``key`` is a line-independent identity (enclosing qualname plus the
    offending symbol) so committed baseline suppressions survive
    unrelated edits that shift line numbers.
    """

    path: str
    line: int
    col: int
    rule: str
    key: str
    message: str

    def identity(self) -> tuple[str, str, str]:
        """The triple a baseline entry must match to suppress this finding."""
        return (self.rule, self.path, self.key)

    def to_dict(self) -> dict[str, object]:
        """Flat JSON-ready row (the ``--json`` reporter payload shape)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "key": self.key,
            "message": self.message,
        }

    def render(self) -> str:
        """One-line ``path:line:col: [rule] message`` report form."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message} (key: {self.key})"
