"""Text and JSON reporters with stable ordering."""

from __future__ import annotations

import json

from repro.analysis.runner import AnalysisReport


def render_text(report: AnalysisReport, *, strict: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary line."""
    lines: list[str] = []
    for finding in report.findings:
        lines.append(finding.render())
    if report.findings:
        lines.append("")
    if strict and report.stale_baseline:
        for entry in report.stale_baseline:
            lines.append(
                f"stale baseline entry: [{entry.rule}] {entry.path} (key: {entry.key}) "
                "matches nothing; remove it so the fixed invariant stays enforced"
            )
        lines.append("")
    lines.append(
        f"{len(report.findings)} finding(s), {len(report.suppressed)} suppressed "
        f"by baseline, {len(report.stale_baseline)} stale baseline entr(y/ies), "
        f"{report.files_scanned} file(s) scanned"
    )
    return "\n".join(lines)


def render_json(report: AnalysisReport, *, strict: bool = False) -> str:
    """Machine-readable report (the ``repro analyze --json`` payload)."""
    payload = {
        "clean": report.is_clean(strict=strict),
        "strict": strict,
        "files_scanned": report.files_scanned,
        "rules": report.rules,
        "findings": [finding.to_dict() for finding in report.findings],
        "suppressed": [finding.to_dict() for finding in report.suppressed],
        "stale_baseline": [entry.to_dict() for entry in report.stale_baseline],
        "summary": {
            "findings": len(report.findings),
            "suppressed": len(report.suppressed),
            "stale_baseline": len(report.stale_baseline),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
