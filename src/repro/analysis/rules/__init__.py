"""Rule registry: one module per invariant family."""

from __future__ import annotations

from repro.analysis.rules.base import Rule
from repro.analysis.rules.contract import ApiContractRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.lifecycle import ResourceLifecycleRule
from repro.analysis.rules.locking import LockDisciplineRule
from repro.analysis.rules.threads import NoBareThreadRule

ALL_RULES: tuple[type[Rule], ...] = (
    DeterminismRule,
    LockDisciplineRule,
    ResourceLifecycleRule,
    ApiContractRule,
    NoBareThreadRule,
)

__all__ = [
    "ALL_RULES",
    "ApiContractRule",
    "DeterminismRule",
    "LockDisciplineRule",
    "NoBareThreadRule",
    "ResourceLifecycleRule",
    "Rule",
]
