"""Base class shared by all analysis rules."""

from __future__ import annotations

from typing import ClassVar

from repro.analysis.findings import Finding
from repro.analysis.visitor import ProjectIndex, SourceFile


class Rule:
    """One invariant family.

    Subclasses set ``rule_id``/``description`` and implement
    :meth:`check`.  Rules are stateless: the runner instantiates each once
    and calls ``check`` per file after the project index is built.
    """

    rule_id: ClassVar[str] = ""
    description: ClassVar[str] = ""

    def check(self, src: SourceFile, index: ProjectIndex) -> list[Finding]:
        """Return every violation of this rule in one source file."""
        raise NotImplementedError

    def finding(
        self, src: SourceFile, line: int, col: int, key: str, message: str
    ) -> Finding:
        """Construct a :class:`Finding` stamped with this rule's id."""
        return Finding(
            path=src.rel,
            line=line,
            col=col,
            rule=self.rule_id,
            key=key,
            message=message,
        )
