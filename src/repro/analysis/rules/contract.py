"""API-contract rule: capability declarations and HTTP error envelopes.

Two checks:

- ``capabilities``: every ``Capabilities(...)`` construction must pass
  **all** fields explicitly (field list read from the dataclass itself
  during the index pass).  Defaulted omissions are how stale capability
  rows ship — a method gaining ``parallel_safe`` support while its row
  silently claims the default.
- ``error-envelope`` (``server/`` files): a ``render_response`` call
  with a literal 4xx/5xx status must carry the
  ``{"error": {"code", ...}}`` envelope — either a dict literal with an
  ``"error"`` key in its arguments or an enclosing helper that builds
  one.  Status literals passed to ``_error_response`` must be registered
  in the module's ``_ERROR_CODES`` slug table.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath

from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule
from repro.analysis.visitor import ProjectIndex, SourceFile, last_part


def _literal_status(node: ast.expr) -> int | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    return None


def _has_error_dict(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Dict):
            for item_key in child.keys:
                if isinstance(item_key, ast.Constant) and item_key.value == "error":
                    return True
    return False


class ApiContractRule(Rule):
    """Capability rows and server error responses follow their contracts."""

    rule_id = "api-contract"
    description = (
        "Capabilities(...) passes every field explicitly; 4xx/5xx render_response "
        "sites use the {'error': {'code', ...}} envelope with registered slugs"
    )

    def check(self, src: SourceFile, index: ProjectIndex) -> list[Finding]:
        """Check Capabilities construction sites and server error envelopes."""
        findings: list[Finding] = []
        findings.extend(self._check_capabilities(src, index))
        if "server" in PurePosixPath(src.rel).parts:
            findings.extend(self._check_envelopes(src))
        return findings

    def _check_capabilities(self, src: SourceFile, index: ProjectIndex) -> list[Finding]:
        findings: list[Finding] = []
        fields = index.capabilities_fields
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call) or last_part(node.func) != "Capabilities":
                continue
            if src.enclosing_class(node) is not None and src.qualname(node).startswith(
                "Capabilities"
            ):
                continue
            if any(keyword.arg is None for keyword in node.keywords):
                continue  # **splat: cannot verify statically
            provided = set(fields[: len(node.args)])
            provided.update(
                keyword.arg for keyword in node.keywords if keyword.arg is not None
            )
            missing = [name for name in fields if name not in provided]
            if missing:
                findings.append(
                    self.finding(
                        src,
                        node.lineno,
                        node.col_offset,
                        f"{src.qualname(node)}:capabilities",
                        "Capabilities(...) omits "
                        + ", ".join(missing)
                        + "; declare every field explicitly so capability rows "
                        "cannot silently inherit defaults",
                    )
                )
        return findings

    def _check_envelopes(self, src: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        error_codes = self._registered_error_codes(src)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = last_part(node.func)
            if callee == "render_response" and node.args:
                status = _literal_status(node.args[0])
                if status is None or status < 400:
                    continue
                enclosing = src.enclosing_function(node)
                if any(_has_error_dict(arg) for arg in node.args[1:]):
                    continue
                if enclosing is not None and _has_error_dict(enclosing):
                    continue
                findings.append(
                    self.finding(
                        src,
                        node.lineno,
                        node.col_offset,
                        f"{src.qualname(node)}:envelope:{status}",
                        f"{status} response bypasses the error envelope; build it "
                        'with the {"error": {"code", ...}} shape (_error_response)',
                    )
                )
            elif callee == "_error_response" and node.args and error_codes is not None:
                status = _literal_status(node.args[0])
                if status is None or status in error_codes:
                    continue
                findings.append(
                    self.finding(
                        src,
                        node.lineno,
                        node.col_offset,
                        f"{src.qualname(node)}:error-code:{status}",
                        f"status {status} has no slug in _ERROR_CODES; register one "
                        "so clients get a stable machine-readable code",
                    )
                )
        return findings

    @staticmethod
    def _registered_error_codes(src: SourceFile) -> set[int] | None:
        """Literal int keys of the module's ``_ERROR_CODES`` table, if any."""
        for node in src.tree.body:
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            named = any(
                isinstance(target, ast.Name) and target.id == "_ERROR_CODES"
                for target in targets
            )
            if named and isinstance(value, ast.Dict):
                codes: set[int] = set()
                for dict_key in value.keys:
                    status = _literal_status(dict_key) if dict_key is not None else None
                    if status is not None:
                        codes.add(status)
                return codes
        return None
