"""Determinism rule: every random draw must be seed-derived and no hot
path may read the wall clock.

Bit-reproducibility is the repo's core contract (digests are compared
across engines, backends, worker counts, and restarts), so:

- module-global ``random.*`` / legacy ``np.random.*`` calls are banned;
- ``default_rng()`` without a concrete seed is flagged, including the
  sneaky form ``default_rng(seed)`` where ``seed`` is a parameter whose
  default is ``None`` (OS entropy at a distance);
- ``secrets.*`` is flagged (machine entropy by definition);
- wall-clock reads (``time.time()``, argless ``datetime.now()``) are
  flagged; server code must use monotonic ``Deadline`` clocks instead.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath

from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule
from repro.analysis.visitor import ProjectIndex, SourceFile, dotted_name

_RANDOM_GLOBALS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "normalvariate",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "uniform",
    }
)
_NUMPY_OK = frozenset({"default_rng", "Generator", "SeedSequence", "PCG64", "Philox"})
_WALL_CLOCK = frozenset({"time.time", "time.time_ns", "time.localtime", "datetime.utcnow"})


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


class DeterminismRule(Rule):
    """Every random draw must derive from the run seed ("determinism by seed")."""

    rule_id = "determinism"
    description = (
        "RNG draws must be seed-derived (no global random/np.random state, no "
        "unseeded default_rng, no secrets); no wall-clock reads on serving paths"
    )

    def check(self, src: SourceFile, index: ProjectIndex) -> list[Finding]:
        """Flag nondeterministic RNG / entropy / wall-clock call sites."""
        findings: list[Finding] = []
        in_server = "server" in PurePosixPath(src.rel).parts
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            qual = src.qualname(node)
            if self._is_global_random(name, node):
                findings.append(
                    self.finding(
                        src,
                        node.lineno,
                        node.col_offset,
                        f"{qual}:rng:{name}",
                        f"call to {name} uses process-global RNG state; "
                        "derive a Generator from the run seed instead",
                    )
                )
            elif self._is_unseeded_default_rng(src, name, node):
                findings.append(
                    self.finding(
                        src,
                        node.lineno,
                        node.col_offset,
                        f"{qual}:default-rng:{name}",
                        f"{name} without a concrete seed falls back to OS entropy; "
                        "thread the run seed (or utils.rng.derive_stream) through",
                    )
                )
            elif name.startswith("secrets."):
                findings.append(
                    self.finding(
                        src,
                        node.lineno,
                        node.col_offset,
                        f"{qual}:secrets:{name}",
                        f"{name} is machine entropy and can never be replayed; "
                        "results depending on it are not bit-reproducible",
                    )
                )
            elif self._is_wall_clock(name, node):
                hint = (
                    "use Deadline / time.monotonic so timeouts survive clock steps"
                    if in_server
                    else "use time.monotonic/perf_counter, or pass timestamps in"
                )
                findings.append(
                    self.finding(
                        src,
                        node.lineno,
                        node.col_offset,
                        f"{qual}:wall-clock:{name}",
                        f"wall-clock read {name} is nondeterministic; {hint}",
                    )
                )
        return findings

    @staticmethod
    def _is_global_random(name: str, node: ast.Call) -> bool:
        if name.startswith("random."):
            tail = name.split(".", 1)[1]
            if tail in _RANDOM_GLOBALS:
                return True
            if tail == "Random" and not node.args and not node.keywords:
                return True
            return False
        for prefix in ("np.random.", "numpy.random."):
            if name.startswith(prefix):
                tail = name[len(prefix) :]
                return tail not in _NUMPY_OK
        return False

    @staticmethod
    def _is_unseeded_default_rng(src: SourceFile, name: str, node: ast.Call) -> bool:
        if name.split(".")[-1] != "default_rng":
            return False
        if node.keywords:
            return False
        if not node.args:
            return True
        seed = node.args[0]
        if _is_none(seed):
            return True
        if isinstance(seed, ast.Name):
            function = src.enclosing_function(node)
            if function is not None and _parameter_defaults_none(function, seed.id):
                return True
        return False

    @staticmethod
    def _is_wall_clock(name: str, node: ast.Call) -> bool:
        if name in _WALL_CLOCK:
            return True
        if name.split(".")[-1] == "now" and not node.args and not node.keywords:
            return name in ("datetime.now", "datetime.datetime.now")
        return False


def _parameter_defaults_none(
    function: ast.FunctionDef | ast.AsyncFunctionDef, param: str
) -> bool:
    """Whether ``param`` is a parameter of ``function`` defaulting to None."""
    args = function.args
    positional = args.posonlyargs + args.args
    offset = len(positional) - len(args.defaults)
    for position, arg in enumerate(positional):
        if arg.arg == param:
            default_index = position - offset
            if 0 <= default_index < len(args.defaults):
                return _is_none(args.defaults[default_index])
            return False
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if arg.arg == param:
            return default is not None and _is_none(default)
    return False
