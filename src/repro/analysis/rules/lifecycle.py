"""Resource-lifecycle rule: OS-backed handles must reach a finalizer on
every path.

Tracked acquisitions: ``SharedMemory(...)``, ``mmap.mmap(...)``,
``os.open(...)``, ``MappedSnapshot.open(...)`` everywhere, plus plain
``open(...)``/``gzip.open(...)`` inside ``storage/`` (WAL, snapshot, and
sidecar files).  An acquisition is accepted when it is:

- a context-manager item (``with open(...) as f:``), or
- immediately followed by a ``try`` whose ``finally`` (or
  ``BaseException``/bare handler) closes the handle — the
  wrap-then-guard idiom used by ``WriteAheadLog.open``, or
- transferred straight out: constructed as a call argument, returned,
  stored into an object/container, or handed off by the very next
  simple statement (ownership moves before anything can raise), or
- registered with ``weakref.finalize``/``atexit.register`` or an
  ``ExitStack`` anywhere in the enclosing function.

Anything else means an exception between acquisition and close leaks the
handle (on Linux, leaked ``SharedMemory`` segments outlive the process).
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath

from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule
from repro.analysis.visitor import ProjectIndex, SourceFile, dotted_name

_ALWAYS_TRACKED = frozenset({"SharedMemory", "mmap.mmap", "os.open", "MappedSnapshot.open"})
_STORAGE_TRACKED = frozenset({"open", "gzip.open", "io.open", "_open_text"})
_REGISTER_CALLS = frozenset(
    {"weakref.finalize", "finalize", "atexit.register", "enter_context", "push", "callback"}
)


class ResourceLifecycleRule(Rule):
    """OS-resource handles must be released on every path, including errors."""

    rule_id = "resource-lifecycle"
    description = (
        "SharedMemory/mmap/os.open (and open() under storage/) must be closed "
        "via context manager, try/finally, or a registered finalizer on all paths"
    )

    def check(self, src: SourceFile, index: ProjectIndex) -> list[Finding]:
        """Flag tracked resource handles that can leak on an error path."""
        findings: list[Finding] = []
        in_storage = "storage" in PurePosixPath(src.rel).parts
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            ctor = self._tracked_constructor(node, in_storage)
            if ctor is None:
                continue
            if self._is_safe(src, node, ctor):
                continue
            findings.append(
                self.finding(
                    src,
                    node.lineno,
                    node.col_offset,
                    f"{src.qualname(node)}:{ctor}",
                    f"{ctor}(...) handle can leak: no context manager, no "
                    "try/finally (or close-and-reraise handler) guarding the "
                    "statements before ownership transfers, and no registered finalizer",
                )
            )
        return findings

    @staticmethod
    def _tracked_constructor(node: ast.Call, in_storage: bool) -> str | None:
        name = dotted_name(node.func)
        if name is None:
            return None
        tail = name.split(".")[-1]
        if name in _ALWAYS_TRACKED or tail == "SharedMemory":
            return name
        if name.endswith("MappedSnapshot.open"):
            return "MappedSnapshot.open"
        if in_storage and name in _STORAGE_TRACKED:
            return name
        return None

    def _is_safe(self, src: SourceFile, node: ast.Call, ctor: str) -> bool:
        # (a) context-manager item: with open(...) as f:
        for ancestor in src.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    if node in set(ast.walk(item.context_expr)):
                        return True
        stmt = src.statement_of(node)
        if stmt is None:
            return True
        # (b) transferred without touching a local: argument position,
        # return value, or stored into an attribute/subscript/container.
        parent = src.parents.get(node)
        if isinstance(parent, (ast.Call, ast.Return, ast.Tuple, ast.List, ast.Dict)):
            return True
        if isinstance(parent, ast.keyword) or isinstance(parent, ast.Starred):
            return True
        name = self._bound_name(src, node, stmt)
        if name is None:
            # Assigned to self.x / container slot (owner takes over), or an
            # expression shape we cannot track -- out of scope.
            return True
        # (c) wrap-then-guard: the very next statement is a try whose
        # finally/except-reraise closes the handle.
        following = src.next_statement(stmt)
        if isinstance(following, ast.Try) and _try_closes(following, name):
            return True
        # (d) immediate handoff: the next simple statement transfers
        # ownership (return cls(..., handle), self.x = handle, use(handle))
        # -- a method call *on* the handle is a use, not a transfer.
        if following is not None and _transfers(following, name):
            return True
        if isinstance(following, (ast.With, ast.AsyncWith)):
            for item in following.items:
                if _references(item.context_expr, name):
                    return True
        # (e) registered finalizer anywhere in the enclosing function.
        function = src.enclosing_function(node)
        scope: ast.AST = function if function is not None else src.tree
        for candidate in ast.walk(scope):
            if isinstance(candidate, ast.Call):
                called = dotted_name(candidate.func)
                tail = called.split(".")[-1] if called else None
                if tail in _REGISTER_CALLS and _references(candidate, name):
                    return True
            if isinstance(candidate, ast.Try):
                if _try_closes(candidate, name):
                    return True
        return False

    @staticmethod
    def _bound_name(src: SourceFile, node: ast.Call, stmt: ast.stmt) -> str | None:
        """The simple local the handle lands in, or None when it transfers."""
        if isinstance(stmt, ast.Assign) and stmt.value is node:
            if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
                return stmt.targets[0].id
            return None
        if isinstance(stmt, ast.AnnAssign) and stmt.value is node:
            if isinstance(stmt.target, ast.Name):
                return stmt.target.id
            return None
        if isinstance(stmt, ast.Expr) and stmt.value is node:
            # Constructed and dropped: the handle is unreachable, cannot close.
            return "<dropped>"
        return None


def _references(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(child, ast.Name) and child.id == name for child in ast.walk(node)
    )


def _transfers(stmt: ast.stmt, name: str) -> bool:
    """Whether ``stmt`` moves ownership of ``name`` to another holder:
    returned, passed as a call argument, or stored into an object or
    container slot.  ``name.method()`` does NOT transfer — an exception
    from it would still leak the handle."""
    if isinstance(stmt, ast.Return):
        return stmt.value is not None and _references(stmt.value, name)
    if not isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.Expr, ast.AugAssign)):
        return False
    if isinstance(stmt, ast.Assign):
        stored = any(
            isinstance(target, (ast.Attribute, ast.Subscript))
            for target in stmt.targets
        )
        if stored and stmt.value is not None and _references(stmt.value, name):
            return True
    for node in ast.walk(stmt):
        if not isinstance(node, ast.Call):
            continue
        arguments: list[ast.expr] = list(node.args)
        arguments.extend(
            keyword.value for keyword in node.keywords if keyword.value is not None
        )
        for argument in arguments:
            if _references(argument, name):
                return True
    return False


def _closes(node: ast.AST, name: str) -> bool:
    """Whether ``node`` contains ``name.close()`` / ``os.close(name)`` /
    ``name.unlink()``."""
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        func = child.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("close", "unlink", "release")
            and isinstance(func.value, ast.Name)
            and func.value.id == name
        ):
            return True
        called = dotted_name(func)
        if called in ("os.close", "close") and _references(child, name):
            return True
    return False


def _try_closes(node: ast.Try, name: str) -> bool:
    """Whether a try statement guarantees close on exceptional exit."""
    if any(_closes(stmt, name) for stmt in node.finalbody):
        return True
    for handler in node.handlers:
        if any(_closes(stmt, name) for stmt in handler.body):
            return True
    return False
