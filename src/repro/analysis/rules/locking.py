"""Lock-discipline rule: annotated fields only mutate under their lock.

Field declarations carry ``# guarded-by: <lock>`` comments (on the
``self.x = ...`` line in ``__init__`` or a class-body field).  Every
mutation of such a field — rebinding, augmented assignment, item/attr
writes through it, deletion, or calls to known mutator methods — must sit
inside a ``with self.<lock>:`` block, inside ``__init__`` (no concurrent
access before construction returns), or inside a function annotated
``# holds-lock: <lock>`` (callers acquire it).  Annotations are inherited
by subclasses via the project index, so ``QueryServiceBase`` guards apply
to the parallel and sharded services.

The special lock name ``event-loop`` documents asyncio confinement:
mutations are only legal inside the declaring class, which this rule
verifies by construction (receiver must be ``self``); the runtime
sanitizer covers the actual single-thread contract.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule
from repro.analysis.visitor import (
    EVENT_LOOP,
    ProjectIndex,
    SourceFile,
    self_attribute,
    self_attribute_root,
)

_MUTATORS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "charge_maintenance",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "rotate",
        "setdefault",
        "sort",
        "update",
    }
)


class LockDisciplineRule(Rule):
    """``# guarded-by:`` annotated attributes mutate only under their lock."""

    rule_id = "lock-discipline"
    description = (
        "fields annotated '# guarded-by: <lock>' mutate only under "
        "'with self.<lock>:', in __init__, or in '# holds-lock' functions"
    )

    def check(self, src: SourceFile, index: ProjectIndex) -> list[Finding]:
        """Flag guarded-attribute mutations outside the declared lock."""
        findings: list[Finding] = []
        for class_node in ast.walk(src.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            guards = index.effective_guards(class_node.name)
            if not guards:
                continue
            for node in ast.walk(class_node):
                if src.enclosing_class(node) is not class_node:
                    continue
                for attr in _mutated_attrs(node):
                    lock = guards.get(attr)
                    if lock is None or lock == EVENT_LOOP:
                        continue
                    if self._is_guarded(src, node, lock):
                        continue
                    assert isinstance(node, (ast.stmt, ast.expr))
                    findings.append(
                        self.finding(
                            src,
                            node.lineno,
                            node.col_offset,
                            f"{src.qualname(node)}:{attr}",
                            f"'{class_node.name}.{attr}' is guarded-by {lock} but "
                            f"mutates outside 'with self.{lock}:'",
                        )
                    )
        return findings

    @staticmethod
    def _is_guarded(src: SourceFile, node: ast.AST, lock: str) -> bool:
        function = src.enclosing_function(node)
        if function is not None:
            if function.name == "__init__":
                return True
            if src.holds_lock.get(src.qualname(function)) == lock:
                return True
        for ancestor in src.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    if self_attribute(item.context_expr) == lock:
                        return True
        return False


def _mutated_attrs(node: ast.AST) -> list[str]:
    """Guarded-field roots mutated by ``node`` (empty for reads)."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        if not (isinstance(node, ast.AnnAssign) and node.value is None):
            targets = [node.target]
    elif isinstance(node, ast.Delete):
        targets = list(node.targets)
    elif isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            root = self_attribute_root(func.value)
            if root is not None:
                return [root]
        return []
    else:
        return []
    attrs: list[str] = []
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            inner = [self_attribute_root(element) for element in target.elts]
            attrs.extend(attr for attr in inner if attr is not None)
            continue
        if isinstance(target, ast.Name):
            continue
        root = self_attribute_root(target)
        if root is not None:
            attrs.append(root)
    return attrs
