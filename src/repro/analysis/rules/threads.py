"""No-bare-thread rule: concurrency is spawned only by the sanctioned
infrastructure.

Every ``threading.Thread``, ``multiprocessing``/``ctx.Process``,
``ThreadPoolExecutor``/``ProcessPoolExecutor``, ``threading.Timer``,
``_thread.start_new_thread``, and ``os.fork`` site is flagged.  The few
legitimate spawn points — the parallel pool's worker processes, the
driver's replay executor, the sharded fan-out pool, the HTTP app's
single-thread dispatch executor — are enumerated in the committed
baseline with one-line justifications, so any *new* spawn site fails CI
until it is either routed through those abstractions or consciously
added to the baseline.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule
from repro.analysis.visitor import ProjectIndex, SourceFile, dotted_name, last_part

_SPAWN_CONSTRUCTORS = frozenset(
    {"Thread", "Process", "ThreadPoolExecutor", "ProcessPoolExecutor"}
)
# 'Timer' only as threading.Timer: the repo has its own (non-spawning)
# perf Timer context manager, so the bare name is ambiguous.
_SPAWN_CALLS = frozenset(
    {"threading.Timer", "_thread.start_new_thread", "os.fork", "os.forkpty"}
)


class NoBareThreadRule(Rule):
    """Concurrency is spawned only by the sanctioned pool/driver tiers."""

    rule_id = "no-bare-thread"
    description = (
        "thread/process spawns go through the pool/driver abstractions; every "
        "raw spawn site must carry a baseline justification"
    )

    def check(self, src: SourceFile, index: ProjectIndex) -> list[Finding]:
        """Flag raw thread/process/executor spawn sites."""
        findings: list[Finding] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            tail = last_part(node.func)
            name = dotted_name(node.func)
            if tail in _SPAWN_CONSTRUCTORS or name in _SPAWN_CALLS:
                spawned = name if name is not None else (tail or "<spawn>")
                findings.append(
                    self.finding(
                        src,
                        node.lineno,
                        node.col_offset,
                        f"{src.qualname(node)}:spawn:{tail or spawned}",
                        f"raw concurrency spawn {spawned}(...); route it through the "
                        "pool/driver abstractions or add a justified baseline entry",
                    )
                )
        return findings
