"""Two-pass analysis orchestration.

Pass 1 parses every target file and builds the :class:`ProjectIndex`
(guard annotations keyed by class name so subclasses in other files
inherit them, plus the authoritative ``Capabilities`` field list).
Pass 2 applies every rule to every file.  Findings are deterministic:
sorted by path/line/col, with duplicate baseline keys disambiguated by
an occurrence suffix so suppressions stay unambiguous.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

import repro
from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.findings import Finding
from repro.analysis.rules import ALL_RULES, Rule
from repro.analysis.visitor import ProjectIndex, SourceFile
from repro.errors import AnalysisError


def default_target() -> Path:
    """The installed package source tree — ``src/repro`` in a checkout."""
    package_file = repro.__file__
    if package_file is None:  # pragma: no cover - namespace-package edge
        raise AnalysisError("cannot locate the repro package source tree")
    return Path(package_file).resolve().parent


def default_baseline_path(root: Path) -> Path:
    """Where ``repro analyze`` auto-discovers the committed baseline."""
    return root / ".analysis-baseline.json"


def iter_rules() -> list[Rule]:
    """One fresh instance of every registered rule."""
    return [rule_class() for rule_class in ALL_RULES]


def collect_files(paths: list[Path]) -> list[Path]:
    """Expand directories to sorted ``*.py`` trees, skipping caches."""
    files: list[Path] = []
    seen: set[Path] = set()
    for path in paths:
        if not path.exists():
            raise AnalysisError(f"analysis target does not exist: {path}")
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            raise AnalysisError(f"analysis target is not a python file: {path}")
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    return files


@dataclass
class AnalysisReport:
    """Outcome of one analysis run, pre-partitioned against the baseline."""

    findings: list[Finding]
    suppressed: list[Finding]
    stale_baseline: list[BaselineEntry]
    files_scanned: int
    rules: list[str] = field(default_factory=list)

    def is_clean(self, *, strict: bool = False) -> bool:
        """No findings — and, under ``strict``, no stale baseline entries."""
        if self.findings:
            return False
        if strict and self.stale_baseline:
            return False
        return True


def _relative(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def analyze(
    paths: list[Path],
    *,
    root: Path | None = None,
    baseline: Baseline | None = None,
    rules: list[Rule] | None = None,
) -> AnalysisReport:
    """Run every rule over ``paths`` (files or directories).

    ``root`` anchors the repo-relative paths used in findings and baseline
    matching; it defaults to the current working directory, so running from
    the repo root yields ``src/repro/...`` paths that match the committed
    baseline.
    """
    anchor = (root or Path.cwd()).resolve()
    active_rules = iter_rules() if rules is None else rules
    files = collect_files(paths)
    sources: list[SourceFile] = []
    findings: list[Finding] = []
    for file_path in files:
        rel = _relative(file_path, anchor)
        try:
            sources.append(SourceFile.load(file_path, rel))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            findings.append(
                Finding(
                    path=rel,
                    line=getattr(exc, "lineno", None) or 1,
                    col=0,
                    rule="parse-error",
                    key="<module>:parse",
                    message=f"file could not be analyzed: {exc}",
                )
            )
    index = ProjectIndex.build(sources)
    for src in sources:
        for rule in active_rules:
            findings.extend(rule.check(src, index))
    findings = _disambiguate(sorted(findings))
    active_baseline = baseline if baseline is not None else Baseline.empty()
    unsuppressed, suppressed, stale = active_baseline.partition(findings)
    return AnalysisReport(
        findings=unsuppressed,
        suppressed=suppressed,
        stale_baseline=stale,
        files_scanned=len(files),
        rules=[rule.rule_id for rule in active_rules],
    )


def _disambiguate(findings: list[Finding]) -> list[Finding]:
    """Append ``#N`` to repeated (rule, path, key) triples, in source order,
    so every finding has a unique, stable baseline identity."""
    counts = Counter(finding.identity() for finding in findings)
    seen: Counter[tuple[str, str, str]] = Counter()
    result: list[Finding] = []
    for finding in findings:
        identity = finding.identity()
        if counts[identity] == 1:
            result.append(finding)
            continue
        seen[identity] += 1
        occurrence = seen[identity]
        key = finding.key if occurrence == 1 else f"{finding.key}#{occurrence}"
        result.append(
            Finding(
                path=finding.path,
                line=finding.line,
                col=finding.col,
                rule=finding.rule,
                key=key,
                message=finding.message,
            )
        )
    return result
