"""Runtime lock-order sanitizer: a pytest plugin.

Enable with ``pytest -p repro.analysis.sanitizer``.  While active it
replaces ``threading.Lock``/``threading.RLock`` with instrumented
wrappers for locks *allocated from project code* (stdlib and
site-packages allocations keep the real primitives) and:

- records the lock-acquisition graph keyed by allocation site, adding an
  edge ``A -> B`` whenever a thread acquires ``B`` while holding ``A``;
- fails the session on **lock-order inversions** — an edge that closes a
  cycle in that graph, i.e. two sites acquired in both orders, the static
  precondition for an ABBA deadlock even when no run has deadlocked yet;
- flags **same-site nesting** — two *distinct* lock instances from one
  allocation site held simultaneously (e.g. a router holding its
  ``_stats_lock`` while calling into a shard's), which no global order
  can protect;
- asserts the HTTP app's **single-thread dispatch contract**: every
  ``SimRankHTTPApp._run_blocking`` callable for a given app instance must
  execute on exactly one executor thread (the services' thread model
  allows concurrent queries only with one driving thread per replica).

Violations are reported in the terminal summary and flip the session
exit status to 1.  The sanitizer uses real (uninstrumented) locks for its
own state, so it never participates in the graphs it checks.
"""

from __future__ import annotations

import os
import sys
import threading
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable

_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock

_DISPATCH_ATTR = "_sanitizer_dispatch_idents"


@dataclass(frozen=True)
class Violation:
    kind: str  # "lock-order-inversion" | "same-site-nesting" | "dispatch-threads"
    message: str
    details: str = ""

    def render(self) -> str:
        """Report form: ``[kind] message`` plus captured stacks, if any."""
        text = f"[{self.kind}] {self.message}"
        if self.details:
            text += "\n" + self.details
        return text


class _HeldEntry:
    __slots__ = ("lock", "count")

    def __init__(self, lock: "_InstrumentedLock") -> None:
        self.lock = lock
        self.count = 1


class _InstrumentedLock:
    """Wrapper delegating to a real lock while reporting to the sanitizer."""

    __slots__ = ("_inner", "site", "_sanitizer")

    def __init__(self, inner: Any, site: str, sanitizer: "LockSanitizer") -> None:
        self._inner = inner
        self.site = site
        self._sanitizer = sanitizer

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = bool(self._inner.acquire(blocking, timeout))
        if acquired:
            self._sanitizer.on_acquire(self)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._sanitizer.on_release(self)

    def locked(self) -> bool:
        return bool(self._inner.locked())

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<sanitized lock from {self.site}>"


@dataclass
class LockSanitizer:
    """Acquisition-graph recorder with cycle detection on edge insert."""

    violations: list[Violation] = field(default_factory=list)
    edges_recorded: int = 0
    locks_instrumented: int = 0
    dispatch_calls: int = 0

    def __post_init__(self) -> None:
        self._mutex = _REAL_LOCK()
        self._tls = threading.local()
        self._graph: dict[str, set[str]] = {}
        self._edge_stacks: dict[tuple[str, str], str] = {}
        self._same_site_reported: set[str] = set()
        self._installed = False
        self._original_run_blocking: Any = None

    # -- instrumentation lifecycle ------------------------------------

    def install(self) -> None:
        """Patch ``threading.Lock``/``RLock`` and the app dispatch path."""
        if self._installed:
            return
        self._installed = True
        sanitizer = self

        def make_lock() -> Any:
            return sanitizer._allocate(_REAL_LOCK, sys._getframe(1))

        def make_rlock() -> Any:
            return sanitizer._allocate(_REAL_RLOCK, sys._getframe(1))

        threading.Lock = make_lock  # type: ignore
        threading.RLock = make_rlock  # type: ignore
        self._patch_dispatch()

    def uninstall(self) -> None:
        """Restore every patched primitive (idempotent)."""
        if not self._installed:
            return
        self._installed = False
        threading.Lock = _REAL_LOCK  # type: ignore
        threading.RLock = _REAL_RLOCK  # type: ignore
        if self._original_run_blocking is not None:
            from repro.server.app import SimRankHTTPApp

            SimRankHTTPApp._run_blocking = self._original_run_blocking
            self._original_run_blocking = None

    def _allocate(self, factory: Callable[[], Any], caller: Any) -> Any:
        inner = factory()
        filename = caller.f_code.co_filename
        if not _is_project_code(filename):
            return inner
        site = f"{os.path.relpath(filename)}:{caller.f_lineno}"
        self.locks_instrumented += 1
        return _InstrumentedLock(inner, site, self)

    # -- acquisition graph --------------------------------------------

    def _held(self) -> list[_HeldEntry]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = []
            self._tls.held = held
        return held  # type: ignore

    def on_acquire(self, lock: _InstrumentedLock) -> None:
        """Record an acquisition: add graph edges from every held lock."""
        held = self._held()
        for entry in held:
            if entry.lock is lock:  # reentrant RLock acquire
                entry.count += 1
                return
        if held:
            stack = "".join(traceback.format_stack(limit=8)[:-2])
            with self._mutex:
                for entry in held:
                    self._record_edge(entry.lock, lock, stack)
        held.append(_HeldEntry(lock))

    def on_release(self, lock: _InstrumentedLock) -> None:
        """Pop the lock from this thread's held stack (reentrancy-aware)."""
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            entry = held[index]
            if entry.lock is lock:
                entry.count -= 1
                if entry.count == 0:
                    del held[index]
                return

    def _record_edge(
        self, held: _InstrumentedLock, acquired: _InstrumentedLock, stack: str
    ) -> None:
        source, target = held.site, acquired.site
        if source == target:
            if held is not acquired and source not in self._same_site_reported:
                self._same_site_reported.add(source)
                self.violations.append(
                    Violation(
                        kind="same-site-nesting",
                        message=(
                            f"two distinct locks allocated at {source} are held "
                            "simultaneously; no global acquisition order can "
                            "protect same-site siblings"
                        ),
                        details=stack,
                    )
                )
            return
        successors = self._graph.setdefault(source, set())
        if target in successors:
            return
        if self._reaches(target, source):
            first = self._edge_stacks.get((target, source)) or self._first_stack_on_path(
                target, source
            )
            self.violations.append(
                Violation(
                    kind="lock-order-inversion",
                    message=(
                        f"acquiring {target} while holding {source} inverts the "
                        f"established order {target} -> ... -> {source} (ABBA "
                        "deadlock precondition)"
                    ),
                    details=(
                        "second order (this acquisition):\n"
                        + stack
                        + ("first order:\n" + first if first else "")
                    ),
                )
            )
        successors.add(target)
        self._edge_stacks[(source, target)] = stack
        self.edges_recorded += 1

    def _reaches(self, start: str, goal: str) -> bool:
        stack, seen = [start], {start}
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            for successor in self._graph.get(node, ()):
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return False

    def _first_stack_on_path(self, start: str, goal: str) -> str:
        for (source, target), stack in self._edge_stacks.items():
            if source == start and (target == goal or self._reaches(target, goal)):
                return stack
        return ""

    # -- dispatch-thread contract -------------------------------------

    def _patch_dispatch(self) -> None:
        try:
            from repro.server.app import SimRankHTTPApp
        except Exception:  # pragma: no cover - server tier not importable
            return
        sanitizer = self
        original = SimRankHTTPApp._run_blocking
        self._original_run_blocking = original

        async def run_blocking(
            self: Any, fn: Callable[..., Any], *args: Any, **kwargs: Any
        ) -> Any:
            def recording(*call_args: Any, **call_kwargs: Any) -> Any:
                sanitizer.record_dispatch(self)
                return fn(*call_args, **call_kwargs)

            return await original(self, recording, *args, **kwargs)

        SimRankHTTPApp._run_blocking = run_blocking  # type: ignore

    def record_dispatch(self, app: Any) -> None:
        """Track which executor threads run an app's blocking dispatches."""
        ident = threading.get_ident()
        with self._mutex:
            self.dispatch_calls += 1
            idents = getattr(app, _DISPATCH_ATTR, None)
            if idents is None:
                idents = set()
                setattr(app, _DISPATCH_ATTR, idents)
            before = len(idents)
            idents.add(ident)
            if before == 1 and len(idents) == 2:  # report once, on the transition
                self.violations.append(
                    Violation(
                        kind="dispatch-threads",
                        message=(
                            f"{type(app).__name__} dispatched blocking service "
                            f"work on {len(idents)} distinct threads; the "
                            "single-thread executor contract requires exactly one"
                        ),
                    )
                )

    def summary(self) -> str:
        """One-line counters for the terminal summary section."""
        return (
            f"{self.locks_instrumented} lock(s) instrumented, "
            f"{self.edges_recorded} acquisition-order edge(s), "
            f"{self.dispatch_calls} dispatch call(s), "
            f"{len(self.violations)} violation(s)"
        )


def _is_project_code(filename: str) -> bool:
    """Instrument only locks allocated by repo code (src/, tests/,
    benchmarks/) — never the interpreter's own machinery."""
    normalized = filename.replace("\\", "/")
    if "site-packages" in normalized or "dist-packages" in normalized:
        return False
    if normalized.startswith("<"):  # <string>, <frozen ...>
        return False
    if f"{os.sep}repro{os.sep}analysis{os.sep}" in filename:
        return False  # never instrument the sanitizer itself
    if "/repro/" in normalized or "/src/repro/" in normalized:
        return True
    try:
        cwd = os.getcwd().replace("\\", "/")
        absolute = os.path.abspath(filename).replace("\\", "/")
    except OSError:  # pragma: no cover - cwd unlinked
        return False
    return absolute.startswith(cwd + "/")


# -- pytest plugin hooks ----------------------------------------------

_ACTIVE: LockSanitizer | None = None


def get_active() -> LockSanitizer | None:
    """The sanitizer installed by the plugin, if any (for tests)."""
    return _ACTIVE


def pytest_configure(config: Any) -> None:
    """Install the sanitizer once per session (pytest plugin hook)."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = LockSanitizer()
        _ACTIVE.install()


def pytest_unconfigure(config: Any) -> None:
    """Uninstall and drop the active sanitizer (pytest plugin hook)."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.uninstall()
        _ACTIVE = None


def pytest_sessionfinish(session: Any, exitstatus: int) -> None:
    """Flip a passing session to exit 1 when violations were recorded."""
    if _ACTIVE is not None and _ACTIVE.violations and exitstatus == 0:
        session.exitstatus = 1


def pytest_terminal_summary(terminalreporter: Any) -> None:
    """Print the sanitizer counters and every violation with stacks."""
    if _ACTIVE is None:
        return
    terminalreporter.section("lock-order sanitizer")
    terminalreporter.write_line(_ACTIVE.summary())
    for violation in _ACTIVE.violations:
        terminalreporter.write_line("")
        terminalreporter.write_line(violation.render())
