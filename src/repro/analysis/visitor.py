"""Shared parsed-source context for analysis rules.

A :class:`SourceFile` wraps one parsed module with the cross-cutting
facts every rule needs: parent links, enclosing qualnames, comment
annotations (``# guarded-by: <lock>`` on field declarations,
``# holds-lock: <lock>`` on functions whose callers take the lock), and
statement-block navigation.  A :class:`ProjectIndex` merges per-file
class facts so guard annotations are inherited across files by base-class
name (e.g. ``QueryServiceBase`` annotations apply to
``ShardedSimRankService``).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_-]*)")
HOLDS_LOCK_RE = re.compile(r"#\s*holds-lock:\s*([A-Za-z_][A-Za-z0-9_-]*)")

#: Sentinel lock name for fields confined to the asyncio event loop rather
#: than guarded by a mutex.  Mutations must stay inside the declaring class.
EVENT_LOOP = "event-loop"

#: Fallback Capabilities field list, used when the scanned file set does not
#: include the dataclass definition itself (e.g. fixture corpora).
DEFAULT_CAPABILITIES_FIELDS: tuple[str, ...] = (
    "method",
    "exact",
    "index_based",
    "supports_dynamic",
    "incremental_updates",
    "vectorized",
    "parallel_safe",
    "native",
)


def dotted_name(node: ast.expr) -> str | None:
    """Render ``a.b.c`` call targets as a dotted string, else ``None``."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def last_part(node: ast.expr) -> str | None:
    """The final identifier of a call target (``ctx.Process`` -> ``Process``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def self_attribute(node: ast.expr) -> str | None:
    """Return ``attr`` when ``node`` is exactly ``self.attr``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def self_attribute_root(node: ast.expr) -> str | None:
    """Resolve the ``self.attr`` root of a target chain.

    ``self.stats.queries`` / ``self._entries[key]`` / ``self._buckets[k].jobs``
    all resolve to the first attribute reached from ``self``.
    """
    current: ast.expr = node
    while True:
        direct = self_attribute(current)
        if direct is not None:
            return direct
        if isinstance(current, ast.Attribute):
            current = current.value
        elif isinstance(current, ast.Subscript):
            current = current.value
        else:
            return None


def extract_comments(text: str) -> dict[int, str]:
    """Map line number -> comment text, tolerant of tokenize errors."""
    comments: dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


@dataclass
class ClassFacts:
    """Annotation facts for one class definition."""

    name: str
    qualname: str
    bases: tuple[str, ...]
    guarded: dict[str, str] = field(default_factory=dict)


@dataclass
class SourceFile:
    """One parsed module plus derived navigation structures."""

    path: Path
    rel: str
    text: str
    tree: ast.Module
    comments: dict[int, str]
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    classes: dict[str, ClassFacts] = field(default_factory=dict)
    holds_lock: dict[str, str] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path, rel: str) -> "SourceFile":
        """Parse ``path``; raises ``SyntaxError`` / ``OSError`` to the caller."""
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        src = cls(
            path=path,
            rel=rel,
            text=text,
            tree=tree,
            comments=extract_comments(text),
        )
        src._link_parents()
        src._collect_annotations()
        return src

    # -- structure -----------------------------------------------------

    def _link_parents(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    def ancestors(self, node: ast.AST) -> list[ast.AST]:
        """Parent chain from ``node`` (exclusive) up to the module root."""
        chain: list[ast.AST] = []
        current = self.parents.get(node)
        while current is not None:
            chain.append(current)
            current = self.parents.get(current)
        return chain

    def qualname(self, node: ast.AST) -> str:
        """Dotted name of the enclosing scope, ``<module>`` at top level."""
        names: list[str] = []
        current: ast.AST | None = node
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.append(current.name)
            current = self.parents.get(current)
        if not names:
            return "<module>"
        return ".".join(reversed(names))

    def enclosing_function(self, node: ast.AST) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """The nearest function definition containing ``node``, if any."""
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self.parents.get(current)
        return None

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        """The nearest class definition containing ``node``, if any."""
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, ast.ClassDef):
                return current
            current = self.parents.get(current)
        return None

    def containing_block(self, stmt: ast.stmt) -> tuple[list[ast.stmt], int] | None:
        """The statement list holding ``stmt`` and its index within it."""
        parent = self.parents.get(stmt)
        if parent is None:
            return None
        for name in parent._fields:
            value = getattr(parent, name, None)
            if isinstance(value, list):
                for index, item in enumerate(value):
                    if item is stmt:
                        return value, index
        return None

    def statement_of(self, node: ast.AST) -> ast.stmt | None:
        """The nearest enclosing statement of an expression node."""
        current: ast.AST | None = node
        while current is not None and not isinstance(current, ast.stmt):
            current = self.parents.get(current)
        return current if isinstance(current, ast.stmt) else None

    def next_statement(self, stmt: ast.stmt) -> ast.stmt | None:
        """The statement executed after ``stmt`` completes, climbing out of
        enclosing blocks when ``stmt`` is the last of its suite (but never
        out of the enclosing function)."""
        current: ast.stmt = stmt
        while True:
            located = self.containing_block(current)
            if located is None:
                return None
            block, index = located
            if index + 1 < len(block):
                return block[index + 1]
            parent = self.parents.get(current)
            if parent is None or isinstance(
                parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module, ast.ClassDef)
            ):
                return None
            if not isinstance(parent, ast.stmt):
                return None
            current = parent

    # -- annotations ---------------------------------------------------

    def _comment_for(self, stmt: ast.stmt) -> str | None:
        """A comment attached to ``stmt``: trailing on any of its lines, or
        a standalone comment on the line directly above."""
        end = stmt.end_lineno if stmt.end_lineno is not None else stmt.lineno
        for line in range(stmt.lineno, end + 1):
            if line in self.comments:
                return self.comments[line]
        return self.comments.get(stmt.lineno - 1)

    @staticmethod
    def _assigned_attrs(stmt: ast.stmt) -> list[str]:
        """Names declared by a field statement: ``self.x = ...`` in
        ``__init__`` bodies or ``x: T`` / ``x = ...`` in class bodies."""
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        names: list[str] = []
        for target in targets:
            attr = self_attribute(target)
            if attr is not None:
                names.append(attr)
            elif isinstance(target, ast.Name):
                names.append(target.id)
        return names

    def _collect_annotations(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                facts = ClassFacts(
                    name=node.name,
                    qualname=self.qualname(node),
                    bases=tuple(
                        part for part in (last_part(base) for base in node.bases) if part
                    ),
                )
                for stmt in ast.walk(node):
                    if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                        continue
                    if self.enclosing_class(stmt) is not node:
                        continue
                    function = self.enclosing_function(stmt)
                    if function is not None and function.name != "__init__":
                        continue
                    comment = self._comment_for(stmt)
                    if comment is None:
                        continue
                    match = GUARDED_BY_RE.search(comment)
                    if match is None:
                        continue
                    for attr in self._assigned_attrs(stmt):
                        facts.guarded[attr] = match.group(1)
                self.classes[facts.name] = facts
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                first_line = node.body[0].lineno if node.body else node.lineno
                candidate_lines = [node.lineno - 1, *range(node.lineno, first_line)]
                for line in candidate_lines:
                    comment = self.comments.get(line)
                    if comment is None:
                        continue
                    match = HOLDS_LOCK_RE.search(comment)
                    if match is not None:
                        self.holds_lock[self.qualname(node)] = match.group(1)
                        break


@dataclass
class ProjectIndex:
    """Cross-file facts: class guard annotations (inherited by base-class
    simple name) and the authoritative ``Capabilities`` field list."""

    classes: dict[str, ClassFacts] = field(default_factory=dict)
    capabilities_fields: tuple[str, ...] = DEFAULT_CAPABILITIES_FIELDS

    @classmethod
    def build(cls, sources: list[SourceFile]) -> "ProjectIndex":
        index = cls()
        for src in sources:
            for facts in src.classes.values():
                index.classes.setdefault(facts.name, facts)
            for node in ast.walk(src.tree):
                if isinstance(node, ast.ClassDef) and node.name == "Capabilities":
                    fields = [
                        stmt.target.id
                        for stmt in node.body
                        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
                    ]
                    if fields:
                        index.capabilities_fields = tuple(fields)
        return index

    def effective_guards(self, class_name: str) -> dict[str, str]:
        """Guard map for a class, merged over its transitive bases."""
        merged: dict[str, str] = {}
        seen: set[str] = set()
        queue = [class_name]
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            facts = self.classes.get(name)
            if facts is None:
                continue
            for attr, lock in facts.guarded.items():
                merged.setdefault(attr, lock)
            queue.extend(facts.bases)
        return merged
