"""Unified estimator protocol, method registry, and batched query service.

This package is the system's API layer:

:class:`~repro.api.estimator.SimRankEstimator` / :class:`~repro.api.estimator.Capabilities`
    The protocol every query method speaks — ``single_source``, ``topk``,
    ``single_source_many`` (batched), ``sync`` (unified dynamic maintenance),
    and ``capabilities`` (programmatic method selection).
:mod:`~repro.api.registry`
    Name → factory registry (``create("probesim", graph, eps_a=0.1)``)
    behind the CLI, the experiment runner, and the benchmark harness.
:class:`~repro.api.service.SimRankService`
    A serving layer owning one graph plus many estimators, with batched
    (deduplicated) queries and capability-dispatched update maintenance.
"""

from repro.api.estimator import Capabilities, SimRankEstimator
from repro.api.registry import (
    MethodEntry,
    available_methods,
    capability_rows,
    create,
    get_entry,
    method_names,
    register,
)
from repro.api.service import ServiceStats, SimRankService

__all__ = [
    "Capabilities",
    "MethodEntry",
    "ServiceStats",
    "SimRankEstimator",
    "SimRankService",
    "available_methods",
    "capability_rows",
    "create",
    "get_entry",
    "method_names",
    "register",
]
