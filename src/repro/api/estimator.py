"""The :class:`SimRankEstimator` protocol every query method conforms to.

The paper's experiments compare six methods through one conceptual interface
— "answer single-source / top-k SimRank on a (possibly dynamic) graph" — and
this module makes that interface first-class.  Every estimator (ProbeSim, the
five baselines, and both extensions) speaks five verbs:

``single_source(query)``
    One approximate (or exact) single-source query, Definition 1.
``topk(query, k)``
    One approximate top-k query, Definition 2.
``single_source_many(queries)``
    A batch of single-source queries — the serving hot path.  The contract is
    *loop equivalence*: under a fixed seed, the returned list is element-wise
    identical to calling :meth:`single_source` in a loop, so callers can batch
    freely without changing results.  Overrides may amortize work across the
    batch only in ways that preserve this equivalence.
``sync()``
    The unified dynamic-maintenance verb.  Whatever a method must do after
    the underlying graph changed — re-snapshot adjacency (ProbeSim, Monte
    Carlo, TopSim), recompute a matrix (Power Method), or rebuild an index
    (SLING, TSF) — happens here.  The pre-2.0 per-method verbs
    (``refresh()``, ``rebuild()``) were removed in 2.0.
``capabilities()``
    A :class:`Capabilities` descriptor so callers (the registry, the service,
    the benchmark harness) can select methods programmatically instead of
    duck-typing with ``hasattr``.

The ABC also performs a *structural* ``isinstance`` check: any object whose
class provides all five verbs counts as a ``SimRankEstimator``, so existing
duck-typed method objects keep working without inheriting from this class.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.results import SimRankResult, TopKResult
    from repro.graph.dynamic import EdgeUpdate

#: the verbs a class must provide to count structurally as an estimator.
PROTOCOL_VERBS = (
    "single_source",
    "topk",
    "single_source_many",
    "sync",
    "capabilities",
)


@dataclass(frozen=True)
class Capabilities:
    """What an estimator can do, for programmatic method selection.

    Parameters
    ----------
    method:
        The estimator's canonical method name (matches ``SimRankResult.method``).
    exact:
        True when answers are exact SimRank (Power Method); False for every
        approximate method.
    index_based:
        True when queries are served from a precomputed structure (SLING,
        TSF, the walk cache); False for index-free methods.
    supports_dynamic:
        True when the method is *practical* on dynamic graphs — maintenance
        after an update is cheap (an O(m) re-snapshot or an incremental
        patch) rather than a from-scratch rebuild.  :meth:`SimRankEstimator.sync`
        works either way; this flag is advisory metadata for method selection.
    incremental_updates:
        True when :meth:`SimRankEstimator.apply_updates` patches state
        per-edge instead of falling back to a full :meth:`~SimRankEstimator.sync`.
    vectorized:
        True when queries execute through a batched, level-synchronous
        kernel (one C-level sweep per walk batch — ProbeSim's trie-sharing
        engine, :mod:`repro.core.batch_engine`) rather than per-walk
        interpreter loops.  Serving layers prefer vectorized methods for
        high-throughput batches.
    parallel_safe:
        True when the method is practical behind the process-parallel
        serving layer (:class:`repro.parallel.pool.ParallelSimRankService`):
        per-worker replicas are affordable to construct, and the epoch
        maintenance model — a full replica rebuild against the shared graph
        after each update batch — costs no more than the method's own
        :meth:`SimRankEstimator.sync`.  False for static rebuild-only
        indexes (SLING) and dense exact solvers (Power Method), whose
        per-worker-per-epoch rebuild would dominate serving.
    native:
        True when queries run through the native kernel engine
        (:mod:`repro.core.native`): compiled numba kernels where available,
        with a byte-identical numpy fallback otherwise.  This flag describes
        the *engine selection*, which is environment-independent; which
        backend actually executes (``"numba"``/``"numpy"``) is runtime
        information reported by :func:`repro.core.native.native_backend`.
    """

    method: str
    exact: bool
    index_based: bool
    supports_dynamic: bool
    incremental_updates: bool = False
    vectorized: bool = False
    parallel_safe: bool = False
    native: bool = False

    def as_row(self) -> dict[str, object]:
        """Flat dict row for table rendering (CLI ``methods`` subcommand)."""
        return {
            "method": self.method,
            "exact": self.exact,
            "index": self.index_based,
            "dynamic": self.supports_dynamic,
            "incremental": self.incremental_updates,
            "vectorized": self.vectorized,
            "parallel": self.parallel_safe,
            "native": self.native,
        }


class SimRankEstimator(abc.ABC):
    """Abstract base / structural protocol for every SimRank query method.

    Subclasses implement :meth:`single_source`, :meth:`sync`, and
    :meth:`capabilities`; they inherit default implementations of
    :meth:`topk` (sort the single-source estimates), :meth:`single_source_many`
    (loop — overrides must preserve fixed-seed loop equivalence), and
    :meth:`apply_updates` (fall back to one :meth:`sync`).
    """

    @abc.abstractmethod
    def single_source(self, query: int) -> SimRankResult:
        """Answer one single-source query (Definition 1) from ``query``."""

    @abc.abstractmethod
    def sync(self) -> None:
        """Bring the estimator current with its source graph after mutations.

        This is the unified maintenance verb: re-snapshot adjacency for
        index-free methods, rebuild the index for index-based ones.
        """

    @abc.abstractmethod
    def capabilities(self) -> Capabilities:
        """Describe this estimator for programmatic method selection."""

    def topk(self, query: int, k: int) -> TopKResult:
        """Approximate top-k query (Definition 2): the ``k`` best nodes by
        the single-source estimates, query node excluded."""
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        return self.single_source(query).topk(k)

    def single_source_many(self, queries: Sequence[int]) -> list[SimRankResult]:
        """Answer a batch of single-source queries.

        Equivalent, under a fixed seed, to calling :meth:`single_source` in a
        loop over ``queries`` — batching never changes results.  Subclasses
        may override to amortize work across the batch as long as that
        equivalence is preserved.
        """
        return [self.single_source(query) for query in queries]

    def apply_updates(self, updates: Iterable[EdgeUpdate]) -> None:
        """React to graph updates that the caller already applied.

        The default is the coarse response — one :meth:`sync` regardless of
        how many updates arrived.  Estimators with incremental maintenance
        (TSF's one-way-graph patching, the walk cache's fine-grained
        eviction) override this and advertise it via
        ``capabilities().incremental_updates``.
        """
        del updates  # the coarse response does not depend on what changed
        self.sync()

    @classmethod
    def __subclasshook__(cls, subclass: type) -> Any:
        """Structural check: any class providing the five verbs conforms.

        Returns ``bool | NotImplemented`` — NotImplemented defers to the
        regular ABC machinery rather than rejecting outright.
        """
        if cls is not SimRankEstimator:
            return NotImplemented
        if all(callable(getattr(subclass, verb, None)) for verb in PROTOCOL_VERBS):
            return True
        return NotImplemented
