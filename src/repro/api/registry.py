"""Name → estimator-factory registry for every implemented SimRank method.

One place maps the method names used throughout the paper's experiments
(``"probesim"``, ``"sling"``, ``"tsf"``, ``"topsim"``, ``"mc"``, ``"power"``,
plus the strategy variants and the §7 extensions) to factories with keyword
configuration.  The CLI, the experiment runner, the benchmark harness, and
:class:`repro.api.service.SimRankService` all construct methods exclusively
through :func:`create`, so adding a method is one :func:`register` call.

Each :class:`MethodEntry` also declares ``config_keys`` — the keyword knobs
its factory accepts — so generic callers (the CLI) can filter a superset of
options down to what a method understands, and ``probe_config`` — a cheap
configuration used to instantiate the method on tiny graphs for capability
introspection and conformance testing.

Implementation note: estimator classes import :mod:`repro.api.estimator`, so
this module must not import them at module load time (it would be a cycle);
the built-in entries are registered lazily on first registry access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.api.estimator import Capabilities
from repro.errors import ConfigurationError

__all__ = [
    "MethodEntry",
    "available_methods",
    "capability_rows",
    "create",
    "get_entry",
    "method_names",
    "register",
]


@dataclass(frozen=True)
class MethodEntry:
    """One registered method: a named factory plus its configuration surface.

    ``capabilities`` is the method's static capability descriptor, declared
    at registration so listings never need to build an estimator; instances
    must agree with it (enforced by the protocol-conformance tests).  Entries
    registered without one fall back to instantiation in
    :func:`capability_rows`.
    """

    name: str
    factory: Callable
    summary: str = ""
    config_keys: tuple[str, ...] = ()
    probe_config: dict = field(default_factory=dict)
    capabilities: Capabilities | None = None

    def build(self, graph, **config):
        """Construct the estimator on ``graph`` after validating ``config``."""
        unknown = sorted(set(config) - set(self.config_keys))
        if unknown:
            raise ConfigurationError(
                f"method {self.name!r} does not accept config keys {unknown}; "
                f"allowed: {sorted(self.config_keys)}"
            )
        return self.factory(graph, **config)


_REGISTRY: dict[str, MethodEntry] = {}
_BUILTINS_LOADED = False


def register(
    name: str,
    factory: Callable,
    summary: str = "",
    config_keys: tuple[str, ...] = (),
    probe_config: dict | None = None,
    capabilities: Capabilities | None = None,
    replace: bool = False,
) -> MethodEntry:
    """Register an estimator factory under ``name``.

    ``factory(graph, **config)`` must return an object conforming to
    :class:`repro.api.estimator.SimRankEstimator`.  Registering an existing
    name raises unless ``replace=True``.
    """
    _ensure_builtins()
    if not replace and name in _REGISTRY:
        raise ConfigurationError(f"method {name!r} is already registered")
    entry = MethodEntry(
        name=name,
        factory=factory,
        summary=summary,
        config_keys=tuple(config_keys),
        probe_config=dict(probe_config or {}),
        capabilities=capabilities,
    )
    _REGISTRY[name] = entry
    return entry


def get_entry(name: str) -> MethodEntry:
    """Look up one registry entry, with a helpful error for unknown names."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown method {name!r}; registered: {', '.join(method_names())}"
        ) from None


def create(name: str, graph, **config):
    """Construct the estimator registered under ``name`` on ``graph``."""
    return get_entry(name).build(graph, **config)


def method_names() -> list[str]:
    """All registered method names, sorted."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def available_methods() -> list[MethodEntry]:
    """All registry entries, sorted by name."""
    _ensure_builtins()
    return [_REGISTRY[name] for name in method_names()]


def capability_rows() -> list[dict[str, object]]:
    """Capability table of every registered method (CLI / README table).

    Uses each entry's statically declared capabilities; an entry registered
    without one is instantiated (with its cheap ``probe_config``) on a
    2-node probe graph just to ask
    :meth:`~repro.api.estimator.SimRankEstimator.capabilities`.
    """
    rows = []
    probe = None
    for entry in available_methods():
        caps = entry.capabilities
        if caps is None:
            if probe is None:
                from repro.graph.digraph import DiGraph

                probe = DiGraph.from_edges([(0, 1), (1, 0)])
            caps = entry.build(probe, **entry.probe_config).capabilities()
        row = caps.as_row()
        row["name"] = entry.name
        row["summary"] = entry.summary
        rows.append(row)
    return rows


# --------------------------------------------------------------------- #
# built-in entries (registered lazily; see module docstring)
# --------------------------------------------------------------------- #

_PROBESIM_KEYS = (
    "c", "eps_a", "delta", "seed", "num_walks", "max_walk_length", "backend",
    "engine", "sampling_fraction", "truncation_fraction", "pruning_fraction",
    "compensate_truncation", "prune", "hybrid_switch_constant", "query_seeded",
)
_PROBESIM_PROBE = {"eps_a": 0.2, "delta": 0.1, "num_walks": 60}


def _register_builtins() -> None:
    """Register the paper's six methods, the strategy variants, and the
    §7 extensions.  Runs once, on first registry access."""
    from repro.baselines.monte_carlo import MonteCarlo
    from repro.baselines.power import PowerMethod
    from repro.baselines.sling import SLINGIndex
    from repro.baselines.topsim import TopSim
    from repro.baselines.tsf import TSFIndex
    from repro.core.engine import ProbeSim
    from repro.extensions.adaptive_topk import AdaptiveTopK
    from repro.extensions.walk_index import WalkIndex

    def probesim_factory(strategy: str | None):
        """Factory for ProbeSim, optionally pinned to one strategy."""
        def factory(graph, **config):
            if strategy is not None:
                config["strategy"] = strategy
            return ProbeSim(graph, **config)
        return factory

    def probesim_caps(strategy: str, vectorized: bool = False) -> Capabilities:
        """ProbeSim's capability profile (index-free, O(m) sync)."""
        return Capabilities(
            method=f"probesim-{strategy}", exact=False, index_based=False,
            supports_dynamic=True, incremental_updates=False,
            vectorized=vectorized, parallel_safe=True, native=False,
        )

    register(
        "probesim",
        probesim_factory(None),
        summary="index-free ProbeSim, configurable strategy (default hybrid)",
        config_keys=_PROBESIM_KEYS + ("strategy",),
        probe_config=_PROBESIM_PROBE,
        capabilities=probesim_caps("hybrid"),
    )
    for strategy in ("basic", "batch", "randomized", "hybrid"):
        register(
            f"probesim-{strategy}",
            probesim_factory(strategy),
            summary=f"ProbeSim pinned to the {strategy!r} strategy",
            config_keys=_PROBESIM_KEYS,
            probe_config=_PROBESIM_PROBE,
            # engine="auto" routes the deterministic dedup strategy through
            # the batched trie-sharing kernel (repro.core.batch_engine)
            capabilities=probesim_caps(strategy, vectorized=strategy == "batch"),
        )

    def probesim_batched_factory(graph, **config):
        """ProbeSim pinned to the batched trie-sharing execution engine."""
        config.setdefault("strategy", "batch")
        return ProbeSim(graph, engine="batched", **config)

    register(
        "probesim-batched",
        probesim_batched_factory,
        summary="ProbeSim on the batched trie-sharing engine (serving hot path)",
        config_keys=tuple(k for k in _PROBESIM_KEYS if k != "engine") + ("strategy",),
        probe_config=_PROBESIM_PROBE,
        capabilities=Capabilities(
            method="probesim-batched", exact=False, index_based=False,
            supports_dynamic=True, incremental_updates=False, vectorized=True,
            parallel_safe=True, native=False,
        ),
    )

    def probesim_native_factory(graph, **config):
        """ProbeSim pinned to the native (numba/numpy) kernel engine."""
        config.setdefault("strategy", "batch")
        return ProbeSim(graph, engine="native", **config)

    register(
        "probesim-native",
        probesim_native_factory,
        summary="ProbeSim on native kernels (numba, numpy fallback); "
                "bit-reproducible per (seed, query)",
        config_keys=tuple(k for k in _PROBESIM_KEYS if k != "engine") + ("strategy",),
        probe_config=_PROBESIM_PROBE,
        capabilities=Capabilities(
            method="probesim-native", exact=False, index_based=False,
            supports_dynamic=True, incremental_updates=False, vectorized=True,
            parallel_safe=True, native=True,
        ),
    )

    def walkindex_factory(graph, **config):
        """ProbeSim behind the §7 walk-tree cache."""
        return WalkIndex(graph, **config)

    register(
        "probesim-walkindex",
        walkindex_factory,
        summary="ProbeSim + cached walk trees with fine-grained invalidation",
        config_keys=_PROBESIM_KEYS + ("strategy",),
        probe_config=_PROBESIM_PROBE,
        capabilities=Capabilities(
            method="probesim-walkindex", exact=False, index_based=True,
            supports_dynamic=True, incremental_updates=True, vectorized=False,
            parallel_safe=True, native=False,
        ),
    )

    def adaptive_factory(graph, **config):
        """ProbeSim with early-stopping top-k."""
        return AdaptiveTopK(graph, **config)

    register(
        "probesim-adaptive",
        adaptive_factory,
        summary="ProbeSim with early-stopping (adaptive-budget) top-k",
        config_keys=_PROBESIM_KEYS + ("strategy", "initial_batch"),
        probe_config={**_PROBESIM_PROBE, "initial_batch": 16},
        capabilities=Capabilities(
            method="probesim-adaptive", exact=False, index_based=False,
            supports_dynamic=True, incremental_updates=False, vectorized=False,
            parallel_safe=True, native=False,
        ),
    )

    def mc_factory(graph, c=0.6, eps_a=0.1, delta=0.01, num_walks=None, seed=None):
        """Index-free Monte Carlo fingerprints (§2.2)."""
        return MonteCarlo(
            graph, c=c, seed=seed, eps_a=eps_a, delta=delta, num_walks=num_walks
        )

    register(
        "mc",
        mc_factory,
        summary="index-free Monte Carlo √c-walk fingerprints",
        config_keys=("c", "eps_a", "delta", "num_walks", "seed"),
        probe_config={"num_walks": 60},
        capabilities=Capabilities(
            method="mc", exact=False, index_based=False, supports_dynamic=True,
            incremental_updates=False, vectorized=False, parallel_safe=True,
            native=False,
        ),
    )

    def power_factory(graph, c=0.6, iterations=55, seed=None):
        """Exact all-pairs Power Method (deterministic; ``seed`` ignored)."""
        del seed
        return PowerMethod(graph, c=c, iterations=iterations)

    register(
        "power",
        power_factory,
        summary="exact all-pairs Power Method (small graphs only)",
        config_keys=("c", "iterations", "seed"),
        capabilities=Capabilities(
            method="power-method", exact=True, index_based=False,
            supports_dynamic=False, incremental_updates=False, vectorized=False,
            parallel_safe=False, native=False,
        ),
    )

    def topsim_factory(variant: str):
        """Factory for one TopSim variant (deterministic; ``seed`` ignored)."""
        def factory(graph, c=0.6, depth=3, degree_threshold=100, eta=0.001,
                    priority_width=100, seed=None):
            del seed
            return TopSim(
                graph, c=c, depth=depth, variant=variant,
                degree_threshold=degree_threshold, eta=eta,
                priority_width=priority_width,
            )
        return factory

    def topsim_caps(method: str) -> Capabilities:
        """The TopSim family's capability profile (index-free, truncated)."""
        return Capabilities(
            method=method, exact=False, index_based=False, supports_dynamic=True,
            incremental_updates=False, vectorized=False, parallel_safe=True,
            native=False,
        )

    topsim_keys = ("c", "depth", "degree_threshold", "eta", "priority_width", "seed")
    register(
        "topsim",
        topsim_factory("full"),
        summary="exhaustive truncated search TopSim-SM",
        config_keys=topsim_keys,
        capabilities=topsim_caps("topsim-sm"),
    )
    register(
        "trun-topsim",
        topsim_factory("truncated"),
        summary="Trun-TopSim-SM (degree/probability-trimmed TopSim)",
        config_keys=topsim_keys,
        capabilities=topsim_caps("trun-topsim-sm"),
    )
    register(
        "prio-topsim",
        topsim_factory("prioritized"),
        summary="Prio-TopSim-SM (priority-width-bounded TopSim)",
        config_keys=topsim_keys,
        capabilities=topsim_caps("prio-topsim-sm"),
    )

    def tsf_factory(graph, c=0.6, rg=300, rq=40, depth=10, seed=None):
        """TSF one-way-graph index with incremental updates."""
        return TSFIndex(graph, c=c, rg=rg, rq=rq, depth=depth, seed=seed)

    register(
        "tsf",
        tsf_factory,
        summary="TSF one-way-graph index, incremental dynamic maintenance",
        config_keys=("c", "rg", "rq", "depth", "seed"),
        probe_config={"rg": 20, "rq": 4, "depth": 6},
        capabilities=Capabilities(
            method="tsf", exact=False, index_based=True,
            supports_dynamic=True, incremental_updates=True, vectorized=False,
            parallel_safe=True, native=False,
        ),
    )

    def sling_factory(graph, c=0.6, theta=1e-4, depth=None, d_mode="exact",
                      d_samples=2_000, seed=None):
        """SLING last-meeting index (static; rebuild-only maintenance)."""
        return SLINGIndex(
            graph, c=c, theta=theta, depth=depth, d_mode=d_mode,
            d_samples=d_samples, seed=seed,
        )

    register(
        "sling",
        sling_factory,
        summary="SLING static index: fastest queries, rebuild-only updates",
        config_keys=("c", "theta", "depth", "d_mode", "d_samples", "seed"),
        probe_config={"theta": 1e-3},
        capabilities=Capabilities(
            method="sling", exact=False, index_based=True,
            supports_dynamic=False, incremental_updates=False, vectorized=False,
            parallel_safe=False, native=False,
        ),
    )


def _ensure_builtins() -> None:
    """Idempotently register the built-in methods."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    _register_builtins()
