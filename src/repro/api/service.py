"""A batched, dynamic-graph SimRank query service.

:class:`SimRankService` is the serving layer the ROADMAP's "heavy traffic"
goal asks for: it owns one (mutable) graph plus any number of registered
estimators, answers single and batched queries, and keeps every estimator
current as the graph changes.

Batching
    :meth:`single_source_many` / :meth:`topk_many` deduplicate the batch:
    each *distinct* query is answered once and duplicates share the answer,
    so a hot-key request mix (the common serving shape) shares one round of
    √c-walk sampling per hot query per batch instead of re-sampling per
    request.  Per-estimator batches then flow through the protocol's
    :meth:`~repro.api.estimator.SimRankEstimator.single_source_many` hot path;
    methods advertising ``capabilities().vectorized`` (ProbeSim's batched
    trie-sharing engine, e.g. registry name ``"probesim-batched"``) execute
    the whole deduplicated batch as one forest sweep — every query in the
    batch shares the same level-synchronous sparse matmuls.

Updates
    :meth:`apply_edges` applies edge insertions/deletions to the owned graph
    and dispatches maintenance by capability: estimators advertising
    ``incremental_updates`` are notified per update (TSF's one-way-graph
    patching, the walk cache's fine-grained eviction), everything else gets
    one :meth:`~repro.api.estimator.SimRankEstimator.sync` at the end of the
    batch — or, with ``auto_sync=False``, a deferred sync the caller flushes
    with :meth:`sync` before the next read.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.api.estimator import SimRankEstimator
from repro.api.registry import create
from repro.errors import ConfigurationError, QueryError
from repro.graph.digraph import DiGraph
from repro.graph.dynamic import EdgeUpdate, apply_update

__all__ = ["QueryServiceBase", "ServiceStats", "SimRankService"]


@dataclass
class ServiceStats:
    """Operational counters of one :class:`SimRankService` instance.

    ``maintenance_seconds`` accumulates wall-clock maintenance cost *per
    mounted method name* — incremental notification time and sync time both
    land there, so a workload driver can charge each estimator its own
    index-upkeep bill (the comparison the paper's dynamic argument is
    about).
    """

    queries: int = 0
    batches: int = 0
    batched_queries: int = 0
    batched_unique: int = 0
    updates_applied: int = 0
    syncs: int = 0
    incremental_notifications: int = 0
    #: graph generations published, i.e. full-rebuild syncs
    #: (process-parallel serving; 0 here)
    epochs: int = 0
    #: syncs served by O(Δ) delta propagation instead of an epoch rebuild
    #: (process-parallel serving; 0 here)
    delta_syncs: int = 0
    #: edge updates shipped through the delta path
    #: (process-parallel serving; 0 here)
    delta_updates: int = 0
    #: crashed worker processes revived (process-parallel serving; 0 here)
    worker_restarts: int = 0
    maintenance_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def batch_dedup_saved(self) -> int:
        """Queries answered from a batch-mate's result instead of recomputed."""
        return self.batched_queries - self.batched_unique

    @property
    def total_maintenance_seconds(self) -> float:
        """Maintenance wall-clock summed over every mounted method."""
        return sum(self.maintenance_seconds.values())

    def charge_maintenance(self, method: str, seconds: float) -> None:
        """Accumulate ``seconds`` of maintenance against ``method``."""
        self.maintenance_seconds[method] = (
            self.maintenance_seconds.get(method, 0.0) + seconds
        )

    def as_row(self) -> dict[str, object]:
        """Flat dict row for table rendering."""
        return {
            "queries": self.queries,
            "batches": self.batches,
            "dedup_saved": self.batch_dedup_saved,
            "updates": self.updates_applied,
            "syncs": self.syncs,
            "delta_syncs": self.delta_syncs,
            "maintenance_s": self.total_maintenance_seconds,
        }


class QueryServiceBase:
    """Protocol surface shared by the sequential and process-parallel services.

    Both serving layers — :class:`SimRankService` (estimators in-process)
    and :class:`repro.parallel.pool.ParallelSimRankService` (estimator
    replicas in worker processes) — speak the same verbs over the same
    bookkeeping: one owned graph, named mounted methods with a default,
    lock-guarded :class:`ServiceStats`, query-id normalisation, and top-k
    as a view over the batched single-source path.  This base holds that
    shared protocol; subclasses provide :meth:`_method_keys` (the mounted
    method names) and the query/maintenance execution itself.
    """

    def __init__(self, graph, default_method: str | None = None) -> None:
        self._graph = graph
        self._default = default_method
        self.stats = ServiceStats()  # guarded-by: _stats_lock
        self._stats_lock = threading.Lock()

    @property
    def graph(self):
        """The graph this service owns."""
        return self._graph

    @property
    def methods(self) -> list[str]:
        """Names the service can answer with, sorted."""
        return sorted(self._method_keys())

    def _method_keys(self):
        """The mounted method names (mapping or iterable); subclass hook."""
        raise NotImplementedError

    def _resolve_method(self, method: str | None) -> str:
        """Normalise ``method`` (default when None) to a mounted key.

        Raises
        ------
        ConfigurationError
            If no methods are mounted, or ``method`` names none of them.
        """
        key = method or self._default
        if key is None:
            raise ConfigurationError("service has no methods registered")
        if key not in self._method_keys():
            raise ConfigurationError(
                f"service has no method {key!r}; available: {self.methods}"
            )
        return key

    @staticmethod
    def _validate_configs(
        configs: dict[str, dict] | None, methods: Sequence[str]
    ) -> dict[str, dict]:
        """Reject configs naming methods the service does not mount."""
        configs = configs or {}
        unknown = sorted(set(configs) - set(methods))
        if unknown:
            raise ConfigurationError(
                f"configs given for unregistered service methods {unknown}"
            )
        return configs

    @staticmethod
    def _check_query_id(query) -> int:
        """Normalize one query id to int (full validation is per-estimator)."""
        if isinstance(query, bool) or not hasattr(query, "__index__"):
            raise QueryError(f"query node must be an int, got {type(query).__name__}")
        return int(query)

    def single_source_many(self, queries: Sequence[int], method: str | None = None):
        """A batch of single-source queries (execution is subclass-specific)."""
        raise NotImplementedError  # pragma: no cover - subclass hook

    def topk_many(
        self, queries: Sequence[int], k: int, method: str | None = None
    ) -> list:
        """Batched top-k: the top-k views of :meth:`single_source_many`.

        Raises
        ------
        QueryError
            If ``k`` is not positive, or a query id is not an int.
        """
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        return [result.topk(k) for result in self.single_source_many(queries, method)]

    def close(self) -> None:
        """Release any resources the service holds.  Idempotent.

        The in-process service has nothing to tear down; the process-parallel
        service overrides this to stop workers and unlink shared memory.
        """

    def __enter__(self):
        """Context-manager support: ``with service: ...`` guarantees
        :meth:`close` on exit, however the block ends."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class SimRankService(QueryServiceBase):
    """One graph, many estimators, batched queries, unified maintenance.

    >>> from repro.graph import DiGraph
    >>> g = DiGraph.from_edges([(0, 1), (1, 0), (2, 0), (2, 1)])
    >>> service = SimRankService(g, methods=("probesim",),
    ...                          configs={"probesim": {"eps_a": 0.2, "seed": 7}})
    >>> service.single_source(0).score(0)
    1.0

    Parameters
    ----------
    graph:
        The graph all estimators answer against.  A mutable
        :class:`~repro.graph.digraph.DiGraph` enables :meth:`apply_edges`;
        a frozen CSR snapshot restricts the service to read-only queries.
    methods:
        Registry names to instantiate up front (see :mod:`repro.api.registry`).
    configs:
        Optional per-method keyword configuration, ``{name: {key: value}}``.
    default_method:
        Method used when a query call passes ``method=None``
        (default: the first entry of ``methods``).
    auto_sync:
        When True (default), :meth:`apply_edges` immediately syncs every
        non-incremental estimator; when False, estimators are marked stale
        and synced on the next explicit :meth:`sync`.

    Raises
    ------
    ConfigurationError
        If ``configs`` names a method not in ``methods``, or
        ``default_method`` is not mounted.

    Thread model
    ------------
    Query calls (:meth:`single_source`, :meth:`topk`,
    :meth:`single_source_many`, :meth:`topk_many`) may run concurrently from
    multiple threads *as long as each mounted estimator is only driven by
    one thread at a time* — estimators own mutable RNG/scratch state, so
    mount one replica per worker (``add_method(name, alias=...)``) as the
    workload driver does.  Mutations (:meth:`apply_edges`,
    :meth:`apply_update_stream`, :meth:`sync`, :meth:`add_method`) must not
    run concurrently with queries.  The stats counters themselves are
    guarded by an internal lock on *both* the query and the maintenance
    paths, so the counters stay exact even while query threads and the
    maintenance thread overlap (the workload driver's executor does
    exactly that between batches).
    """

    def __init__(
        self,
        graph,
        methods: Sequence[str] = ("probesim",),
        configs: dict[str, dict] | None = None,
        default_method: str | None = None,
        auto_sync: bool = True,
    ) -> None:
        super().__init__(graph, default_method=None)
        self._estimators: dict[str, SimRankEstimator] = {}
        self.auto_sync = auto_sync
        self._stale: set[str] = set()  # guarded-by: _stats_lock
        configs = self._validate_configs(configs, methods)
        for name in methods:
            self.add_method(name, **configs.get(name, {}))
        if default_method is not None:
            if default_method not in self._estimators:
                raise ConfigurationError(
                    f"default_method {default_method!r} is not among "
                    f"{sorted(self._estimators)}"
                )
            self._default = default_method

    # ------------------------------------------------------------------ #
    # method management
    # ------------------------------------------------------------------ #

    def _method_keys(self):
        return self._estimators

    def add_method(self, name: str, alias: str | None = None, **config) -> SimRankEstimator:
        """Instantiate registry method ``name`` on the service's graph.

        ``alias`` stores the estimator under a different service-local name,
        so the same registry method can be mounted twice with different
        configurations (the workload driver mounts one replica per worker
        this way).  Returns the new estimator.

        Raises
        ------
        ConfigurationError
            If the service already has a method under that name/alias, the
            registry does not know ``name``, or ``config`` contains keys the
            method's factory does not accept.
        """
        key = alias or name
        if key in self._estimators:
            raise ConfigurationError(f"service already has a method named {key!r}")
        estimator = create(name, self._graph, **config)
        self._estimators[key] = estimator
        if self._default is None:
            self._default = key
        return estimator

    def estimator(self, method: str | None = None) -> SimRankEstimator:
        """The estimator serving ``method`` (default method when None).

        Raises
        ------
        ConfigurationError
            If no methods are mounted, or ``method`` names none of them.
        """
        return self._estimators[self._resolve_method(method)]

    def capabilities(self, method: str | None = None):
        """Capability descriptor of one served method."""
        return self.estimator(method).capabilities()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def single_source(self, query: int, method: str | None = None):
        """One single-source query via the selected method.

        Returns a :class:`~repro.core.results.SimRankResult`; raises
        :class:`ConfigurationError` for an unknown ``method`` and
        :class:`QueryError` for an invalid ``query``.
        """
        estimator = self.estimator(method)
        with self._stats_lock:
            self.stats.queries += 1
        return estimator.single_source(query)

    def topk(self, query: int, k: int, method: str | None = None):
        """One top-k query via the selected method.

        Returns a :class:`~repro.core.results.TopKResult`; raises
        :class:`ConfigurationError` for an unknown ``method`` and
        :class:`QueryError` for invalid ``query``/``k``.
        """
        estimator = self.estimator(method)
        with self._stats_lock:
            self.stats.queries += 1
        return estimator.topk(query, k)

    def single_source_many(
        self, queries: Sequence[int], method: str | None = None
    ) -> list:
        """A batch of single-source queries, deduplicated per batch.

        Distinct queries are answered through the estimator's batched
        :meth:`~repro.api.estimator.SimRankEstimator.single_source_many`;
        duplicate occurrences share the answer computed for their first
        occurrence (one walk-sampling round per hot key per batch).
        """
        estimator = self.estimator(method)
        batch = [self._check_query_id(query) for query in queries]
        distinct = list(dict.fromkeys(batch))
        results = estimator.single_source_many(distinct)
        by_query = dict(zip(distinct, results))
        with self._stats_lock:
            self.stats.queries += len(batch)
            self.stats.batches += 1
            self.stats.batched_queries += len(batch)
            self.stats.batched_unique += len(distinct)
        return [by_query[query] for query in batch]

    # topk_many comes from QueryServiceBase: the top-k views of
    # single_source_many, so batched top-k rides the deduplicated hot path.

    # ------------------------------------------------------------------ #
    # dynamic maintenance
    # ------------------------------------------------------------------ #

    def apply_edges(
        self,
        added: Iterable[tuple[int, int]] = (),
        removed: Iterable[tuple[int, int]] = (),
    ) -> int:
        """Apply edge insertions/deletions to the graph and maintain estimators.

        Returns the number of updates applied.  Insertions are applied before
        deletions in the order given; use :meth:`apply_update_stream` for an
        interleaved sequence.  Raises as :meth:`apply_update_stream` does
        (frozen graph, duplicate insert, delete of a missing edge).
        """
        updates = [EdgeUpdate("insert", int(s), int(t)) for s, t in added]
        updates += [EdgeUpdate("delete", int(s), int(t)) for s, t in removed]
        return self.apply_update_stream(updates)

    def apply_update_stream(self, updates: Iterable[EdgeUpdate]) -> int:
        """Apply an ordered update stream, notifying estimators by capability.

        Each update mutates the graph first; incremental estimators are then
        notified per update (their maintenance reads the post-update graph).
        Non-incremental estimators are synced once after the whole stream —
        immediately under ``auto_sync``, otherwise on the next :meth:`sync`.
        Notification and sync wall-clock is charged per method into
        ``stats.maintenance_seconds``.

        Returns
        -------
        int
            The number of updates applied to the graph.  On a mid-stream
            failure (an invalid update, or an estimator raising during
            notification) the count of *applied* updates is still recorded
            in ``stats.updates_applied`` and bulk estimators are still
            synced (or marked stale), so graph and estimators stay
            consistent; the exception then propagates.

        Raises
        ------
        ConfigurationError
            If the service owns a frozen (non-:class:`DiGraph`) snapshot.
        GraphError
            If an update is invalid against the current graph state (e.g.
            duplicate insert, delete of a missing edge).  The graph is left
            exactly as of the last valid update.
        """
        if not isinstance(self._graph, DiGraph):
            raise ConfigurationError(
                "apply_edges needs a mutable DiGraph; this service owns a "
                "frozen snapshot"
            )
        incremental = [
            (name, est)
            for name, est in self._estimators.items()
            if est.capabilities().incremental_updates
        ]
        bulk = [
            name for name, est in self._estimators.items()
            if not est.capabilities().incremental_updates
        ]
        count = 0
        try:
            for update in updates:
                apply_update(self._graph, update)
                # mark immediately (under the stats lock — queries running
                # on other threads are bumping the lock-guarded counters
                # concurrently): if a later update (or notification) in the
                # stream raises, already-applied mutations must still force
                # a sync rather than leave bulk estimators silently stale
                with self._stats_lock:
                    self._stale.update(bulk)
                count += 1
                for name, est in incremental:
                    started = time.perf_counter()
                    est.apply_updates([update])
                    with self._stats_lock:
                        self.stats.charge_maintenance(
                            name, time.perf_counter() - started
                        )
                        self.stats.incremental_notifications += 1
        finally:
            with self._stats_lock:
                self.stats.updates_applied += count
            if count and self.auto_sync:
                self.sync()
        return count

    def sync(self) -> None:
        """Flush deferred maintenance: sync every stale estimator.

        Sync wall-clock is charged per method into
        ``stats.maintenance_seconds``.  Idempotent: a second call with no
        intervening updates does nothing.  The stale set and the counters
        are only touched under the stats lock (concurrent query threads
        share it); each estimator is unmarked as it is synced, so a
        mid-flight failure retries exactly the estimators still stale.
        """
        with self._stats_lock:
            stale = sorted(self._stale)
        for name in stale:
            started = time.perf_counter()
            self._estimators[name].sync()
            with self._stats_lock:
                self.stats.charge_maintenance(name, time.perf_counter() - started)
                self.stats.syncs += 1
                self._stale.discard(name)

    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:
        return (
            f"SimRankService(methods={self.methods}, default={self._default!r}, "
            f"queries={self.stats.queries})"
        )
