"""Every method the paper evaluates ProbeSim against, built from scratch.

- :class:`~repro.baselines.power.PowerMethod` — the exact all-pairs iteration
  (Eq. 10), used as ground truth on small graphs.
- :class:`~repro.baselines.monte_carlo.MonteCarlo` — the index-free √c-walk
  sampler of Fogaras & Rácz (§2.2), also the pooling "expert".
- :class:`~repro.baselines.topsim.TopSim` — TopSim-SM and its Trun-/Prio-
  variants (Lee et al., §2.3).
- :class:`~repro.baselines.tsf.TSFIndex` — the two-stage one-way-graph index
  of Shao et al. (§2.3), including incremental updates.
- :class:`~repro.baselines.sling.SLINGIndex` — the static last-meeting index
  of Tian & Xiao whose rebuild cost motivates ProbeSim (§1).
"""

from repro.baselines.monte_carlo import MonteCarlo
from repro.baselines.power import PowerMethod
from repro.baselines.sling import SLINGIndex
from repro.baselines.topsim import TopSim
from repro.baselines.tsf import TSFIndex

__all__ = ["MonteCarlo", "PowerMethod", "SLINGIndex", "TSFIndex", "TopSim"]
