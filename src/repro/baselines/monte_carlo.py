"""Monte Carlo SimRank estimation with √c-walks (§2.2; Fogaras & Rácz).

Two estimators:

:meth:`MonteCarlo.single_pair`
    ``s(u, v) = Pr[W'(u), W'(v) meet]`` (Eq. 3): simulate ``r`` independent
    √c-walk pairs, return the meeting fraction.  By the Chernoff bound,
    ``r >= 1 / (2 eps^2) * log(1 / delta)`` gives ``eps`` absolute error with
    probability ``1 - delta``.  This estimator (with a tightened budget) is
    the pooling "expert" for the large-graph experiments (§6.2).

:meth:`MonteCarlo.single_source`
    The fingerprint construction: ``r`` walks from *every* node, pairing walk
    ``j`` of ``u`` with walk ``j`` of ``v``; the meeting fraction estimates
    ``s(u, v)`` for all ``v`` simultaneously.  This is the index-free
    competitor whose "considerable query overheads" motivated ProbeSim.

Both estimators step all live walks in lock-step with vectorised in-neighbour
sampling, which keeps the large walk counts tractable in Python.
"""

from __future__ import annotations

import math

import numpy as np

from repro.api.estimator import Capabilities, SimRankEstimator
from repro.core.results import SimRankResult
from repro.errors import QueryError
from repro.graph.csr import as_csr
from repro.utils.rng import as_generator
from repro.utils.timer import Timer
from repro.utils.validation import check_positive_int, check_probability


def pair_sample_size(eps: float, delta: float) -> int:
    """Chernoff budget ``r = ceil(1 / (2 eps^2) * log(1 / delta))`` (§2.2)."""
    check_probability("eps", eps)
    check_probability("delta", delta)
    return max(1, math.ceil(math.log(1.0 / delta) / (2.0 * eps * eps)))


def source_sample_size(eps: float, delta: float, num_nodes: int) -> int:
    """Chernoff + union-bound walk budget for a *single-source* estimate.

    Each of the ``n - 1`` per-node meeting fractions is a mean of ``r``
    indicator variables, so ``r = ceil(log(2 n / delta) / (2 eps^2))`` makes
    every estimate ``eps``-accurate simultaneously with probability
    ``1 - delta`` (the paper's §2 accuracy setup, union-bounded over nodes).
    """
    check_probability("eps", eps)
    check_probability("delta", delta)
    check_positive_int("num_nodes", num_nodes)
    return max(
        1, math.ceil(math.log(2.0 * num_nodes / delta) / (2.0 * eps * eps))
    )


class MonteCarlo(SimRankEstimator):
    """√c-walk Monte Carlo estimator over a CSR snapshot.

    ``eps_a`` / ``delta`` size the default single-source walk budget via
    :func:`source_sample_size`; ``num_walks`` (constructor or per-call)
    overrides it.
    """

    #: hard cap on simulated steps; the chance of a √c-walk pair surviving
    #: this long is c^MAX_STEPS (< 1e-22 at c = 0.6).
    MAX_STEPS = 100

    def __init__(
        self,
        graph,
        c: float = 0.6,
        seed=None,
        eps_a: float = 0.1,
        delta: float = 0.01,
        num_walks: int | None = None,
    ) -> None:
        check_probability("c", c)
        check_probability("eps_a", eps_a)
        check_probability("delta", delta)
        if num_walks is not None:
            check_positive_int("num_walks", num_walks)
        self._source_graph = graph
        self._csr = as_csr(graph)
        self.c = c
        self.sqrt_c = math.sqrt(c)
        self.eps_a = eps_a
        self.delta = delta
        self.num_walks = num_walks
        self._rng = as_generator(seed)

    def walk_count(self) -> int:
        """The single-source walk budget: ``num_walks`` when set, otherwise
        the (eps_a, delta) Chernoff bound of :func:`source_sample_size`."""
        if self.num_walks is not None:
            return self.num_walks
        return source_sample_size(self.eps_a, self.delta, self._csr.num_nodes)

    def sync(self) -> None:
        """Re-snapshot the source graph (index-free: the whole maintenance)."""
        self._csr = as_csr(self._source_graph)

    def capabilities(self) -> Capabilities:
        """Approximate, index-free, dynamic-friendly (O(m) sync)."""
        return Capabilities(
            method="mc",
            exact=False,
            index_based=False,
            supports_dynamic=True,
            incremental_updates=False,
            vectorized=False,
            parallel_safe=True,
            native=False,
        )

    # ------------------------------------------------------------------ #
    # single pair
    # ------------------------------------------------------------------ #

    def single_pair(self, u: int, v: int, num_samples: int) -> float:
        """Estimate ``s(u, v)`` from ``num_samples`` independent walk pairs."""
        self._check_node(u)
        self._check_node(v)
        check_positive_int("num_samples", num_samples)
        if u == v:
            return 1.0
        rng = self._rng
        graph = self._csr

        met_total = 0
        remaining = num_samples
        block_size = 65_536
        while remaining > 0:
            r = min(block_size, remaining)
            remaining -= r
            pos_u = np.full(r, u, dtype=np.int64)
            pos_v = np.full(r, v, dtype=np.int64)
            alive = np.ones(r, dtype=bool)
            for _ in range(self.MAX_STEPS):
                idx = np.nonzero(alive)[0]
                if len(idx) == 0:
                    break
                # both walks must take another step: joint probability c
                survive = rng.random(len(idx)) < self.c
                idx = idx[survive]
                alive[:] = False
                if len(idx) == 0:
                    break
                nxt_u = graph.sample_in_neighbors(pos_u[idx], rng)
                nxt_v = graph.sample_in_neighbors(pos_v[idx], rng)
                ok = (nxt_u >= 0) & (nxt_v >= 0)
                idx, nxt_u, nxt_v = idx[ok], nxt_u[ok], nxt_v[ok]
                pos_u[idx] = nxt_u
                pos_v[idx] = nxt_v
                met = nxt_u == nxt_v
                met_total += int(met.sum())
                keep = idx[~met]
                alive[keep] = True
        return met_total / num_samples

    def pair_with_guarantee(self, u: int, v: int, eps: float, delta: float) -> float:
        """``single_pair`` with the Chernoff sample budget for (eps, delta)."""
        return self.single_pair(u, v, pair_sample_size(eps, delta))

    # ------------------------------------------------------------------ #
    # single source (fingerprints)
    # ------------------------------------------------------------------ #

    def single_source(self, query: int, num_walks: int | None = None) -> SimRankResult:
        """Estimate ``s(query, v)`` for all ``v`` with ``num_walks`` fingerprints
        (default: the :meth:`walk_count` Chernoff budget).

        Walk ``j`` starts at every node simultaneously; node ``v``'s pair
        (query-walk j, v-walk j) counts as met if the two walks occupy the
        same node at the same step with both still alive.
        """
        self._check_node(query)
        if num_walks is None:
            num_walks = self.walk_count()
        check_positive_int("num_walks", num_walks)
        graph = self._csr
        rng = self._rng
        n = graph.num_nodes

        timer = Timer()
        with timer:
            meets = np.zeros(n, dtype=np.int64)
            for _ in range(num_walks):
                pos = np.arange(n, dtype=np.int64)
                alive = np.ones(n, dtype=bool)
                met = np.zeros(n, dtype=bool)
                for _ in range(self.MAX_STEPS):
                    if not alive[query]:
                        break
                    cont = rng.random(n) < self.sqrt_c
                    alive &= cont
                    if not alive[query]:
                        break
                    idx = np.nonzero(alive)[0]
                    nxt = graph.sample_in_neighbors(pos[idx], rng)
                    dead = nxt < 0
                    alive[idx[dead]] = False
                    if not alive[query]:
                        break
                    moved = idx[~dead]
                    pos[moved] = nxt[~dead]
                    just_met = alive & (pos == pos[query]) & ~met
                    just_met[query] = False
                    met |= just_met
                meets += met
            scores = meets.astype(np.float64) / num_walks
            scores[query] = 1.0
        return SimRankResult(
            query=query,
            scores=scores,
            num_walks=num_walks,
            elapsed=timer.elapsed,
            method="mc",
        )

    # ------------------------------------------------------------------ #

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._csr.num_nodes:
            raise QueryError(
                f"node {node} out of range [0, {self._csr.num_nodes})"
            )

    def __repr__(self) -> str:
        return f"MonteCarlo(n={self._csr.num_nodes}, c={self.c})"
