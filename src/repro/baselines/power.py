"""The Power Method for exact all-pairs SimRank (Jeh & Widom, Eq. 10).

Iterates ``S <- (c * P^T S P) ∨ I`` from ``S = I``, where ``P`` is the
column-stochastic in-edge transition matrix.  Nodes with no in-neighbours
have an all-zero column in ``P``, which correctly forces ``s(u, v) = 0``
against every other node.

The iteration converges geometrically: after ``t`` iterations every entry is
within ``c^t`` of the fixed point, so the paper's 55 iterations at ``c = 0.6``
give at most ``0.6^55 < 1e-12`` error — the ground-truth recipe reproduced by
:func:`repro.eval.ground_truth.compute_ground_truth`.

The matrices are ``n x n`` dense, so this is intentionally restricted to the
small-graph experiments (Figures 4-7), exactly as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.api.estimator import Capabilities, SimRankEstimator
from repro.core.results import SimRankResult
from repro.errors import ConfigurationError, QueryError
from repro.graph.csr import as_csr
from repro.utils.timer import Timer
from repro.utils.validation import check_positive_int, check_probability


class PowerMethod(SimRankEstimator):
    """Exact SimRank via the all-pairs power iteration.

    >>> from repro.graph import DiGraph
    >>> g = DiGraph.from_edges([(0, 1), (2, 1), (1, 0), (2, 0)])
    >>> pm = PowerMethod(g, c=0.6)
    >>> S = pm.compute(iterations=30)
    >>> float(S[0, 0])
    1.0
    """

    #: refuse dense n^2 matrices beyond this size to protect callers from
    #: accidentally materialising tens of GB.
    MAX_DENSE_NODES = 20_000

    def __init__(self, graph, c: float = 0.6, iterations: int = 55) -> None:
        check_probability("c", c)
        check_positive_int("iterations", iterations)
        self._source_graph = graph
        self._csr = as_csr(graph)
        if self._csr.num_nodes > self.MAX_DENSE_NODES:
            raise ConfigurationError(
                f"PowerMethod needs an n x n dense matrix; n={self._csr.num_nodes} "
                f"exceeds the safety cap {self.MAX_DENSE_NODES}. Use ProbeSim or "
                "MonteCarlo on graphs this large (that is the paper's point)."
            )
        self.c = c
        self.iterations = iterations
        self._matrix: np.ndarray | None = None
        self._iterations_done = 0

    def sync(self) -> None:
        """Re-snapshot the source graph and drop the cached matrix.

        There is no incremental path: exact all-pairs SimRank must be
        recomputed from scratch, which is why the capability descriptor
        marks this method as impractical on dynamic graphs.
        """
        self._csr = as_csr(self._source_graph)
        self._matrix = None
        self._iterations_done = 0

    def capabilities(self) -> Capabilities:
        """Exact, index-free, but recompute-everything on updates."""
        return Capabilities(
            method="power-method",
            exact=True,
            index_based=False,
            supports_dynamic=False,
            incremental_updates=False,
            vectorized=False,
            parallel_safe=False,
            native=False,
        )

    @property
    def num_iterations(self) -> int:
        """Iterations used by the last :meth:`compute` call."""
        return self._iterations_done

    def compute(self, iterations: int | None = None, tol: float = 0.0) -> np.ndarray:
        """Run the power iteration and return (and cache) the SimRank matrix.

        Parameters
        ----------
        iterations:
            Maximum iteration count (default: the constructor's ``iterations``;
            paper: 55 for <1e-12 error at c=0.6).
        tol:
            Early-exit when the max absolute entry change drops below this
            (0.0 disables early exit).
        """
        if iterations is None:
            iterations = self.iterations
        check_positive_int("iterations", iterations)
        n = self._csr.num_nodes
        transition = self._csr.transition  # P, column-stochastic (CSC)
        transition_t = transition.transpose().tocsr()  # P^T as CSR for matvecs

        current = np.eye(n, dtype=np.float64)
        for iteration in range(1, iterations + 1):
            # S' = c * P^T S P, computed as P^T (P^T S^T)^T to keep the
            # sparse operand on the left of both products.
            left = transition_t @ current  # P^T S
            nxt = (transition_t @ left.T).T  # (P^T (S^T P... )) == P^T S P
            nxt *= self.c
            np.fill_diagonal(nxt, 1.0)
            delta = float(np.max(np.abs(nxt - current))) if tol > 0.0 else None
            current = nxt
            if delta is not None and delta < tol:
                break
        self._matrix = current
        self._iterations_done = iteration
        return current

    def matrix(self) -> np.ndarray:
        """The cached SimRank matrix (computing it on first use)."""
        if self._matrix is None:
            self.compute()
        return self._matrix

    def single_source(self, query: int) -> SimRankResult:
        """Exact single-source answer, packaged like every other method's."""
        if not 0 <= query < self._csr.num_nodes:
            raise QueryError(
                f"query node {query} out of range [0, {self._csr.num_nodes})"
            )
        timer = Timer()
        with timer:
            scores = self.matrix()[query].copy()
        return SimRankResult(
            query=query,
            scores=scores,
            num_walks=0,
            elapsed=timer.elapsed,
            method="power-method",
        )

    def pair(self, u: int, v: int) -> float:
        """Exact ``s(u, v)``."""
        return float(self.matrix()[u, v])

    def __repr__(self) -> str:
        return f"PowerMethod(n={self._csr.num_nodes}, c={self.c})"
