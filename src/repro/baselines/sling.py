"""SLING — the state-of-the-art *static* index the paper argues against (§1).

Tian & Xiao (SIGMOD 2016) decompose SimRank by the walks' **last meeting**:

    s(u, v) = sum_t sum_w  h_t(u, w) * h_t(v, w) * d(w)

where ``h_t(u, w)`` is the probability that a √c-walk from ``u`` occupies
``w`` at step ``t`` (so ``H_t = (sqrt(c) * B)^t`` with ``B`` the in-edge
transition operator), and ``d(w)`` is the probability that two independent
√c-walks from ``w`` never meet again at a later step.  The identity is exact
(verified to machine precision in the tests).

The index stores the sparsified hitting operators ``H_0..H_T`` plus the
``d`` vector; a single-source query is then ``T`` sparse matvecs.  This
reproduces SLING's trade-off profile from the paper's introduction:

- **queries are very fast** (the paper credits SLING with the best static
  query times),
- **preprocessing is heavy** — building every hitting operator is
  Θ(T · nnz) work and the index is far larger than the graph
  (``O(n / eps)`` in the original),
- **updates are unsupported**: any edge change invalidates hitting
  probabilities globally, so the index must be rebuilt from scratch —
  exactly the §1 motivation for index-free ProbeSim.

Two estimators for ``d``:

``exact``
    Solve the diagonal constraint ``s(w, w) = 1``:
    ``sum_t sum_x h_t(w, x)^2 * d(x) = 1`` is a linear system ``A d = 1``
    with ``A[w, x] = sum_t H_t[w, x]^2``.  Exact but needs a dense solve —
    used on small graphs (this replaces the original's analytic machinery
    and is *more* accurate at reproduction scale).
``monte_carlo``
    The original's approach: sample walk pairs from each node and count
    re-meetings.  Vectorised across all nodes simultaneously.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import sparse

from repro.api.estimator import Capabilities, SimRankEstimator
from repro.core.results import SimRankResult
from repro.errors import ConfigurationError, QueryError
from repro.graph.csr import as_csr
from repro.utils.rng import as_generator
from repro.utils.timer import Timer
from repro.utils.validation import check_positive_int, check_probability

D_MODES = ("exact", "monte_carlo")


class SLINGIndex(SimRankEstimator):
    """Last-meeting-decomposition index for single-source SimRank.

    Parameters
    ----------
    theta:
        Sparsification threshold for the hitting operators: entries below
        ``theta`` are dropped after each propagation step (the index-size /
        accuracy knob; the original's ``eps / 2`` push threshold).
    depth:
        Number of hitting operators kept.  ``None`` derives it from
        ``theta``: beyond ``t = log(theta) / log(sqrt(c))`` every entry of
        ``H_t`` is below the threshold anyway.
    d_mode / d_samples:
        How to estimate the never-meet-again probabilities (see module
        docstring).
    """

    #: dense d-solve needs an n x n system; refuse beyond this.
    MAX_EXACT_NODES = 5_000

    def __init__(
        self,
        graph,
        c: float = 0.6,
        theta: float = 1e-4,
        depth: int | None = None,
        d_mode: str = "exact",
        d_samples: int = 2_000,
        seed=None,
    ) -> None:
        check_probability("c", c)
        if not 0.0 <= theta < 1.0:
            raise ConfigurationError(f"theta must lie in [0, 1), got {theta!r}")
        if d_mode not in D_MODES:
            raise ConfigurationError(f"d_mode must be one of {D_MODES}, got {d_mode!r}")
        check_positive_int("d_samples", d_samples)
        if depth is not None:
            check_positive_int("depth", depth)

        self._source_graph = graph
        self._csr = as_csr(graph)
        self.c = c
        self.sqrt_c = math.sqrt(c)
        self.theta = theta
        self.d_mode = d_mode
        self.d_samples = d_samples
        self._rng = as_generator(seed)
        if depth is None:
            floor = theta if theta > 0 else 1e-8
            depth = max(1, math.ceil(math.log(floor) / math.log(self.sqrt_c)))
        self.depth = depth
        if d_mode == "exact" and self._csr.num_nodes > self.MAX_EXACT_NODES:
            raise ConfigurationError(
                f"exact d-solve needs a dense {self._csr.num_nodes}^2 system; "
                f"use d_mode='monte_carlo' beyond {self.MAX_EXACT_NODES} nodes"
            )

        self._hitting: list[sparse.csr_matrix] = []
        self._d: np.ndarray | None = None
        self._build_time = 0.0
        self._build()

    # ------------------------------------------------------------------ #
    # preprocessing
    # ------------------------------------------------------------------ #

    def _build(self) -> None:
        timer = Timer()
        with timer:
            self._build_hitting_operators()
            if self.d_mode == "exact":
                self._d = self._solve_d_exact()
            else:
                self._d = self._estimate_d_monte_carlo()
        self._build_time = timer.elapsed

    def _build_hitting_operators(self) -> None:
        n = self._csr.num_nodes
        step = (self.sqrt_c * self._csr.backward_operator).tocsr()
        current = sparse.identity(n, dtype=np.float64, format="csr")
        self._hitting = [current]
        for _ in range(self.depth):
            current = (current @ step).tocsr()
            if self.theta > 0.0:
                current.data[current.data < self.theta] = 0.0
                current.eliminate_zeros()
            if current.nnz == 0:
                break
            self._hitting.append(current)

    def _solve_d_exact(self) -> np.ndarray:
        n = self._csr.num_nodes
        accumulated = np.zeros((n, n), dtype=np.float64)
        for operator in self._hitting:
            squared = operator.copy()
            squared.data = squared.data**2
            accumulated += squared.toarray()
        return np.linalg.solve(accumulated, np.ones(n))

    def _estimate_d_monte_carlo(self) -> np.ndarray:
        """``1 - Pr[two walks from w meet again at step >= 1]`` for every w,
        with all nodes' walk pairs stepped together."""
        graph = self._csr
        rng = self._rng
        n = graph.num_nodes
        meets = np.zeros(n, dtype=np.int64)
        for _ in range(self.d_samples):
            pos_a = np.arange(n, dtype=np.int64)
            pos_b = np.arange(n, dtype=np.int64)
            alive = np.ones(n, dtype=bool)
            for _ in range(self.depth):
                idx = np.nonzero(alive)[0]
                if len(idx) == 0:
                    break
                survive = rng.random(len(idx)) < self.c  # both walks continue
                alive[:] = False
                idx = idx[survive]
                if len(idx) == 0:
                    break
                nxt_a = graph.sample_in_neighbors(pos_a[idx], rng)
                nxt_b = graph.sample_in_neighbors(pos_b[idx], rng)
                ok = (nxt_a >= 0) & (nxt_b >= 0)
                idx, nxt_a, nxt_b = idx[ok], nxt_a[ok], nxt_b[ok]
                pos_a[idx] = nxt_a
                pos_b[idx] = nxt_b
                met = nxt_a == nxt_b
                meets[idx[met]] += 1
                alive[idx[~met]] = True
        return 1.0 - meets / self.d_samples

    def sync(self) -> None:
        """Full reconstruction — SLING's only response to a graph update.

        Any edge change invalidates hitting probabilities globally, so the
        unified maintenance verb is a from-scratch rebuild here (the §1
        motivation for index-free ProbeSim).
        """
        self._csr = as_csr(self._source_graph)
        self._build()

    def capabilities(self) -> Capabilities:
        """Approximate, index-based, static (rebuild-only maintenance)."""
        return Capabilities(
            method="sling",
            exact=False,
            index_based=True,
            supports_dynamic=False,
            incremental_updates=False,
            vectorized=False,
            parallel_safe=False,
            native=False,
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def build_time(self) -> float:
        return self._build_time

    @property
    def d(self) -> np.ndarray:
        return self._d

    def single_source(self, query: int) -> SimRankResult:
        """``s~(query, v) = sum_t H_t @ (H_t[query] * d)`` — T sparse matvecs."""
        if not 0 <= query < self._csr.num_nodes:
            raise QueryError(
                f"query node {query} out of range [0, {self._csr.num_nodes})"
            )
        timer = Timer()
        with timer:
            n = self._csr.num_nodes
            scores = np.zeros(n, dtype=np.float64)
            for operator in self._hitting:
                row = operator.getrow(query).toarray().ravel()
                if not row.any():
                    continue
                scores += operator @ (row * self._d)
            scores[query] = 1.0
        return SimRankResult(
            query=query,
            scores=np.clip(scores, 0.0, 1.0),
            num_walks=0,
            elapsed=timer.elapsed,
            method="sling",
        )

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    def index_bytes(self) -> int:
        """Raw payload of the hitting operators + d vector (Table 4 style)."""
        total = int(self._d.nbytes)
        for operator in self._hitting:
            total += int(
                operator.data.nbytes + operator.indices.nbytes + operator.indptr.nbytes
            )
        return total

    def index_nnz(self) -> int:
        """Total stored entries across the hitting operators."""
        return sum(int(op.nnz) for op in self._hitting)

    def __repr__(self) -> str:
        return (
            f"SLINGIndex(n={self._csr.num_nodes}, depth={len(self._hitting) - 1}, "
            f"theta={self.theta}, d_mode={self.d_mode!r})"
        )
