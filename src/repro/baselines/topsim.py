"""The TopSim family (Lee et al., §2.3): TopSim-SM, Trun-TopSim-SM,
Prio-TopSim-SM.

TopSim-SM enumerates *all* reverse-walk prefixes of the query node up to ``T``
hops and treats their endpoints as meeting points; from each meeting point it
expands forward to score candidate nodes.  In √c-walk terms this computes

    s_T(u, v) = sum over prefixes p = (u_1 .. u_i), i <= T + 1 of
                 pi(p) * P(v, p)

where ``pi(p) = prod_j sqrt(c) / |I(u_j)|`` is the probability that a √c-walk
from ``u`` starts with ``p``, and ``P(v, p)`` is the first-meeting probability
computed by the deterministic PROBE.  This is the *exhaustive* counterpart of
ProbeSim's Monte Carlo outer loop: the same decomposition (Eq. 4), but with
the walk distribution enumerated exactly to depth ``T`` and the tail beyond
``T`` dropped.  Hence its two signature behaviours from the paper: cost
``O(d^T)`` prefixes (``O(d^{2T})`` work), and an error floor from the
truncated tail that no extra time can shrink.

The two heuristic variants trade accuracy for speed exactly as described:

- **Trun-TopSim-SM** skips expanding through high in-degree meeting points
  (in-degree > ``1/h``) and trims prefixes whose probability falls below
  ``eta``;
- **Prio-TopSim-SM** keeps only the ``H`` highest-probability prefixes per
  level.

Neither variant keeps the error guarantee — the paper's Figures 4-7 show the
resulting accuracy gap, and this implementation reproduces it.
"""

from __future__ import annotations

import math

import numpy as np

from repro.api.estimator import Capabilities, SimRankEstimator
from repro.core.probe import probe_deterministic_vectorized
from repro.core.results import SimRankResult
from repro.errors import ConfigurationError, QueryError
from repro.graph.csr import as_csr
from repro.utils.timer import Timer
from repro.utils.validation import check_positive_int, check_probability

VARIANTS = ("full", "truncated", "prioritized")


class TopSim(SimRankEstimator):
    """Index-free truncated SimRank search (TopSim-SM and variants).

    Parameters
    ----------
    depth:
        ``T``, the random-walk depth (paper default 3).
    variant:
        ``"full"`` (TopSim-SM), ``"truncated"`` (Trun-TopSim-SM) or
        ``"prioritized"`` (Prio-TopSim-SM).
    degree_threshold:
        Trun- only: meeting points with in-degree above this (``1/h``, paper
        100) are not expanded.
    eta:
        Trun- only: prefixes with probability below this (paper 0.001) are
        trimmed.
    priority_width:
        Prio- only: ``H``, number of prefixes kept per level (paper 100).
    """

    def __init__(
        self,
        graph,
        c: float = 0.6,
        depth: int = 3,
        variant: str = "full",
        degree_threshold: int = 100,
        eta: float = 0.001,
        priority_width: int = 100,
    ) -> None:
        check_probability("c", c)
        check_positive_int("depth", depth)
        if variant not in VARIANTS:
            raise ConfigurationError(f"variant must be one of {VARIANTS}, got {variant!r}")
        check_positive_int("degree_threshold", degree_threshold)
        check_positive_int("priority_width", priority_width)
        if not 0.0 <= eta < 1.0:
            raise ConfigurationError(f"eta must lie in [0, 1), got {eta!r}")
        self._source_graph = graph
        self._csr = as_csr(graph)
        self.c = c
        self.sqrt_c = math.sqrt(c)
        self.depth = depth
        self.variant = variant
        self.degree_threshold = degree_threshold
        self.eta = eta
        self.priority_width = priority_width

    def sync(self) -> None:
        """Re-snapshot the source graph (index-free: the whole maintenance)."""
        self._csr = as_csr(self._source_graph)

    def capabilities(self) -> Capabilities:
        """Deterministic but truncated (approximate), index-free, dynamic."""
        return Capabilities(
            method=self.method_name,
            exact=False,
            index_based=False,
            supports_dynamic=True,
            incremental_updates=False,
            vectorized=False,
            parallel_safe=True,
            native=False,
        )

    @property
    def method_name(self) -> str:
        return {
            "full": "topsim-sm",
            "truncated": "trun-topsim-sm",
            "prioritized": "prio-topsim-sm",
        }[self.variant]

    # ------------------------------------------------------------------ #
    # prefix enumeration
    # ------------------------------------------------------------------ #

    def _expand_level(
        self, level: list[tuple[tuple[int, ...], float]]
    ) -> list[tuple[tuple[int, ...], float]]:
        """Extend every prefix in ``level`` by one reverse step."""
        graph = self._csr
        nxt: list[tuple[tuple[int, ...], float]] = []
        for prefix, prob in level:
            tail = prefix[-1]
            in_deg = graph.in_degree(tail)
            if in_deg == 0:
                continue
            if self.variant == "truncated" and in_deg > self.degree_threshold:
                continue  # omit high-degree meeting points
            step_prob = prob * self.sqrt_c / in_deg
            if self.variant == "truncated" and step_prob < self.eta:
                continue  # trim improbable walks
            for neighbor in graph.in_neighbors(tail).tolist():
                nxt.append((prefix + (neighbor,), step_prob))
        if self.variant == "prioritized" and len(nxt) > self.priority_width:
            nxt.sort(key=lambda item: item[1], reverse=True)
            nxt = nxt[: self.priority_width]
        return nxt

    def enumerate_prefixes(self, query: int) -> list[tuple[tuple[int, ...], float]]:
        """All (variant-filtered) reverse prefixes of length 2..depth+1 with
        their √c-walk probabilities."""
        level: list[tuple[tuple[int, ...], float]] = [((query,), 1.0)]
        collected: list[tuple[tuple[int, ...], float]] = []
        for _ in range(self.depth):
            level = self._expand_level(level)
            if not level:
                break
            collected.extend(level)
        return collected

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def single_source(self, query: int) -> SimRankResult:
        """Deterministic truncated single-source estimate ``s_T(query, .)``."""
        if not 0 <= query < self._csr.num_nodes:
            raise QueryError(
                f"query node {query} out of range [0, {self._csr.num_nodes})"
            )
        timer = Timer()
        with timer:
            scores = np.zeros(self._csr.num_nodes, dtype=np.float64)
            for prefix, prob in self.enumerate_prefixes(query):
                scores += prob * probe_deterministic_vectorized(
                    self._csr, prefix, self.sqrt_c
                )
            scores[query] = 1.0
        return SimRankResult(
            query=query,
            scores=scores,
            num_walks=0,
            elapsed=timer.elapsed,
            method=self.method_name,
        )

    def __repr__(self) -> str:
        return (
            f"TopSim(n={self._csr.num_nodes}, variant={self.variant!r}, "
            f"T={self.depth}, c={self.c})"
        )
