"""TSF — the two-stage random-walk sampling framework (Shao et al., §2.3).

Preprocessing stage
    Build ``Rg`` *one-way graphs*.  Each one-way graph samples, for every
    node, one of its in-neighbours (or none); it is a functional graph, so
    every node has exactly one deterministic "walk" through it.  The index is
    ``Rg`` int32 arrays of length ``n`` plus their reversed adjacency (built
    lazily per one-way graph for query traversal) — which is why TSF's index
    is one to two orders of magnitude larger than the graph (Table 4).

Query stage
    For each one-way graph, sample ``Rq`` ordinary reverse random walks from
    the query node ``u`` on the *original* graph.  For a query walk
    ``(u_0, u_1, ..., u_T)`` and every node ``v`` whose one-way walk satisfies
    ``g^t(v) = u_t``, add ``c^t``.  The estimate averages over the
    ``Rg * Rq`` (one-way graph, query walk) pairs.

Faithful to the paper's two caveats, both of which break any worst-case
guarantee (and are visible in the reproduced accuracy figures):

1. meetings are summed over *all* steps, an over-estimate of the
   first-meeting probability (their §3.3);
2. a node's walk within a one-way graph is deterministic, so the ``Rq``
   query-side walks reuse the same ``v``-side randomness (their §3.2 cycle
   assumption).

Dynamic updates (the reason TSF is the paper's dynamic-graph competitor) are
implemented as in their §4: an inserted edge ``(w, v)`` replaces ``g(v)`` with
``w`` with probability ``1/|I(v)|`` per one-way graph; a deleted edge
resamples ``g(v)`` if it was the deleted one.
"""

from __future__ import annotations

import numpy as np

from repro.api.estimator import Capabilities, SimRankEstimator
from repro.core.results import SimRankResult
from repro.errors import QueryError
from repro.graph.csr import as_csr
from repro.graph.digraph import DiGraph
from repro.graph.dynamic import EdgeUpdate
from repro.utils.rng import as_generator
from repro.utils.timer import Timer
from repro.utils.validation import check_positive_int, check_probability


class TSFIndex(SimRankEstimator):
    """One-way-graph index for top-k SimRank on dynamic graphs.

    Parameters mirror the paper's: ``rg`` one-way graphs (they use 300),
    ``rq`` query walks per one-way graph (40), query walk ``depth``
    (bounded; contributions decay as ``c^t``).
    """

    def __init__(
        self,
        graph,
        c: float = 0.6,
        rg: int = 300,
        rq: int = 40,
        depth: int = 10,
        seed=None,
    ) -> None:
        check_probability("c", c)
        check_positive_int("rg", rg)
        check_positive_int("rq", rq)
        check_positive_int("depth", depth)
        self._source_graph = graph
        self._csr = as_csr(graph)
        self.c = c
        self.rg = rg
        self.rq = rq
        self.depth = depth
        self._rng = as_generator(seed)

        self._one_way: list[np.ndarray] = []
        self._reverse: list[tuple[np.ndarray, np.ndarray] | None] = []
        self._build_time = 0.0
        self._build()

    # ------------------------------------------------------------------ #
    # preprocessing
    # ------------------------------------------------------------------ #

    def _build(self) -> None:
        """Sample the ``Rg`` one-way graphs (the preprocessing stage)."""
        timer = Timer()
        with timer:
            graph = self._csr
            n = graph.num_nodes
            all_nodes = np.arange(n, dtype=np.int64)
            self._one_way = []
            self._reverse = []
            for _ in range(self.rg):
                sampled = graph.sample_in_neighbors(all_nodes, self._rng)
                self._one_way.append(sampled.astype(np.int32))
                self._reverse.append(None)  # built lazily on first query
        self._build_time = timer.elapsed

    @property
    def build_time(self) -> float:
        """Preprocessing wall-clock of the last (re)build."""
        return self._build_time

    def sync(self) -> None:
        """Re-snapshot the graph and resample every one-way graph.

        This is the coarse (from-scratch) maintenance path; prefer
        :meth:`apply_updates` for streams of individual edge changes.
        """
        self._csr = as_csr(self._source_graph)
        self._build()

    def capabilities(self) -> Capabilities:
        """Approximate, index-based, with incremental dynamic maintenance."""
        return Capabilities(
            method="tsf",
            exact=False,
            index_based=True,
            supports_dynamic=True,
            incremental_updates=True,
            vectorized=False,
            parallel_safe=True,
            native=False,
        )

    def _reverse_adjacency(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """CSR-style children arrays of one-way graph ``index``.

        ``children(w) = {v : g(v) = w}`` — the sets walked by the reversed
        traversal during queries.
        """
        cached = self._reverse[index]
        if cached is not None:
            return cached
        g = self._one_way[index]
        n = len(g)
        valid = g >= 0
        counts = np.bincount(g[valid].astype(np.int64), minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = np.empty(int(valid.sum()), dtype=np.int32)
        sources = np.nonzero(valid)[0]
        targets = g[valid].astype(np.int64)
        order = np.argsort(targets, kind="stable")
        indices[:] = sources[order]
        # positions come out grouped by target thanks to the sort
        self._reverse[index] = (indptr, indices)
        return self._reverse[index]

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def _walk_graph(self):
        """Graph used for query-side walks: the live DiGraph when available,
        so updates are reflected without re-snapshotting."""
        if isinstance(self._source_graph, DiGraph):
            return self._source_graph
        return self._csr

    def _sample_query_walk(self, query: int) -> list[int]:
        """Ordinary reverse random walk of length <= depth on the original graph."""
        graph = self._walk_graph()
        walk = [query]
        current = query
        for _ in range(self.depth):
            nxt = graph.random_in_neighbor(current, self._rng)
            if nxt is None:
                break
            walk.append(nxt)
            current = nxt
        return walk

    def _descendants_at_depths(
        self, index: int, walk: list[int], acc: np.ndarray, weight: float
    ) -> None:
        """Add ``weight * c^t`` to every node whose one-way walk meets ``walk``
        at step ``t`` (for all t >= 1)."""
        indptr, indices = self._reverse_adjacency(index)
        for t in range(1, len(walk)):
            # {v : g^t(v) = u_t} is exactly the set t reverse levels below u_t.
            level = self._expand_reverse(
                indptr, indices, np.array([walk[t]], dtype=np.int64), t
            )
            if len(level) == 0:
                continue
            decay = weight * (self.c**t)
            acc[level] += decay

    @staticmethod
    def _expand_reverse(
        indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray, levels: int
    ) -> np.ndarray:
        """Nodes exactly ``levels`` reverse steps below ``frontier``."""
        for _ in range(levels):
            if len(frontier) == 0:
                return frontier
            chunks = [
                indices[indptr[node] : indptr[node + 1]] for node in frontier.tolist()
            ]
            if not chunks:
                return np.empty(0, dtype=np.int64)
            frontier = np.concatenate(chunks).astype(np.int64)
            # one-way graphs are functional: a node has exactly one parent, so
            # no deduplication is needed — children sets are disjoint.
        return frontier

    def single_source(self, query: int) -> SimRankResult:
        """TSF single-source estimate (the paper's over-estimating score)."""
        if not 0 <= query < self._csr.num_nodes:
            raise QueryError(
                f"query node {query} out of range [0, {self._csr.num_nodes})"
            )
        timer = Timer()
        with timer:
            n = self._csr.num_nodes
            acc = np.zeros(n, dtype=np.float64)
            weight = 1.0 / (self.rg * self.rq)
            for index in range(self.rg):
                for _ in range(self.rq):
                    walk = self._sample_query_walk(query)
                    if len(walk) >= 2:
                        self._descendants_at_depths(index, walk, acc, weight)
            acc[query] = 1.0
        return SimRankResult(
            query=query,
            scores=acc,
            num_walks=self.rg * self.rq,
            elapsed=timer.elapsed,
            method="tsf",
        )

    # ------------------------------------------------------------------ #
    # dynamic maintenance
    # ------------------------------------------------------------------ #

    def apply_updates(self, updates) -> None:
        """Incrementally patch the one-way graphs for a stream of updates.

        The protocol's capability-dispatched maintenance hook: the caller
        (e.g. :class:`repro.api.service.SimRankService`) mutates the graph
        first, then notifies the index per update.
        """
        for update in updates:
            self.apply_update(update)

    def apply_update(self, update: EdgeUpdate) -> None:
        """Incrementally maintain the one-way graphs for one edge update.

        The *graph itself* must be updated by the caller (before or after —
        only the target node's in-degree is read).  Reverse adjacencies of
        touched one-way graphs are invalidated and rebuilt lazily.
        """
        target = update.target
        source = update.source
        graph = self._walk_graph()
        in_deg = graph.in_degree(target)
        if update.kind == "insert":
            if in_deg <= 0:
                return
            for index in range(self.rg):
                if self._rng.random() < 1.0 / in_deg:
                    self._one_way[index][target] = source
                    self._reverse[index] = None
        else:  # delete
            neighbors = graph.in_neighbors(target)
            for index in range(self.rg):
                if self._one_way[index][target] == source:
                    if len(neighbors) == 0:
                        self._one_way[index][target] = -1
                    else:
                        self._one_way[index][target] = int(
                            neighbors[int(self._rng.integers(len(neighbors)))]
                        )
                    self._reverse[index] = None

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    def index_bytes(self, include_reverse: bool = True) -> int:
        """Bytes held by the index payload (Table 4's space column)."""
        total = sum(arr.nbytes for arr in self._one_way)
        if include_reverse:
            for cached in self._reverse:
                if cached is not None:
                    indptr, indices = cached
                    total += indptr.nbytes + indices.nbytes
        return total

    def materialize_reverse(self) -> None:
        """Force-build every reverse adjacency (for space accounting)."""
        for index in range(self.rg):
            self._reverse_adjacency(index)

    def __repr__(self) -> str:
        return (
            f"TSFIndex(n={self._csr.num_nodes}, rg={self.rg}, rq={self.rq}, "
            f"depth={self.depth}, c={self.c})"
        )
