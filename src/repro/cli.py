"""Command-line interface: SimRank queries and dataset tooling from a shell.

Subcommands
-----------
``single-source``
    Run an approximate single-source query on an edge-list graph and print
    the highest-scoring nodes.
``topk``
    Run an approximate top-k query.
``methods``
    List every registered query method with its capabilities.
``stats``
    Print Table 3-style statistics for an edge-list graph.
``dataset``
    Generate a named stand-in dataset and write it as an edge list.

Every query method is resolved through :mod:`repro.api.registry` — the CLI
holds no per-method construction code, so newly registered methods appear in
``--method`` automatically.

Examples
--------
::

    python -m repro dataset --name wiki-vote --scale tiny --out /tmp/wv.txt
    python -m repro stats /tmp/wv.txt
    python -m repro methods
    python -m repro topk /tmp/wv.txt --query 5 --k 10 --eps-a 0.1 --seed 7
    python -m repro single-source /tmp/wv.txt --query 5 --method mc --num-walks 500
"""

from __future__ import annotations

import argparse
import sys

from repro.api.registry import capability_rows, create, get_entry, method_names
from repro.datasets import DATASETS, load_dataset
from repro.errors import ReproError
from repro.eval.reporting import format_table
from repro.graph import compute_stats, read_edge_list, write_edge_list

METHODS = tuple(method_names())


def _method_config(args) -> dict:
    """Distill the CLI's option superset down to the selected method's knobs.

    Options left at ``None`` are dropped so each method keeps its own
    defaults; everything else is filtered against the registry entry's
    declared ``config_keys``.
    """
    values = {
        "c": args.c,
        "eps_a": args.eps_a,
        "delta": args.delta,
        "strategy": args.strategy,
        "engine": args.engine,
        "seed": args.seed,
        "num_walks": args.num_walks,
        "depth": args.depth,
        "rg": args.rg,
        "rq": args.rq,
        "theta": args.theta,
        "d_mode": args.d_mode,
        "d_samples": args.d_samples,
    }
    entry = get_entry(args.method)
    return {
        key: value
        for key, value in values.items()
        if key in entry.config_keys and value is not None
    }


def _build_method(args, graph):
    """Instantiate the requested query method through the registry."""
    return create(args.method, graph, **_method_config(args))


def _add_query_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("graph", help="edge-list file (SNAP format, .gz ok)")
    parser.add_argument("--query", type=int, required=True, help="query node id")
    parser.add_argument("--method", choices=METHODS, default="probesim")
    parser.add_argument("--c", type=float, default=0.6, help="decay factor")
    parser.add_argument("--eps-a", type=float, default=0.1, dest="eps_a")
    parser.add_argument("--delta", type=float, default=0.01)
    parser.add_argument("--strategy", default=None,
                        choices=("basic", "batch", "randomized", "hybrid"),
                        help="probesim strategy (default: the engine's hybrid)")
    parser.add_argument("--engine", default=None,
                        choices=("auto", "loop", "batched"),
                        help="probesim probe execution: per-prefix 'loop' or "
                             "the vectorized trie-sharing 'batched' kernel "
                             "(default auto: batched for --strategy batch)")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--num-walks", type=int, default=None, dest="num_walks",
                        help="override the theoretical walk count (probesim/mc)")
    parser.add_argument("--depth", type=int, default=None,
                        help="walk depth (TopSim T / TSF query depth)")
    parser.add_argument("--rg", type=int, default=100, help="TSF one-way graphs")
    parser.add_argument("--rq", type=int, default=10, help="TSF reuse count")
    parser.add_argument("--theta", type=float, default=1e-3, help="SLING threshold")
    parser.add_argument("--d-mode", default="monte_carlo", dest="d_mode",
                        choices=("exact", "monte_carlo"),
                        help="SLING diagonal-correction estimator")
    parser.add_argument("--d-samples", type=int, default=1000, dest="d_samples",
                        help="SLING monte_carlo d-estimation samples")


def _cmd_single_source(args) -> int:
    graph = read_edge_list(args.graph)
    method = _build_method(args, graph)
    result = method.single_source(args.query)
    top = result.topk(args.limit)
    rows = [
        {"node": node, "estimate": score} for node, score in top.as_pairs()
    ]
    print(format_table(
        rows,
        title=(f"{args.method}: top {args.limit} of single-source from "
               f"node {args.query} ({result.elapsed:.3f}s)"),
    ))
    return 0


def _cmd_topk(args) -> int:
    graph = read_edge_list(args.graph)
    method = _build_method(args, graph)
    top = method.topk(args.query, args.k)
    rows = [
        {"rank": rank, "node": node, "estimate": score}
        for rank, (node, score) in enumerate(top.as_pairs(), start=1)
    ]
    print(format_table(rows, title=f"{args.method}: top-{args.k} for node {args.query}"))
    return 0


def _cmd_methods(args) -> int:
    rows = [
        {
            "method": row["name"],
            "exact": "yes" if row["exact"] else "no",
            "index": "yes" if row["index"] else "no",
            "dynamic": "yes" if row["dynamic"] else "no",
            "incremental": "yes" if row["incremental"] else "no",
            "vectorized": "yes" if row["vectorized"] else "no",
            "summary": row["summary"],
        }
        for row in capability_rows()
    ]
    print(format_table(rows, title="registered SimRank methods"))
    return 0


def _cmd_stats(args) -> int:
    graph = read_edge_list(args.graph)
    stats = compute_stats(graph)
    print(format_table([stats.as_row()], title=f"stats: {args.graph}"))
    return 0


def _cmd_dataset(args) -> int:
    graph = load_dataset(args.name, scale=args.scale)
    write_edge_list(graph, args.out, header=f"stand-in dataset {args.name} ({args.scale})")
    print(f"wrote {graph.num_nodes} nodes / {graph.num_edges} edges to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ProbeSim reproduction: SimRank queries on edge-list graphs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    single = sub.add_parser("single-source", help="approximate single-source query")
    _add_query_options(single)
    single.add_argument("--limit", type=int, default=10,
                        help="how many of the best-scoring nodes to print")
    single.set_defaults(func=_cmd_single_source)

    topk = sub.add_parser("topk", help="approximate top-k query")
    _add_query_options(topk)
    topk.add_argument("--k", type=int, default=10)
    topk.set_defaults(func=_cmd_topk)

    methods = sub.add_parser("methods", help="list registered methods + capabilities")
    methods.set_defaults(func=_cmd_methods)

    stats = sub.add_parser("stats", help="print graph statistics")
    stats.add_argument("graph", help="edge-list file")
    stats.set_defaults(func=_cmd_stats)

    dataset = sub.add_parser("dataset", help="generate a stand-in dataset")
    dataset.add_argument("--name", required=True, choices=sorted(DATASETS))
    dataset.add_argument("--scale", default="tiny", choices=("tiny", "small", "paper"))
    dataset.add_argument("--out", required=True, help="output edge-list path")
    dataset.set_defaults(func=_cmd_dataset)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
