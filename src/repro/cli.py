"""Command-line interface: SimRank queries and dataset tooling from a shell.

Subcommands
-----------
``single-source``
    Run an approximate single-source query on an edge-list graph and print
    the highest-scoring nodes.
``topk``
    Run an approximate top-k query.
``methods``
    List every registered query method with its capabilities (``--markdown``
    emits the README's auto-generated table).
``workload``
    Generate a mixed query/update trace and replay it against one or more
    methods, printing latency percentiles / QPS / maintenance cost
    (optionally persisting the full JSON report with ``--json``).
``stats``
    Print Table 3-style statistics for an edge-list graph.
``dataset``
    Generate a named stand-in dataset and write it as an edge list.

Every query method is resolved through :mod:`repro.api.registry` — the CLI
holds no per-method construction code, so newly registered methods appear in
``--method`` automatically.

Examples
--------
::

    python -m repro dataset --name wiki-vote --scale tiny --out /tmp/wv.txt
    python -m repro stats /tmp/wv.txt
    python -m repro methods
    python -m repro topk /tmp/wv.txt --query 5 --k 10 --eps-a 0.1 --seed 7
    python -m repro single-source /tmp/wv.txt --query 5 --method mc --num-walks 500
    python -m repro workload /tmp/wv.txt --methods probesim-batched,tsf \\
        --ops 400 --read-fraction 0.9 --workers 2 --seed 7 --json /tmp/wl.json
    python -m repro workload /tmp/wv.txt --methods tsf --read-fraction 0.5 \\
        --executor process --maintenance delta --cache-size 512 --seed 7
"""

from __future__ import annotations

import argparse
import sys

from repro.api.registry import capability_rows, create, get_entry, method_names
from repro.datasets import DATASETS, load_dataset
from repro.errors import ReproError
from repro.eval.reporting import format_table, markdown_table, write_json_report
from repro.graph import compute_stats, read_edge_list, write_edge_list

METHODS = tuple(method_names())


def _method_config(args) -> dict:
    """Distill the CLI's option superset down to the selected method's knobs.

    Options left at ``None`` are dropped so each method keeps its own
    defaults; everything else is filtered against the registry entry's
    declared ``config_keys``.
    """
    values = {
        "c": args.c,
        "eps_a": args.eps_a,
        "delta": args.delta,
        "strategy": args.strategy,
        "engine": args.engine,
        "seed": args.seed,
        "num_walks": args.num_walks,
        "depth": args.depth,
        "rg": args.rg,
        "rq": args.rq,
        "theta": args.theta,
        "d_mode": args.d_mode,
        "d_samples": args.d_samples,
    }
    entry = get_entry(args.method)
    return {
        key: value
        for key, value in values.items()
        if key in entry.config_keys and value is not None
    }


def _build_method(args, graph):
    """Instantiate the requested query method through the registry."""
    return create(args.method, graph, **_method_config(args))


def _add_query_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("graph", help="edge-list file (SNAP format, .gz ok)")
    parser.add_argument("--query", type=int, required=True, help="query node id")
    parser.add_argument("--method", choices=METHODS, default="probesim")
    parser.add_argument("--c", type=float, default=0.6, help="decay factor")
    parser.add_argument("--eps-a", type=float, default=0.1, dest="eps_a")
    parser.add_argument("--delta", type=float, default=0.01)
    parser.add_argument("--strategy", default=None,
                        choices=("basic", "batch", "randomized", "hybrid"),
                        help="probesim strategy (default: the engine's hybrid)")
    parser.add_argument("--engine", default=None,
                        choices=("auto", "loop", "batched"),
                        help="probesim probe execution: per-prefix 'loop' or "
                             "the vectorized trie-sharing 'batched' kernel "
                             "(default auto: batched for --strategy batch)")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--num-walks", type=int, default=None, dest="num_walks",
                        help="override the theoretical walk count (probesim/mc)")
    parser.add_argument("--depth", type=int, default=None,
                        help="walk depth (TopSim T / TSF query depth)")
    parser.add_argument("--rg", type=int, default=100, help="TSF one-way graphs")
    parser.add_argument("--rq", type=int, default=10, help="TSF reuse count")
    parser.add_argument("--theta", type=float, default=1e-3, help="SLING threshold")
    parser.add_argument("--d-mode", default="monte_carlo", dest="d_mode",
                        choices=("exact", "monte_carlo"),
                        help="SLING diagonal-correction estimator")
    parser.add_argument("--d-samples", type=int, default=1000, dest="d_samples",
                        help="SLING monte_carlo d-estimation samples")


def _cmd_single_source(args) -> int:
    graph = read_edge_list(args.graph)
    method = _build_method(args, graph)
    result = method.single_source(args.query)
    top = result.topk(args.limit)
    rows = [
        {"node": node, "estimate": score} for node, score in top.as_pairs()
    ]
    print(format_table(
        rows,
        title=(f"{args.method}: top {args.limit} of single-source from "
               f"node {args.query} ({result.elapsed:.3f}s)"),
    ))
    return 0


def _cmd_topk(args) -> int:
    graph = read_edge_list(args.graph)
    method = _build_method(args, graph)
    top = method.topk(args.query, args.k)
    rows = [
        {"rank": rank, "node": node, "estimate": score}
        for rank, (node, score) in enumerate(top.as_pairs(), start=1)
    ]
    print(format_table(rows, title=f"{args.method}: top-{args.k} for node {args.query}"))
    return 0


def methods_table_rows(markdown: bool = False) -> list[dict[str, str]]:
    """Registry-derived rows of the methods table (CLI + README generator).

    One row per registered method: name, the five capability flags as
    yes/no strings, and the summary.  The ``markdown`` variant additionally
    carries the accepted config keys and wraps identifiers in backticks —
    that is the exact row set the README sync tool
    (``tools/update_readme_methods.py``) and its guard test embed, so the
    README can never drift from the registry.  The plain variant stays
    terminal-width-friendly for ``repro methods``.
    """
    rows = []
    for row in capability_rows():
        name = str(row["name"])
        rendered = {
            "method": f"`{name}`" if markdown else name,
            "exact": "yes" if row["exact"] else "no",
            "index": "yes" if row["index"] else "no",
            "dynamic": "yes" if row["dynamic"] else "no",
            "incremental": "yes" if row["incremental"] else "no",
            "vectorized": "yes" if row["vectorized"] else "no",
            "parallel": "yes" if row["parallel"] else "no",
        }
        if markdown:
            rendered["config keys"] = ", ".join(
                f"`{key}`" for key in sorted(get_entry(name).config_keys)
            )
        rendered["summary"] = str(row["summary"])
        rows.append(rendered)
    return rows


def _cmd_methods(args) -> int:
    if getattr(args, "markdown", False):
        print(markdown_table(methods_table_rows(markdown=True)))
    else:
        print(format_table(methods_table_rows(), title="registered SimRank methods"))
    return 0


def _cmd_workload(args) -> int:
    from repro.workloads import generate_workload, run_workload

    graph = read_edge_list(args.graph)
    methods = [name.strip() for name in args.methods.split(",") if name.strip()]
    trace = generate_workload(
        graph,
        num_ops=args.ops,
        read_fraction=args.read_fraction,
        zipf_s=args.zipf,
        insert_fraction=args.insert_fraction,
        max_query_batch=args.query_batch,
        max_update_batch=args.update_batch,
        seed=args.seed,
    )
    configs = {}
    shared = {
        "c": args.c, "eps_a": args.eps_a, "delta": args.delta, "seed": args.seed,
        "num_walks": args.num_walks, "depth": args.depth, "rg": args.rg,
        "rq": args.rq, "theta": args.theta,
    }
    for name in methods:
        keys = get_entry(name).config_keys
        configs[name] = {
            key: value for key, value in shared.items()
            if key in keys and value is not None
        }
    result = run_workload(
        graph, trace, methods, configs=configs,
        workers=args.workers, sync_every=args.sync_every,
        executor=args.executor, cache_size=args.cache_size,
        maintenance=args.maintenance,
    )
    print(format_table(
        result.rows(),
        title=(f"workload: {trace.num_queries} queries / {trace.num_updates} "
               f"updates, read_fraction={args.read_fraction}, "
               f"workers={args.workers}, executor={args.executor}, "
               f"maintenance={args.maintenance}"),
    ))
    if args.json:
        path = write_json_report(args.json, result.to_dict())
        print(f"wrote JSON report to {path}")
    return 0


def _cmd_stats(args) -> int:
    graph = read_edge_list(args.graph)
    stats = compute_stats(graph)
    print(format_table([stats.as_row()], title=f"stats: {args.graph}"))
    return 0


def _cmd_dataset(args) -> int:
    graph = load_dataset(args.name, scale=args.scale)
    write_edge_list(graph, args.out, header=f"stand-in dataset {args.name} ({args.scale})")
    print(f"wrote {graph.num_nodes} nodes / {graph.num_edges} edges to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ProbeSim reproduction: SimRank queries on edge-list graphs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    single = sub.add_parser("single-source", help="approximate single-source query")
    _add_query_options(single)
    single.add_argument("--limit", type=int, default=10,
                        help="how many of the best-scoring nodes to print")
    single.set_defaults(func=_cmd_single_source)

    topk = sub.add_parser("topk", help="approximate top-k query")
    _add_query_options(topk)
    topk.add_argument("--k", type=int, default=10)
    topk.set_defaults(func=_cmd_topk)

    methods = sub.add_parser("methods", help="list registered methods + capabilities")
    methods.add_argument("--markdown", action="store_true",
                         help="emit the table as GitHub markdown (README format)")
    methods.set_defaults(func=_cmd_methods)

    workload = sub.add_parser(
        "workload",
        help="replay a mixed query/update workload and report latency/QPS",
    )
    workload.add_argument("graph", help="edge-list file (SNAP format, .gz ok)")
    workload.add_argument("--methods", default="probesim-batched",
                          help="comma-separated registry names to compare")
    workload.add_argument("--ops", type=int, default=400,
                          help="total operations (queries + updates) in the trace")
    workload.add_argument("--read-fraction", type=float, default=0.9,
                          dest="read_fraction",
                          help="op-level probability an operation is a query")
    workload.add_argument("--zipf", type=float, default=1.0,
                          help="query-key Zipf skew exponent (0 = uniform)")
    workload.add_argument("--insert-fraction", type=float, default=0.5,
                          dest="insert_fraction",
                          help="probability an edge update is an insertion")
    workload.add_argument("--query-batch", type=int, default=8, dest="query_batch",
                          help="max query arrival-batch size")
    workload.add_argument("--update-batch", type=int, default=4, dest="update_batch",
                          help="max update arrival-batch size")
    workload.add_argument("--workers", type=int, default=1,
                          help="query-side pool width (one replica each)")
    workload.add_argument("--executor", default="thread",
                          choices=("thread", "process", "sequential"),
                          help="replica pool: GIL-bound threads, worker "
                               "processes over a shared-memory graph, or the "
                               "process service's in-process oracle")
    workload.add_argument("--maintenance", default="auto",
                          choices=("auto", "delta", "rebuild"),
                          help="process-executor update path: in-place delta "
                               "propagation (O(delta) per burst, needs an "
                               "incremental-capable method), full epoch "
                               "rebuild (O(m)), or auto (delta when the "
                               "method supports it)")
    workload.add_argument("--cache-size", type=int, default=0, dest="cache_size",
                          help="update-aware single-source result cache "
                               "capacity (0 disables)")
    workload.add_argument("--sync-every", type=int, default=1, dest="sync_every",
                          help="sync bulk estimators every N update batches")
    workload.add_argument("--seed", type=int, default=None,
                          help="trace + estimator seed (fixed seed => "
                               "bit-reproducible results)")
    workload.add_argument("--json", default=None,
                          help="also write the full JSON report to this path")
    workload.add_argument("--c", type=float, default=None, help="decay factor")
    workload.add_argument("--eps-a", type=float, default=None, dest="eps_a")
    workload.add_argument("--delta", type=float, default=None)
    workload.add_argument("--num-walks", type=int, default=None, dest="num_walks")
    workload.add_argument("--depth", type=int, default=None)
    workload.add_argument("--rg", type=int, default=None, help="TSF one-way graphs")
    workload.add_argument("--rq", type=int, default=None, help="TSF reuse count")
    workload.add_argument("--theta", type=float, default=None, help="SLING threshold")
    workload.set_defaults(func=_cmd_workload)

    stats = sub.add_parser("stats", help="print graph statistics")
    stats.add_argument("graph", help="edge-list file")
    stats.set_defaults(func=_cmd_stats)

    dataset = sub.add_parser("dataset", help="generate a stand-in dataset")
    dataset.add_argument("--name", required=True, choices=sorted(DATASETS))
    dataset.add_argument("--scale", default="tiny", choices=("tiny", "small", "paper"))
    dataset.add_argument("--out", required=True, help="output edge-list path")
    dataset.set_defaults(func=_cmd_dataset)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
