"""Command-line interface: SimRank queries and dataset tooling from a shell.

Subcommands
-----------
``single-source``
    Run an approximate single-source query on an edge-list graph and print
    the highest-scoring nodes.
``topk``
    Run an approximate top-k query.
``methods``
    List every registered query method with its capabilities (``--markdown``
    emits the README's auto-generated table).
``workload``
    Generate a mixed query/update trace and replay it against one or more
    methods, printing latency percentiles / QPS / maintenance cost
    (optionally persisting the full JSON report with ``--json``).
``serve``
    Start the asyncio HTTP front door (:mod:`repro.server`) over a graph:
    JSON query endpoints with request coalescing, admission control, and a
    Prometheus ``/metrics`` exposition.
``loadgen``
    Replay a generated workload trace against a running ``serve`` instance
    open-loop at a target arrival rate and print p50/p95/p99/QPS/shed-rate.
``ingest``
    Stream a SNAP edge list into a persistent CSR snapshot file out of
    core (bounded memory), bit-identical to the in-memory load path.
``recover``
    Inspect a persistent store directory: newest valid generation, WAL
    tail length, torn bytes, and the recovered graph's digest.
``stats``
    Print Table 3-style statistics for an edge-list graph.
``dataset``
    Generate a named stand-in dataset and write it as an edge list.
``analyze``
    Run the static invariant analyzers (:mod:`repro.analysis`) over the
    source tree: determinism, lock discipline, resource lifecycle, API
    contract, and no-bare-thread rules, with a committed baseline for
    deliberate exemptions (exit 0 clean, 1 findings, 2 bad usage).

Every query method is resolved through :mod:`repro.api.registry` — the CLI
holds no per-method construction code, so newly registered methods appear in
``--method`` automatically.

Examples
--------
::

    python -m repro dataset --name wiki-vote --scale tiny --out /tmp/wv.txt
    python -m repro stats /tmp/wv.txt
    python -m repro methods
    python -m repro topk /tmp/wv.txt --query 5 --k 10 --eps-a 0.1 --seed 7
    python -m repro single-source /tmp/wv.txt --query 5 --method mc --num-walks 500
    python -m repro workload /tmp/wv.txt --methods probesim-batched,tsf \\
        --ops 400 --read-fraction 0.9 --workers 2 --seed 7 --json /tmp/wl.json
    python -m repro workload /tmp/wv.txt --methods tsf --read-fraction 0.5 \\
        --executor process --maintenance delta --cache-size 512 --seed 7
    python -m repro serve --dataset wiki-vote --scale tiny --port 8080 \\
        --methods probesim-batched --seed 7 --query-seeded
    python -m repro loadgen --dataset wiki-vote --scale tiny --port 8080 \\
        --rate 200 --ops 400 --seed 3
    python -m repro ingest /tmp/wv.txt --out /tmp/wv.csr
    python -m repro workload --snapshot /tmp/wv.csr --methods probesim-batched \\
        --read-fraction 1 --executor process --workers 2 --seed 7
    python -m repro serve --snapshot /tmp/wv.csr --port 8080 --workers 2
    python -m repro recover /tmp/wv-store
"""

from __future__ import annotations

import argparse
import sys

from repro.api.registry import capability_rows, create, get_entry, method_names
from repro.datasets import DATASETS, load_dataset
from repro.errors import ConfigurationError, ReproError
from repro.eval.reporting import format_table, markdown_table, write_json_report
from repro.graph import compute_stats, read_edge_list, write_edge_list
from repro.storage.ingest import DEFAULT_CHUNK_EDGES

METHODS = tuple(method_names())


def _method_config(args) -> dict:
    """Distill the CLI's option superset down to the selected method's knobs.

    Options left at ``None`` are dropped so each method keeps its own
    defaults; everything else is filtered against the registry entry's
    declared ``config_keys``.
    """
    values = {
        "c": args.c,
        "eps_a": args.eps_a,
        "delta": args.delta,
        "strategy": args.strategy,
        "engine": args.engine,
        "seed": args.seed,
        "num_walks": args.num_walks,
        "depth": args.depth,
        "rg": args.rg,
        "rq": args.rq,
        "theta": args.theta,
        "d_mode": args.d_mode,
        "d_samples": args.d_samples,
    }
    entry = get_entry(args.method)
    return {
        key: value
        for key, value in values.items()
        if key in entry.config_keys and value is not None
    }


def _build_method(args, graph):
    """Instantiate the requested query method through the registry."""
    return create(args.method, graph, **_method_config(args))


def _add_query_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("graph", help="edge-list file (SNAP format, .gz ok)")
    parser.add_argument("--query", type=int, required=True, help="query node id")
    parser.add_argument("--method", choices=METHODS, default="probesim")
    parser.add_argument("--c", type=float, default=0.6, help="decay factor")
    parser.add_argument("--eps-a", type=float, default=0.1, dest="eps_a")
    parser.add_argument("--delta", type=float, default=0.01)
    parser.add_argument("--strategy", default=None,
                        choices=("basic", "batch", "randomized", "hybrid"),
                        help="probesim strategy (default: the engine's hybrid)")
    parser.add_argument("--engine", default=None,
                        choices=("auto", "loop", "batched", "native"),
                        help="probesim probe execution: per-prefix 'loop', "
                             "the vectorized trie-sharing 'batched' kernel, "
                             "or the compiled 'native' kernels (numba when "
                             "installed, numpy fallback otherwise; "
                             "bit-reproducible per seed+query) "
                             "(default auto: batched for --strategy batch)")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--num-walks", type=int, default=None, dest="num_walks",
                        help="override the theoretical walk count (probesim/mc)")
    parser.add_argument("--depth", type=int, default=None,
                        help="walk depth (TopSim T / TSF query depth)")
    parser.add_argument("--rg", type=int, default=100, help="TSF one-way graphs")
    parser.add_argument("--rq", type=int, default=10, help="TSF reuse count")
    parser.add_argument("--theta", type=float, default=1e-3, help="SLING threshold")
    parser.add_argument("--d-mode", default="monte_carlo", dest="d_mode",
                        choices=("exact", "monte_carlo"),
                        help="SLING diagonal-correction estimator")
    parser.add_argument("--d-samples", type=int, default=1000, dest="d_samples",
                        help="SLING monte_carlo d-estimation samples")


def _cmd_single_source(args) -> int:
    graph = read_edge_list(args.graph)
    method = _build_method(args, graph)
    result = method.single_source(args.query)
    top = result.topk(args.limit)
    rows = [
        {"node": node, "estimate": score} for node, score in top.as_pairs()
    ]
    print(format_table(
        rows,
        title=(f"{args.method}: top {args.limit} of single-source from "
               f"node {args.query} ({result.elapsed:.3f}s)"),
    ))
    return 0


def _cmd_topk(args) -> int:
    graph = read_edge_list(args.graph)
    method = _build_method(args, graph)
    top = method.topk(args.query, args.k)
    rows = [
        {"rank": rank, "node": node, "estimate": score}
        for rank, (node, score) in enumerate(top.as_pairs(), start=1)
    ]
    print(format_table(rows, title=f"{args.method}: top-{args.k} for node {args.query}"))
    return 0


#: capability columns of the methods table, in render order; the single
#: source for the terminal table, the README markdown table, and the
#: ``methods --json`` dump (which adds nothing but types and runtime info).
METHOD_CAPABILITY_COLUMNS = (
    "exact", "index", "dynamic", "incremental", "vectorized", "parallel",
    "native",
)


def methods_rows() -> list[dict[str, object]]:
    """Registry-derived raw rows (bools intact) of the methods table.

    One row per registered method: name, the capability flags of
    ``METHOD_CAPABILITY_COLUMNS``, the accepted config keys, and the
    summary.  Every rendering of the methods table — ``repro methods``,
    ``repro methods --markdown`` (and through it the README), and
    ``repro methods --json`` — derives from these rows, so they cannot
    drift from each other or from the registry.
    """
    rows = []
    for row in capability_rows():
        name = str(row["name"])
        rendered: dict[str, object] = {"method": name}
        for column in METHOD_CAPABILITY_COLUMNS:
            rendered[column] = bool(row[column])
        rendered["config_keys"] = sorted(get_entry(name).config_keys)
        rendered["summary"] = str(row["summary"])
        rows.append(rendered)
    return rows


def methods_table_rows(markdown: bool = False) -> list[dict[str, str]]:
    """The methods table as strings (CLI table + README generator).

    The ``markdown`` variant additionally carries the accepted config keys
    and wraps identifiers in backticks — that is the exact row set the
    README sync tool (``tools/update_readme_methods.py``) and its guard
    test embed, so the README can never drift from the registry.  The
    plain variant stays terminal-width-friendly for ``repro methods``.
    """
    rows = []
    for raw in methods_rows():
        name = str(raw["method"])
        rendered = {"method": f"`{name}`" if markdown else name}
        for column in METHOD_CAPABILITY_COLUMNS:
            rendered[column] = "yes" if raw[column] else "no"
        if markdown:
            rendered["config keys"] = ", ".join(
                f"`{key}`" for key in raw["config_keys"]
            )
        rendered["summary"] = str(raw["summary"])
        rows.append(rendered)
    return rows


def methods_json_payload() -> dict[str, object]:
    """The ``methods --json`` document: raw rows plus runtime engine info.

    The rows are :func:`methods_rows` verbatim (the same source as both
    table renderings).  ``native_backend`` reports which native backend
    this environment selected (``"numba"``/``"numpy"``) — runtime
    information that the environment-independent ``native`` column
    deliberately excludes.
    """
    from repro.core.native import native_backend

    return {"methods": methods_rows(), "native_backend": native_backend()}


def _cmd_methods(args) -> int:
    if getattr(args, "json", False):
        import json

        print(json.dumps(methods_json_payload(), indent=2))
    elif getattr(args, "markdown", False):
        print(markdown_table(methods_table_rows(markdown=True)))
    else:
        print(format_table(methods_table_rows(), title="registered SimRank methods"))
    return 0


def _cmd_workload(args) -> int:
    from repro.workloads import generate_workload, run_workload

    snapshot_handle = None
    if args.snapshot is not None:
        if args.graph is not None:
            raise ConfigurationError(
                "give a graph path or --snapshot, not both"
            )
        if args.shards:
            raise ConfigurationError(
                "--snapshot replay on the CLI is unsharded; the sharded "
                "snapshot path is exercised through the python API"
            )
        if args.read_fraction < 1.0:
            raise ConfigurationError(
                "--snapshot serves read-only: use --read-fraction 1"
            )
        from repro.storage import attach_snapshot

        # the trace is drawn over the mmap-attached CSR itself — the graph
        # is never materialised in memory
        snapshot_handle = attach_snapshot(args.snapshot)
        trace_graph = snapshot_handle.graph()
    elif args.graph is None:
        raise ConfigurationError("workload needs a graph path or --snapshot")
    else:
        trace_graph = read_edge_list(args.graph)
    graph = None if args.snapshot is not None else trace_graph
    methods = [name.strip() for name in args.methods.split(",") if name.strip()]
    trace = generate_workload(
        trace_graph,
        num_ops=args.ops,
        read_fraction=args.read_fraction,
        zipf_s=args.zipf,
        insert_fraction=args.insert_fraction,
        max_query_batch=args.query_batch,
        max_update_batch=args.update_batch,
        seed=args.seed,
    )
    configs = {}
    shared = {
        "c": args.c, "eps_a": args.eps_a, "delta": args.delta, "seed": args.seed,
        "num_walks": args.num_walks, "depth": args.depth, "rg": args.rg,
        "rq": args.rq, "theta": args.theta,
    }
    for name in methods:
        keys = get_entry(name).config_keys
        configs[name] = {
            key: value for key, value in shared.items()
            if key in keys and value is not None
        }
    try:
        result = run_workload(
            graph, trace, methods, configs=configs,
            workers=args.workers, sync_every=args.sync_every,
            executor=args.executor, cache_size=args.cache_size,
            maintenance=args.maintenance,
            shards=args.shards, partition=args.partition,
            snapshot=args.snapshot,
        )
    finally:
        if snapshot_handle is not None:
            del trace_graph
            try:
                snapshot_handle.close()
            except BufferError:  # trace still views the arrays; mmap dies with it
                pass
    sharding = (
        f", shards={args.shards} ({args.partition})" if args.shards else ""
    )
    print(format_table(
        result.rows(),
        title=(f"workload: {trace.num_queries} queries / {trace.num_updates} "
               f"updates, read_fraction={args.read_fraction}, "
               f"workers={args.workers}, executor={args.executor}, "
               f"maintenance={args.maintenance}{sharding}"),
    ))
    if args.json:
        path = write_json_report(args.json, result.to_dict())
        print(f"wrote JSON report to {path}")
    return 0


def _serve_graph(args):
    """Resolve the served graph: an edge-list path or a generated dataset."""
    if args.graph is not None and args.dataset is not None:
        raise ConfigurationError("give either a graph path or --dataset, not both")
    if args.graph is not None:
        return read_edge_list(args.graph)
    if args.dataset is not None:
        return load_dataset(args.dataset, scale=args.scale)
    raise ConfigurationError("serve/loadgen need a graph path or --dataset")


def _serve_method_configs(args, methods: list[str]) -> dict[str, dict]:
    """Per-method config dicts from the serve option set."""
    shared = {
        "c": args.c, "eps_a": args.eps_a, "delta": args.delta,
        "seed": args.seed, "num_walks": args.num_walks,
        "query_seeded": True if args.query_seeded else None,
    }
    configs = {}
    for name in methods:
        keys = get_entry(name).config_keys
        configs[name] = {
            key: value for key, value in shared.items()
            if key in keys and value is not None
        }
    return configs


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.api.service import SimRankService
    from repro.parallel.pool import ParallelSimRankService
    from repro.parallel.sharded import ShardedSimRankService
    from repro.server import ServerConfig, SimRankHTTPApp

    persistent = args.snapshot is not None or args.store is not None
    if args.snapshot is not None and args.store is not None:
        raise ConfigurationError("give --snapshot or --store, not both")
    if persistent and (args.graph is not None or args.dataset is not None):
        raise ConfigurationError(
            "--snapshot/--store replace the graph source; drop the graph "
            "path and --dataset"
        )
    graph = None if persistent else _serve_graph(args)
    store = None
    if args.store is not None:
        from repro.storage import PersistentGraphStore

        store = PersistentGraphStore.open(args.store)
    methods = [name.strip() for name in args.methods.split(",") if name.strip()]
    configs = _serve_method_configs(args, methods)
    if args.shards > 0:
        if store is not None:
            raise ConfigurationError(
                "--store serving is unsharded; drop --shards"
            )
        service = ShardedSimRankService(
            graph, methods=tuple(methods), configs=configs,
            shards=args.shards, partition=args.partition,
            workers=max(args.workers, 1), cache_size=args.cache_size,
            snapshot=args.snapshot,
        )
    elif args.workers > 0 or persistent:
        # persistent sources always serve through the parallel service —
        # with workers=0 its in-process sequential oracle stands in for
        # the plain SimRankService
        service = ParallelSimRankService(
            graph, methods=tuple(methods), configs=configs,
            workers=max(args.workers, 1), cache_size=args.cache_size,
            executor="process" if args.workers > 0 else "sequential",
            snapshot=args.snapshot, store=store,
        )
    else:
        service = SimRankService(graph, methods=tuple(methods), configs=configs)
    app = SimRankHTTPApp(service, ServerConfig(
        host=args.host,
        port=args.port,
        coalesce=not args.no_coalesce,
        coalesce_window=args.coalesce_window,
        coalesce_max_batch=args.coalesce_max_batch,
        admission_capacity=args.admission_capacity,
        retry_after=args.retry_after,
        deadline_s=args.deadline,
        scores_limit=args.scores_limit,
    ))

    async def run() -> None:
        await app.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-posix loops
                pass
        sharding = (
            f"shards={args.shards} ({args.partition}), " if args.shards > 0
            else ""
        )
        print(
            f"serving {methods} on http://{args.host}:{app.port} "
            f"({sharding}workers={args.workers}, "
            f"coalesce={not args.no_coalesce}); ctrl-c to stop",
            flush=True,
        )
        try:
            await stop.wait()
        finally:
            await app.aclose()
            print("server closed", flush=True)

    try:
        asyncio.run(run())
    finally:
        if store is not None:
            store.close()
    return 0


def _cmd_loadgen(args) -> int:
    import asyncio

    from repro.server.loadgen import requests_from_trace, run_load
    from repro.workloads import generate_workload

    graph = _serve_graph(args)
    ops = min(args.ops, 30) if args.smoke else args.ops
    rate = min(args.rate, 100.0) if args.smoke else args.rate
    trace = generate_workload(
        graph, num_ops=ops, read_fraction=1.0, zipf_s=args.zipf, seed=args.seed,
    )
    requests = requests_from_trace(
        trace, kind=args.kind, k=args.k, limit=args.limit,
        method=args.target_method,
    )
    report = asyncio.run(run_load(
        args.host, args.port, requests, rate, timeout=args.timeout,
    ))
    print(format_table(
        [report.as_row()],
        title=(f"loadgen: {len(requests)} {args.kind} requests at "
               f"{rate:g}/s against {args.host}:{args.port} "
               f"(trace {trace.signature()[:12]})"),
    ))
    if args.json:
        path = write_json_report(args.json, report.to_dict())
        print(f"wrote JSON report to {path}")
    return 0 if report.errors == 0 else 1


def _cmd_ingest(args) -> int:
    from repro.storage import ingest_edge_list

    stats = ingest_edge_list(
        args.graph, args.out,
        chunk_edges=args.chunk_edges,
        relabel=not args.no_relabel,
        deduplicate=not args.keep_duplicates,
    )
    row = {
        "nodes": stats.nodes,
        "edges": stats.edges,
        "lines": stats.lines,
        "duplicates": stats.duplicates,
        "self_loops": stats.self_loops,
        "spill_mb": stats.spill_bytes / 1e6,
        "digest": stats.digest[:16],
    }
    print(format_table([row], title=f"ingest: {args.graph} -> {stats.path}"))
    return 0


def _cmd_recover(args) -> int:
    from repro.storage import recover

    with recover(args.store, verify=not args.no_verify) as state:
        row = {
            "generation": state.generation,
            "nodes": state.snapshot.header.num_nodes,
            "edges": state.snapshot.header.num_edges,
            "wal_tail": len(state.tail),
            "torn_bytes": state.torn_bytes,
            "digest": state.digest(),
        }
    print(format_table([row], title=f"recover: {args.store}"))
    return 0


def _cmd_stats(args) -> int:
    graph = read_edge_list(args.graph)
    stats = compute_stats(graph)
    print(format_table([stats.as_row()], title=f"stats: {args.graph}"))
    return 0


def _cmd_dataset(args) -> int:
    graph = load_dataset(args.name, scale=args.scale)
    write_edge_list(graph, args.out, header=f"stand-in dataset {args.name} ({args.scale})")
    print(f"wrote {graph.num_nodes} nodes / {graph.num_edges} edges to {args.out}")
    return 0


def _cmd_analyze(args) -> int:
    from pathlib import Path

    from repro.analysis.baseline import Baseline
    from repro.analysis.report import render_json, render_text
    from repro.analysis.runner import analyze, default_baseline_path, default_target

    root = Path.cwd()
    paths = [Path(p) for p in args.paths] if args.paths else [default_target()]
    if args.no_baseline:
        baseline = None
    elif args.baseline is not None:
        baseline = Baseline.load(Path(args.baseline))
    else:
        discovered = default_baseline_path(root)
        baseline = Baseline.load(discovered) if discovered.exists() else None
    report = analyze(paths, root=root, baseline=baseline)
    if args.json:
        print(render_json(report, strict=args.strict))
    else:
        print(render_text(report, strict=args.strict))
    return 0 if report.is_clean(strict=args.strict) else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ProbeSim reproduction: SimRank queries on edge-list graphs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    single = sub.add_parser("single-source", help="approximate single-source query")
    _add_query_options(single)
    single.add_argument("--limit", type=int, default=10,
                        help="how many of the best-scoring nodes to print")
    single.set_defaults(func=_cmd_single_source)

    topk = sub.add_parser("topk", help="approximate top-k query")
    _add_query_options(topk)
    topk.add_argument("--k", type=int, default=10)
    topk.set_defaults(func=_cmd_topk)

    methods = sub.add_parser("methods", help="list registered methods + capabilities")
    methods.add_argument("--markdown", action="store_true",
                         help="emit the table as GitHub markdown (README format)")
    methods.add_argument("--json", action="store_true",
                         help="emit the registry as JSON (raw capability "
                              "flags, config keys, and the runtime "
                              "native_backend selection)")
    methods.set_defaults(func=_cmd_methods)

    workload = sub.add_parser(
        "workload",
        help="replay a mixed query/update workload and report latency/QPS",
    )
    workload.add_argument("graph", nargs="?", default=None,
                          help="edge-list file (SNAP format, .gz ok); or use "
                               "--snapshot")
    workload.add_argument("--snapshot", default=None,
                          help="replay against an mmap-attached persistent "
                               "snapshot (`repro ingest` output) instead of "
                               "loading a graph file; read-only, so the "
                               "trace must be update-free "
                               "(--read-fraction 1) and the executor "
                               "process or sequential")
    workload.add_argument("--methods", default="probesim-batched",
                          help="comma-separated registry names to compare")
    workload.add_argument("--ops", type=int, default=400,
                          help="total operations (queries + updates) in the trace")
    workload.add_argument("--read-fraction", type=float, default=0.9,
                          dest="read_fraction",
                          help="op-level probability an operation is a query")
    workload.add_argument("--zipf", type=float, default=1.0,
                          help="query-key Zipf skew exponent (0 = uniform)")
    workload.add_argument("--insert-fraction", type=float, default=0.5,
                          dest="insert_fraction",
                          help="probability an edge update is an insertion")
    workload.add_argument("--query-batch", type=int, default=8, dest="query_batch",
                          help="max query arrival-batch size")
    workload.add_argument("--update-batch", type=int, default=4, dest="update_batch",
                          help="max update arrival-batch size")
    workload.add_argument("--workers", type=int, default=1,
                          help="query-side pool width (one replica each; "
                               "per shard with --shards)")
    workload.add_argument("--executor", default="thread",
                          choices=("thread", "process", "sequential"),
                          help="replica pool: GIL-bound threads, worker "
                               "processes over a shared-memory graph, or the "
                               "process service's in-process oracle")
    workload.add_argument("--shards", type=int, default=None,
                          help="replay on the sharded router with this many "
                               "shards (process/sequential executor only)")
    workload.add_argument("--partition", default="hash",
                          choices=("hash", "degree"),
                          help="node-to-shard assignment strategy (with "
                               "--shards)")
    workload.add_argument("--maintenance", default="auto",
                          choices=("auto", "delta", "rebuild"),
                          help="process-executor update path: in-place delta "
                               "propagation (O(delta) per burst, needs an "
                               "incremental-capable method), full epoch "
                               "rebuild (O(m)), or auto (delta when the "
                               "method supports it)")
    workload.add_argument("--cache-size", type=int, default=0, dest="cache_size",
                          help="update-aware single-source result cache "
                               "capacity (0 disables)")
    workload.add_argument("--sync-every", type=int, default=1, dest="sync_every",
                          help="sync bulk estimators every N update batches")
    workload.add_argument("--seed", type=int, default=None,
                          help="trace + estimator seed (fixed seed => "
                               "bit-reproducible results)")
    workload.add_argument("--json", default=None,
                          help="also write the full JSON report to this path")
    workload.add_argument("--c", type=float, default=None, help="decay factor")
    workload.add_argument("--eps-a", type=float, default=None, dest="eps_a")
    workload.add_argument("--delta", type=float, default=None)
    workload.add_argument("--num-walks", type=int, default=None, dest="num_walks")
    workload.add_argument("--depth", type=int, default=None)
    workload.add_argument("--rg", type=int, default=None, help="TSF one-way graphs")
    workload.add_argument("--rq", type=int, default=None, help="TSF reuse count")
    workload.add_argument("--theta", type=float, default=None, help="SLING threshold")
    workload.set_defaults(func=_cmd_workload)

    def _add_graph_source(p: argparse.ArgumentParser) -> None:
        p.add_argument("graph", nargs="?", default=None,
                       help="edge-list file (SNAP format, .gz ok); or use --dataset")
        p.add_argument("--dataset", default=None, choices=sorted(DATASETS),
                       help="serve a generated stand-in dataset instead of a file")
        p.add_argument("--scale", default="tiny", choices=("tiny", "small", "paper"),
                       help="stand-in dataset scale (with --dataset)")

    serve = sub.add_parser(
        "serve",
        help="serve SimRank queries over HTTP (coalescing + admission control)",
    )
    _add_graph_source(serve)
    serve.add_argument("--snapshot", default=None,
                       help="serve read-only from a persistent snapshot: a "
                            "`repro ingest` .csr file, or (with --shards) a "
                            "write_shard_snapshots directory; workers mmap "
                            "the file instead of rebuilding the graph")
    serve.add_argument("--store", default=None,
                       help="serve durably from a persistent store "
                            "directory: recovers snapshot + WAL tail on "
                            "start, write-ahead-logs every accepted update "
                            "burst, checkpoints on compaction")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port (0 = OS-assigned)")
    serve.add_argument("--methods", default="probesim-batched",
                       help="comma-separated registry names to mount")
    serve.add_argument("--workers", type=int, default=0,
                       help="worker processes (0 = in-process sequential "
                            "service; per shard with --shards)")
    serve.add_argument("--shards", type=int, default=0,
                       help="serve through the sharded router with this many "
                            "per-shard worker groups (0 = unsharded)")
    serve.add_argument("--partition", default="hash",
                       choices=("hash", "degree"),
                       help="node-to-shard assignment strategy (with --shards)")
    serve.add_argument("--cache-size", type=int, default=0, dest="cache_size",
                       help="update-aware result cache capacity "
                            "(workers > 0 only; per shard with --shards; "
                            "0 disables)")
    serve.add_argument("--no-coalesce", action="store_true", dest="no_coalesce",
                       help="dispatch each request individually (micro-batching off)")
    serve.add_argument("--coalesce-window", type=float, default=0.002,
                       dest="coalesce_window",
                       help="micro-batch collection window in seconds")
    serve.add_argument("--coalesce-max-batch", type=int, default=64,
                       dest="coalesce_max_batch",
                       help="distinct queries per micro-batch before early dispatch")
    serve.add_argument("--admission-capacity", type=int, default=None,
                       dest="admission_capacity",
                       help="per-lane in-flight bound before 503 shedding")
    serve.add_argument("--retry-after", type=float, default=1.0, dest="retry_after",
                       help="Retry-After seconds advertised on 503")
    serve.add_argument("--deadline", type=float, default=30.0,
                       help="per-request deadline seconds (504 on expiry)")
    serve.add_argument("--scores-limit", type=int, default=10, dest="scores_limit",
                       help="score pairs per single-source response body")
    serve.add_argument("--c", type=float, default=None, help="decay factor")
    serve.add_argument("--eps-a", type=float, default=None, dest="eps_a")
    serve.add_argument("--delta", type=float, default=None)
    serve.add_argument("--seed", type=int, default=None)
    serve.add_argument("--num-walks", type=int, default=None, dest="num_walks")
    serve.add_argument("--query-seeded", action="store_true", dest="query_seeded",
                       help="derive one RNG stream per (seed, query) so "
                            "coalesced batches are bit-identical to "
                            "sequential per-query answers (needs --seed)")
    serve.set_defaults(func=_cmd_serve)

    loadgen = sub.add_parser(
        "loadgen",
        help="open-loop load generation against a running `repro serve`",
    )
    _add_graph_source(loadgen)
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=8080)
    loadgen.add_argument("--rate", type=float, default=100.0,
                         help="offered arrival rate, requests/second")
    loadgen.add_argument("--ops", type=int, default=200,
                         help="requests in the replayed trace")
    loadgen.add_argument("--zipf", type=float, default=1.0,
                         help="query-key Zipf skew exponent (0 = uniform)")
    loadgen.add_argument("--seed", type=int, default=None, help="trace seed")
    loadgen.add_argument("--kind", default="single_source",
                         choices=("single_source", "topk"))
    loadgen.add_argument("--k", type=int, default=None, help="top-k size (topk kind)")
    loadgen.add_argument("--limit", type=int, default=None,
                         help="score pairs per single-source response")
    loadgen.add_argument("--method", default=None, dest="target_method",
                         help="served method name to request (default: "
                              "the server's default)")
    loadgen.add_argument("--timeout", type=float, default=30.0,
                         help="per-request socket budget in seconds")
    loadgen.add_argument("--smoke", action="store_true",
                         help="tiny CI run: caps ops at 30 and rate at 100/s")
    loadgen.add_argument("--json", default=None,
                         help="also write the JSON report to this path")
    loadgen.set_defaults(func=_cmd_loadgen)

    ingest = sub.add_parser(
        "ingest",
        help="stream an edge list into a persistent CSR snapshot (out of core)",
    )
    ingest.add_argument("graph", help="edge-list file (SNAP format, .gz ok)")
    ingest.add_argument("--out", required=True,
                        help="output snapshot path (conventionally .csr)")
    ingest.add_argument("--chunk-edges", type=int, dest="chunk_edges",
                        default=DEFAULT_CHUNK_EDGES,
                        help="spill-buffer size in edges — the memory bound "
                             "knob (any positive value gives identical output)")
    ingest.add_argument("--no-relabel", action="store_true", dest="no_relabel",
                        help="node ids are already dense 0..n-1; use verbatim")
    ingest.add_argument("--keep-duplicates", action="store_true",
                        dest="keep_duplicates",
                        help="fail on duplicate edges instead of dropping them")
    ingest.set_defaults(func=_cmd_ingest)

    recover = sub.add_parser(
        "recover",
        help="inspect a store directory: newest valid generation + WAL tail",
    )
    recover.add_argument("store", help="persistent store directory")
    recover.add_argument("--no-verify", action="store_true", dest="no_verify",
                         help="skip the snapshot payload digest check")
    recover.set_defaults(func=_cmd_recover)

    stats = sub.add_parser("stats", help="print graph statistics")
    stats.add_argument("graph", help="edge-list file")
    stats.set_defaults(func=_cmd_stats)

    dataset = sub.add_parser("dataset", help="generate a stand-in dataset")
    dataset.add_argument("--name", required=True, choices=sorted(DATASETS))
    dataset.add_argument("--scale", default="tiny", choices=("tiny", "small", "paper"))
    dataset.add_argument("--out", required=True, help="output edge-list path")
    dataset.set_defaults(func=_cmd_dataset)

    analyze = sub.add_parser(
        "analyze",
        help="run the invariant analyzers (determinism, lock discipline, "
             "resource lifecycle, API contract, no-bare-thread)",
        description="Static invariant analysis over the source tree. "
                    "Exit codes: 0 clean (modulo baseline), 1 findings "
                    "(or stale baseline entries under --strict), 2 bad "
                    "usage/configuration.",
    )
    analyze.add_argument(
        "paths", nargs="*",
        help="files or directories to scan (default: the installed repro package)",
    )
    analyze.add_argument("--json", action="store_true",
                         help="machine-readable report on stdout")
    analyze.add_argument("--baseline", default=None,
                         help="baseline suppression file "
                              "(default: ./.analysis-baseline.json when present)")
    analyze.add_argument("--no-baseline", action="store_true", dest="no_baseline",
                         help="ignore any baseline file: report every finding")
    analyze.add_argument("--strict", action="store_true",
                         help="also fail on stale baseline entries that no "
                              "longer match any finding")
    analyze.set_defaults(func=_cmd_analyze)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
