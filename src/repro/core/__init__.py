"""The paper's primary contribution: the ProbeSim algorithm.

Public surface:

:class:`~repro.core.engine.ProbeSim`
    single-source and top-k SimRank queries (Algorithms 1 and 3 with all of
    §4's optimizations).
:class:`~repro.core.config.ProbeSimConfig`
    parameters and the Theorem 2 error-budget solver.
:class:`~repro.core.results.SimRankResult` / :class:`~repro.core.results.TopKResult`
    query result containers.
:class:`~repro.core.walk_trie.WalkTrie` / :func:`~repro.core.batch_engine.probe_trie_forest`
    the batched trie-sharing execution engine (see below).

Execution engines — the trie-sharing idea
-----------------------------------------

ProbeSim's per-query cost is dominated by probing the sampled √c-walks.  The
**loop engine** (``engine="loop"``) follows the paper literally: every
distinct walk prefix in the reachability tree is probed by its own frontier
propagation, so a batch of ``R`` walks pays ``O(sum_t depth_t)``
interpreter-driven propagation steps.

The **batched engine** (``engine="batched"``) exploits two algebraic facts:

1. all prefixes ending at the same trie level have the same number of
   propagation steps left, and
2. PROBE is linear in its start vector, while the "avoid" projection at each
   step depends only on the *parent* trie node — which siblings share.

So instead of one probe per prefix it seeds every distinct prefix with its
walk multiplicity, advances **all columns of a trie level with one sparse
matmul**, zeroes each column at its parent's graph node, and merges sibling
columns into their parent before the next step.  The whole batch costs one
C-level kernel per trie level (and a multi-query batch shares the same
sweep as a forest) instead of ``O(R x levels)`` Python probes — typically a
several-fold single-query speedup and more under batching; see
``benchmarks/bench_batched_engine.py``.

When to prefer which engine:

- ``batched`` (default for ``strategy="batch"`` via ``engine="auto"``):
  throughput — large graphs, many walks, multi-query service batches.
- ``loop``: the cross-validation oracle (it is the transliteration of
  Algorithms 1-3), the ``python`` probe backend on mutable graphs, and the
  ``randomized``/``hybrid`` strategies, whose probes draw RNG per path.

Both engines sample walks through the same generator in the same order, so
a fixed seed gives identical walk sets, and results agree node-for-node to
float round-off (bit-for-bit when every intermediate is exactly
representable — the golden-equivalence suite in ``tests/core`` pins both).
"""

from repro.core.batch_engine import probe_trie_forest, probe_trie_shared
from repro.core.config import ErrorBudget, ProbeSimConfig
from repro.core.engine import ProbeSim
from repro.core.probe import probe_deterministic
from repro.core.randomized_probe import probe_randomized
from repro.core.results import SimRankResult, TopKResult
from repro.core.tree import ReachabilityTree
from repro.core.walk_trie import WalkTrie
from repro.core.walks import sample_sqrt_c_walk, sample_walk_arrays, truncation_length

__all__ = [
    "ErrorBudget",
    "ProbeSim",
    "ProbeSimConfig",
    "ReachabilityTree",
    "SimRankResult",
    "TopKResult",
    "WalkTrie",
    "probe_deterministic",
    "probe_randomized",
    "probe_trie_forest",
    "probe_trie_shared",
    "sample_sqrt_c_walk",
    "sample_walk_arrays",
    "truncation_length",
]
