"""The paper's primary contribution: the ProbeSim algorithm.

Public surface:

:class:`~repro.core.engine.ProbeSim`
    single-source and top-k SimRank queries (Algorithms 1 and 3 with all of
    §4's optimizations).
:class:`~repro.core.config.ProbeSimConfig`
    parameters and the Theorem 2 error-budget solver.
:class:`~repro.core.results.SimRankResult` / :class:`~repro.core.results.TopKResult`
    query result containers.
"""

from repro.core.config import ErrorBudget, ProbeSimConfig
from repro.core.engine import ProbeSim
from repro.core.probe import probe_deterministic
from repro.core.randomized_probe import probe_randomized
from repro.core.results import SimRankResult, TopKResult
from repro.core.tree import ReachabilityTree
from repro.core.walks import sample_sqrt_c_walk, truncation_length

__all__ = [
    "ErrorBudget",
    "ProbeSim",
    "ProbeSimConfig",
    "ReachabilityTree",
    "SimRankResult",
    "TopKResult",
    "probe_deterministic",
    "probe_randomized",
    "sample_sqrt_c_walk",
    "truncation_length",
]
