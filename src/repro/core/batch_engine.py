"""Batched trie-sharing PROBE execution (the vectorized ProbeSim engine).

The loop engine answers one query by probing every distinct walk prefix
independently: for a trie node at depth ``d`` it runs ``d - 1`` frontier
propagations, so a batch of ``R`` walks costs ``O(sum_t (d_t - 1))``
Python-level propagation calls.  This module replaces that inner loop with
one *level-synchronous sweep over the prefix trie*:

1.  every distinct prefix starts a probe as a score column seeded with its
    multiplicity (``weights[t]`` at its endpoint node);
2.  levels are processed deepest-first; sibling columns merge into their
    parent's column, then the whole merged level advances with a single
    sparse matmul (``sqrt_c * B`` applied to every column at once; scipy
    accumulates each output column independently and in the same order as
    a single matvec, so batching columns never changes a column's bits);
3.  after each step a column is zeroed at its own trie node — exactly
    Algorithm 2's first-meeting "avoid" projection, because a probe walking
    back up its own prefix must dodge the prefix node one level up, and all
    siblings share that node (their parent's).  Merging before propagating
    is exact: the matmul and the zeroing are both linear, and merged
    columns share their entire remaining avoid sequence.

The whole batch therefore costs one sparse matmul per trie level transition
(``O(levels)`` C-level kernels over at most ``m x K_level`` work) instead of
``O(R x levels)`` interpreter-driven probes, and a *forest* of tries — one
per query of a service batch — shares the same sweep: columns of different
queries ride the same matmuls without ever mixing.

Exactness: merging changes only the association order of floating-point
sums, never the set of real-valued terms, so results match the loop engine
node-for-node to float round-off (and bit-for-bit whenever every
intermediate value is exactly representable — see the golden-equivalence
suite).  Pruning rule 2 is *not* applied by default: it exists to save
per-probe work, the dense level sweep has no per-entry work to save, and
skipping it is strictly more accurate at identical cost (so Theorem 2's
budget holds with the pruning term at zero; rule 1 truncation still caps
walk length).  ``eps_p`` remains available on the kernel for
cross-validation — applied to the merged multiplicity-weighted columns it
prunes no entry the loop engine would have kept, keeping the engines'
divergence one-sided and inside the rule 2 budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.walk_trie import WalkTrie
from repro.graph.csr import CSRGraph

__all__ = ["probe_trie_forest", "probe_trie_shared"]


@dataclass(frozen=True)
class _LevelPlan:
    """Concatenated per-depth probe columns across every trie of the forest."""

    nodes: np.ndarray  # int64 (k,) endpoint graph node per column
    weights: np.ndarray  # float64 (k,) walk multiplicity per column
    parent_cols: np.ndarray  # int64 (k,) destination column one level up (sorted)


def _build_plans(tries: Sequence[WalkTrie], max_depth: int) -> list[_LevelPlan]:
    """Flatten the forest into one column plan per depth (index 0 = depth 2)."""
    plans: list[_LevelPlan] = []
    offsets = [0] * len(tries)  # column offset of each trie at depth d - 1
    for depth in range(2, max_depth + 1):
        nodes, weights, parent_cols = [], [], []
        next_offsets = list(offsets)
        total = 0
        for ti, trie in enumerate(tries):
            if trie.max_depth < depth:
                continue
            level = trie.levels[depth - 2]
            nodes.append(level.nodes)
            weights.append(level.weights)
            if depth == 2:
                # parents are the per-trie roots: route into result column ti
                parent_cols.append(np.full(len(level), ti, dtype=np.int64))
            else:
                parent_cols.append(offsets[ti] + level.parents)
            next_offsets[ti] = total
            total += len(level)
        plans.append(
            _LevelPlan(
                nodes=np.concatenate(nodes),
                weights=np.concatenate(weights).astype(np.float64),
                parent_cols=np.concatenate(parent_cols),
            )
        )
        offsets = next_offsets
    return plans


def probe_trie_forest(
    graph: CSRGraph,
    tries: Sequence[WalkTrie],
    sqrt_c: float,
    eps_p: float = 0.0,
) -> np.ndarray:
    """Probe every distinct prefix of every trie in one level-synchronous sweep.

    Returns an ``(n, len(tries))`` float64 array; column ``q`` holds the
    multiplicity-weighted sum of deterministic PROBE scores over all of trie
    ``q``'s prefixes — the unnormalised Algorithm 3 accumulator (callers
    divide by the walk count).  ``eps_p`` applies Pruning rule 2 to the
    merged columns before every transition.
    """
    n = graph.num_nodes
    max_depth = max((trie.max_depth for trie in tries), default=1)
    if max_depth < 2:
        return np.zeros((n, len(tries)), dtype=np.float64)
    plans = _build_plans(tries, max_depth)
    # prescale once per sweep: saves one full dense pass per level
    operator = graph.backward_operator * sqrt_c
    roots = np.array([trie.root for trie in tries], dtype=np.int64)

    scores: np.ndarray | None = None
    for depth in range(max_depth, 1, -1):
        plan = plans[depth - 2]
        k = len(plan.nodes)
        if scores is None:
            scores = np.zeros((n, k), dtype=np.float64)
        # launch this level's probes: multiplicity mass at each prefix endpoint
        scores[plan.nodes, np.arange(k)] += plan.weights
        if eps_p > 0.0:
            # Pruning rule 2 on the merged columns: entries that cannot beat
            # eps_p even after gaining the full remaining sqrt(c) decay are
            # dropped.  The engine passes eps_p = 0 (pruning exists to save
            # per-probe work, and the dense level sweep has none to save, so
            # skipping it is strictly more accurate at identical cost); the
            # knob is kept for cross-validation against per-probe pruning.
            scores[scores * sqrt_c ** (depth - 1) <= eps_p] = 0.0
        # merge sibling columns into their parent BEFORE propagating: every
        # sibling shares its avoid node (the parent's graph node), and both
        # the matmul and the zeroing are linear, so merging first is exact —
        # and the matmul then runs on the narrower merged matrix.  Siblings
        # are contiguous and most parents have exactly one child, so the
        # first child of every parent lands with one gather-assign and only
        # the few remaining siblings pay a per-column add.
        if depth == 2:
            k_next, next_nodes = len(tries), roots
        else:
            next_plan = plans[depth - 3]
            k_next, next_nodes = len(next_plan.nodes), next_plan.nodes
        merged = np.empty((n, k_next), dtype=np.float64)
        first_child = np.r_[True, plan.parent_cols[1:] != plan.parent_cols[:-1]]
        parents_hit = plan.parent_cols[first_child]
        merged[:, parents_hit] = scores[:, first_child]
        if len(parents_hit) < k_next:  # parents whose walks all end here
            childless = np.ones(k_next, dtype=bool)
            childless[parents_hit] = False
            merged[:, childless] = 0.0
        for col in np.flatnonzero(~first_child):
            merged[:, plan.parent_cols[col]] += scores[:, col]
        scores = operator @ merged
        # the avoid projection: mass arriving at a prefix's own endpoint met
        # the query walk one step too early — zero each column at its node
        scores[next_nodes, np.arange(k_next)] = 0.0
    return scores


def probe_trie_shared(
    graph: CSRGraph,
    trie: WalkTrie,
    sqrt_c: float,
    eps_p: float = 0.0,
) -> np.ndarray:
    """Single-trie convenience wrapper: the ``(n,)`` accumulator of one query."""
    return probe_trie_forest(graph, [trie], sqrt_c, eps_p)[:, 0]
