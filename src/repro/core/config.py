"""ProbeSim configuration and the Theorem 2 error budget.

Theorem 2 of the paper ties the user-facing absolute error guarantee ``eps_a``
to three internal knobs:

- ``eps``   — the Monte Carlo *sampling* error (drives the number of √c-walks
  ``nr = ceil(3 c / eps^2 * ln(n / delta))``);
- ``eps_t`` — the walk *truncation* parameter (Pruning rule 1: walks are cut
  at ``l_t = ceil(log eps_t / log sqrt(c))`` steps, contributing at most
  ``eps_t / 2`` error after the one-sided compensation);
- ``eps_p`` — the probe *score pruning* parameter (Pruning rule 2,
  contributing at most ``(1 + eps) / (1 - sqrt(c)) * eps_p``).

The guarantee holds whenever::

    eps + (1 + eps) / (1 - sqrt(c)) * eps_p + eps_t / 2  <=  eps_a

:class:`ErrorBudget` solves this split from user-chosen fractions and
verifies the inequality; :class:`ProbeSimConfig` bundles the budget with the
execution strategy knobs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import BudgetError, ConfigurationError
from repro.utils.validation import check_positive_int, check_probability

#: strategies implemented by the engine (see repro.core.engine).
STRATEGIES = ("basic", "batch", "randomized", "hybrid")

#: deterministic-probe backends.
BACKENDS = ("vectorized", "python")

#: probe-execution engines (see repro.core.batch_engine for "batched" and
#: repro.core.native for "native").
ENGINES = ("auto", "loop", "batched", "native")


@dataclass(frozen=True)
class ErrorBudget:
    """Resolved (eps, eps_t, eps_p) split for a target ``eps_a`` (Theorem 2)."""

    eps_a: float
    eps: float
    eps_t: float
    eps_p: float
    c: float

    def __post_init__(self) -> None:
        slack = self.slack
        if slack < -1e-12:
            raise BudgetError(
                f"error budget violates Theorem 2 by {-slack:.3g}: "
                f"eps={self.eps}, eps_t={self.eps_t}, eps_p={self.eps_p}, "
                f"eps_a={self.eps_a}"
            )

    @property
    def sqrt_c(self) -> float:
        return math.sqrt(self.c)

    @property
    def consumed(self) -> float:
        """Left-hand side of the Theorem 2 inequality."""
        return (
            self.eps
            + (1.0 + self.eps) / (1.0 - self.sqrt_c) * self.eps_p
            + self.eps_t / 2.0
        )

    @property
    def slack(self) -> float:
        """Unused part of the budget (non-negative for a valid budget)."""
        return self.eps_a - self.consumed

    @classmethod
    def split(
        cls,
        eps_a: float,
        c: float,
        sampling_fraction: float = 0.7,
        truncation_fraction: float = 0.2,
        pruning_fraction: float = 0.1,
    ) -> "ErrorBudget":
        """Allocate ``eps_a`` across the three error sources by fraction.

        ``eps = f_s * eps_a``; ``eps_t = 2 * f_t * eps_a`` (so the truncation
        term ``eps_t / 2`` consumes ``f_t * eps_a``); ``eps_p`` is back-solved
        from the pruning term.  Fractions must sum to at most 1.
        """
        check_probability("eps_a", eps_a)
        check_probability("c", c)
        for name, frac in (
            ("sampling_fraction", sampling_fraction),
            ("truncation_fraction", truncation_fraction),
            ("pruning_fraction", pruning_fraction),
        ):
            if not 0.0 < frac < 1.0:
                raise BudgetError(f"{name} must lie in (0, 1), got {frac!r}")
        total = sampling_fraction + truncation_fraction + pruning_fraction
        if total > 1.0 + 1e-12:
            raise BudgetError(
                f"budget fractions must sum to <= 1, got {total:.6f} "
                f"({sampling_fraction} + {truncation_fraction} + {pruning_fraction})"
            )
        sqrt_c = math.sqrt(c)
        eps = sampling_fraction * eps_a
        eps_t = 2.0 * truncation_fraction * eps_a
        eps_p = pruning_fraction * eps_a * (1.0 - sqrt_c) / (1.0 + eps)
        return cls(eps_a=eps_a, eps=eps, eps_t=eps_t, eps_p=eps_p, c=c)


@dataclass(frozen=True)
class ProbeSimConfig:
    """All knobs of the ProbeSim engine.

    Parameters
    ----------
    c:
        SimRank decay factor (paper uses 0.6 in all experiments).
    eps_a:
        Absolute error guarantee of Definitions 1-2.
    delta:
        Failure probability of the guarantee.
    strategy:
        ``"basic"``    — Algorithm 1, one probe per walk prefix;
        ``"batch"``    — Algorithm 3, probes deduplicated via the
        reverse-reachability tree;
        ``"randomized"`` — Algorithm 1 with the randomized PROBE (Alg. 4);
        ``"hybrid"``   — §4.4, batch + per-path deterministic/randomized switch.
    backend:
        Deterministic probe implementation: ``"vectorized"`` (numpy/scipy,
        default) or ``"python"`` (dict-based reference; used for
        cross-validation and for running directly on a mutable DiGraph).
    engine:
        How probes are *executed*: ``"loop"`` runs one probe per distinct
        prefix through the per-walk code path (the oracle engine);
        ``"batched"`` runs the whole walk batch as one level-synchronous
        sweep over the prefix trie (:mod:`repro.core.batch_engine`) — one
        sparse matmul per trie level instead of one Python probe per prefix;
        ``"native"`` (:mod:`repro.core.native`) fuses walk sampling, trie
        construction, and a hybrid sparse/dense level sweep into compiled
        kernels (numba when installed, a byte-identical numpy fallback
        otherwise) driven by a counter-based RNG keyed on
        ``(seed, query, walk, step)`` — every query's bits depend only on
        ``(config, graph, seed, query)``, never on batch composition.
        The default ``"auto"`` picks ``"batched"`` for the deterministic
        dedup strategy (``strategy="batch"`` on the vectorized backend,
        whose results it reproduces to float round-off) and ``"loop"``
        everywhere else (``basic`` is the per-walk ablation baseline;
        ``randomized``/``hybrid`` draw RNG inside individual probes).
        ``"auto"`` never resolves to ``"native"``: the native RNG is a
        different (counter-based) stream, so its scores are statistically
        equivalent but not bit-equal to the other engines' — selecting it
        is an explicit choice.  Both ``"batched"`` and ``"native"`` require
        a deterministic strategy and the vectorized backend.
    sampling_fraction / truncation_fraction / pruning_fraction:
        Theorem 2 budget split, see :class:`ErrorBudget`.
    compensate_truncation:
        Add ``eps_t / 2`` to every returned estimate, halving the (one-sided)
        truncation bias as §4.1 suggests.  Off by default because it makes
        every zero-similarity node score positive, which is confusing in
        exploratory use; the guarantee holds either way.
    num_walks:
        Override the theoretical walk count ``nr`` (practical knob used by
        the experiment harness; ``None`` keeps the Theorem 1 value).
    max_walk_length:
        Override the truncation length ``l_t`` (``None`` derives it from
        ``eps_t``).
    hybrid_switch_constant:
        The ``c0`` of §4.4: a path's deterministic probe switches to
        randomized continuation when its frontier out-degree sum exceeds
        ``c0 * weight * n``.
    seed:
        Seed for all randomness (int, Generator, or None).
    query_seeded:
        When True, every single-source computation draws from a fresh RNG
        stream derived from ``(seed, query)`` instead of advancing one
        shared stream across calls.  A query's answer then depends only on
        ``(config, graph, query)`` — not on which batch it arrived in or
        what was asked before it — which is what lets a serving tier
        coalesce concurrent requests into arbitrary batches while staying
        bit-identical to sequential per-query calls
        (:mod:`repro.server.coalesce`).  Requires an explicit integer
        ``seed`` (there is no reproducible derivation from OS entropy or a
        caller-owned generator).  Walks within one query remain draws from
        a single stream, so Theorem 1's variance analysis is untouched;
        only the stream's *origin* changes.
    """

    c: float = 0.6
    eps_a: float = 0.1
    delta: float = 0.01
    strategy: str = "hybrid"
    backend: str = "vectorized"
    engine: str = "auto"
    sampling_fraction: float = 0.7
    truncation_fraction: float = 0.2
    pruning_fraction: float = 0.1
    compensate_truncation: bool = False
    prune: bool = True
    num_walks: int | None = None
    max_walk_length: int | None = None
    hybrid_switch_constant: float = 0.5
    seed: object = None
    query_seeded: bool = False

    def __post_init__(self) -> None:
        check_probability("c", self.c)
        check_probability("eps_a", self.eps_a)
        check_probability("delta", self.delta)
        if self.strategy not in STRATEGIES:
            raise ConfigurationError(
                f"strategy must be one of {STRATEGIES}, got {self.strategy!r}"
            )
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if self.engine in ("batched", "native"):
            if self.strategy in ("randomized", "hybrid"):
                raise ConfigurationError(
                    f"engine={self.engine!r} shares deterministic probes across "
                    f"the prefix trie; strategy {self.strategy!r} draws RNG "
                    "inside individual probes — use engine='loop' (or 'auto')"
                )
            if self.backend != "vectorized":
                raise ConfigurationError(
                    f"engine={self.engine!r} is inherently vectorized; "
                    "backend='python' is only available with engine='loop'"
                )
        if self.num_walks is not None:
            check_positive_int("num_walks", self.num_walks)
        if self.max_walk_length is not None:
            check_positive_int("max_walk_length", self.max_walk_length)
        if self.hybrid_switch_constant <= 0:
            raise ConfigurationError(
                f"hybrid_switch_constant must be positive, got {self.hybrid_switch_constant!r}"
            )
        if self.query_seeded and not isinstance(self.seed, int):
            raise ConfigurationError(
                "query_seeded=True derives one RNG stream per (seed, query) "
                "and therefore needs an explicit integer seed; got "
                f"{self.seed!r}"
            )
        # Resolve the budget eagerly so invalid splits fail at construction.
        object.__setattr__(self, "_budget", self._solve_budget())

    def _solve_budget(self) -> ErrorBudget:
        return ErrorBudget.split(
            self.eps_a,
            self.c,
            sampling_fraction=self.sampling_fraction,
            truncation_fraction=self.truncation_fraction,
            pruning_fraction=self.pruning_fraction,
        )

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #

    @property
    def budget(self) -> ErrorBudget:
        return self._budget  # type: ignore[attr-defined]

    @property
    def sqrt_c(self) -> float:
        return math.sqrt(self.c)

    def resolved_engine(self) -> str:
        """The engine a query will actually run on
        (``"loop"``/``"batched"``/``"native"``).

        ``"auto"`` resolves to the batched trie-sharing engine exactly when
        its results are interchangeable with the loop engine's: the
        deterministic dedup strategy (``"batch"``) on the vectorized backend.
        It never resolves to ``"native"`` — the native engine's counter RNG
        is a different stream, so it must be opted into explicitly.
        """
        if self.engine != "auto":
            return self.engine
        if self.strategy == "batch" and self.backend == "vectorized":
            return "batched"
        return "loop"

    def walk_count(self, num_nodes: int) -> int:
        """``nr = ceil(3 c / eps^2 * ln(n / delta))`` (Alg. 1 line 1), unless
        overridden by ``num_walks``."""
        if self.num_walks is not None:
            return self.num_walks
        check_positive_int("num_nodes", num_nodes)
        eps = self.budget.eps
        return max(1, math.ceil(3.0 * self.c / (eps * eps) * math.log(num_nodes / self.delta)))

    def walk_truncation(self) -> int:
        """``l_t = ceil(log eps_t / log sqrt(c))`` (Pruning rule 1), unless
        overridden by ``max_walk_length``."""
        if self.max_walk_length is not None:
            return self.max_walk_length
        if not self.prune:
            # no truncation: cap only by a generous safety bound so a
            # pathological RNG stream cannot loop forever.
            return 10_000
        return max(1, math.ceil(math.log(self.budget.eps_t) / math.log(self.sqrt_c)))

    def prune_threshold(self) -> float:
        """Pruning rule 2 threshold ``eps_p`` (0.0 when pruning is disabled)."""
        return self.budget.eps_p if self.prune else 0.0

    def with_overrides(self, **overrides) -> "ProbeSimConfig":
        """A copy of this config with ``overrides`` applied."""
        return replace(self, **overrides)
