"""The ProbeSim query engine (Algorithms 1, 3 and the §4 optimizations).

:class:`ProbeSim` answers approximate single-source and top-k SimRank queries
with the guarantee of Theorem 1/2: with probability at least ``1 - delta``,
every estimate is within ``eps_a`` of the true SimRank.  No index is built —
construction only snapshots the graph's adjacency into CSR arrays, which is
why the method supports dynamic graphs: after updates, :meth:`sync` (O(m),
just re-packing adjacency) brings the engine current, versus hours of index
reconstruction for SLING-style methods.

Strategies (``ProbeSimConfig.strategy``):

``basic``
    Algorithm 1: every walk prefix is probed independently.
``batch``
    Algorithm 3: walks are deduplicated in a reverse-reachability tree and
    each distinct prefix is probed once with the deterministic PROBE,
    weighted by its multiplicity.
``randomized``
    Algorithm 1 with the randomized PROBE (Algorithm 4) — O(n) per walk in
    expectation, the engine's best worst-case complexity.
``hybrid``
    §4.4: batch over the tree; each path starts deterministic and switches to
    ``weight`` randomized continuations when its frontier grows past
    ``c0 * weight * n`` out-degree mass.

Orthogonal to the strategy, ``ProbeSimConfig.engine`` selects how probes are
*executed*: ``"loop"`` is the per-prefix code path below, ``"batched"`` runs
the whole walk batch (and whole query batches via :meth:`single_source_many`)
as one level-synchronous sweep over the prefix trie — see
:mod:`repro.core.batch_engine` — and ``"native"`` runs walk sampling, trie
construction, and a hybrid sparse/dense sweep through the compiled kernels
of :mod:`repro.core.native`, with a counter RNG keyed on ``(seed, query)``
that makes every query's bits independent of batch composition.  ``"auto"``
(the default) picks ``batched`` for the deterministic ``batch`` strategy and
``loop`` otherwise; ``native`` is always an explicit opt-in because its RNG
stream differs from the shared ``numpy.random`` one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.estimator import Capabilities, SimRankEstimator
from repro.core.batch_engine import probe_trie_forest
from repro.core.config import ProbeSimConfig
from repro.core.native.rng import stream_base
from repro.core.probe import (
    frontier_edge_budget,
    probe_deterministic,
    propagate_frontier,
    prune_frontier,
)
from repro.core.randomized_probe import (
    probe_randomized,
    probe_randomized_from_membership,
)
from repro.core.results import SimRankResult
from repro.core.tree import ReachabilityTree
from repro.core.walk_trie import WalkTrie
from repro.core.walks import sample_walk_arrays, sample_walk_batch
from repro.errors import QueryError
from repro.graph.csr import CSRGraph, as_csr
from repro.utils.rng import as_generator, derive_stream
from repro.utils.timer import Timer


@dataclass
class QueryStats:
    """Diagnostics from the most recent query (used by tests and ablations)."""

    num_walks: int = 0
    num_probes: int = 0
    num_tree_nodes: int = 0
    num_hybrid_switches: int = 0
    walk_length_total: int = 0
    elapsed: float = 0.0

    @property
    def mean_walk_length(self) -> float:
        return self.walk_length_total / self.num_walks if self.num_walks else 0.0


class ProbeSim(SimRankEstimator):
    """Index-free single-source / top-k SimRank (the paper's contribution).

    >>> from repro.graph import DiGraph
    >>> g = DiGraph.from_edges([(0, 1), (1, 0), (2, 0), (2, 1)])
    >>> engine = ProbeSim(g, eps_a=0.2, seed=7)
    >>> result = engine.single_source(0)
    >>> result.score(0)
    1.0

    The constructor accepts either a mutable :class:`DiGraph` (kept by
    reference; call :meth:`sync` after mutating it) or a frozen
    :class:`CSRGraph`.
    """

    def __init__(self, graph, config: ProbeSimConfig | None = None, **overrides) -> None:
        if config is None:
            config = ProbeSimConfig(**overrides)
        elif overrides:
            config = config.with_overrides(**overrides)
        self.config = config
        self._source_graph = graph
        self._csr = as_csr(graph)
        self._rng = as_generator(config.seed)
        self.last_stats = QueryStats()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> CSRGraph:
        """The CSR snapshot queries run against."""
        return self._csr

    def sync(self) -> None:
        """Re-snapshot the source graph after external mutations.

        This is the *entire* maintenance cost of ProbeSim under dynamic
        graphs (O(m) array packing); there is no index to rebuild.
        """
        self._csr = as_csr(self._source_graph)

    def capabilities(self) -> Capabilities:
        """Approximate, index-free, dynamic-friendly (O(m) sync)."""
        resolved = self.config.resolved_engine()
        return Capabilities(
            method=self._method_label(),
            exact=False,
            index_based=False,
            supports_dynamic=True,
            incremental_updates=False,
            vectorized=resolved in ("batched", "native"),
            parallel_safe=True,
            native=resolved == "native",
        )

    def single_source(self, query: int) -> SimRankResult:
        """Approximate single-source query (Definition 1) from ``query``."""
        self._check_query(query)
        stats = QueryStats()
        timer = Timer()
        with timer:
            estimates = self._finalize(self._run(query, stats), query)
        stats.elapsed = timer.elapsed
        self.last_stats = stats
        return SimRankResult(
            query=query,
            scores=estimates,
            num_walks=stats.num_walks,
            elapsed=timer.elapsed,
            method=self._method_label(),
        )

    def single_source_many(self, queries) -> list[SimRankResult]:
        """Batch single-source queries; the batched engine shares one sweep.

        On the loop engine this is the protocol's query loop.  On the
        batched engine all queries' walks are sampled first (consuming the
        RNG stream in the same order a loop would) and their prefix tries
        are probed as one *forest* in a single level-synchronous sweep —
        every trie level transition of every query shares the same sparse
        matmul.  Results are bit-identical to looping :meth:`single_source`
        because forest columns never mix across queries.
        """
        queries = list(queries)
        if self.config.resolved_engine() != "batched" or len(queries) <= 1:
            return super().single_source_many(queries)
        return self._run_batched_many(queries)

    # topk() is inherited from SimRankEstimator: it sorts the single-source
    # estimates (Definition 2), so batched top-k rides the same hot path.

    # ------------------------------------------------------------------ #
    # strategy dispatch
    # ------------------------------------------------------------------ #

    def _method_label(self) -> str:
        """Result/capability label: strategy, or the explicit execution engine."""
        if self.config.engine == "batched":
            return "probesim-batched"
        if self.config.engine == "native":
            return "probesim-native"
        return f"probesim-{self.config.strategy}"

    def _finalize(self, estimates: np.ndarray, query: int) -> np.ndarray:
        """Pin s(q, q) = 1 and apply the §4.1 truncation compensation."""
        cfg = self.config
        estimates[query] = 1.0
        if cfg.compensate_truncation and cfg.prune:
            # Truncation bias is one-sided (estimates undershoot by up to
            # eps_t); recentring halves its worst case (§4.1).
            estimates += cfg.budget.eps_t / 2.0
            estimates[query] = 1.0
        return estimates

    def _run(self, query: int, stats: QueryStats) -> np.ndarray:
        resolved = self.config.resolved_engine()
        if resolved == "batched":
            return self._run_batched_engine(query, stats)
        if resolved == "native":
            return self._run_native_engine(query, stats)
        strategy = self.config.strategy
        walks = self._sample_walks(query, stats)
        if strategy == "basic":
            return self._run_basic(walks, stats)
        if strategy == "randomized":
            return self._run_randomized(walks, stats)
        if strategy == "batch":
            return self._run_batch(walks, stats, hybrid=False)
        if strategy == "hybrid":
            return self._run_batch(walks, stats, hybrid=True)
        raise QueryError(f"unknown strategy {strategy!r}")  # pragma: no cover

    # ------------------------------------------------------------------ #
    # batched trie-sharing engine (repro.core.batch_engine)
    # ------------------------------------------------------------------ #

    def _begin_query(self, query: int) -> None:
        """Rebase the RNG on a per-``(seed, query)`` stream when configured.

        With ``query_seeded`` every query's randomness starts from a stream
        derived only from ``(config.seed, query)``, so its answer is a pure
        function of ``(config, graph, query)`` — independent of call order
        and of how queries are grouped into batches.  A no-op (one shared
        sequential stream) otherwise.
        """
        if self.config.query_seeded:
            self._rng = derive_stream(self.config.seed, query)

    def _sample_trie(self, query: int, stats: QueryStats) -> WalkTrie:
        """Sample this query's walk batch straight into a prefix trie."""
        self._begin_query(query)
        cfg = self.config
        nodes, lengths = sample_walk_arrays(
            self._csr,
            query,
            cfg.walk_count(self._csr.num_nodes),
            cfg.sqrt_c,
            self._rng,
            max_length=cfg.walk_truncation(),
        )
        trie = WalkTrie.from_walk_arrays(nodes, lengths)
        stats.num_walks += trie.num_walks
        stats.walk_length_total += int(lengths.sum())
        stats.num_tree_nodes += trie.num_tree_nodes
        stats.num_probes += trie.num_tree_nodes  # one shared probe per prefix
        return trie

    def _run_batched_engine(self, query: int, stats: QueryStats) -> np.ndarray:
        # eps_p stays 0: Pruning rule 2 exists to save per-probe work, and
        # the dense level sweep has none to save — skipping it is strictly
        # more accurate at identical cost (rule 1 truncation still applies).
        trie = self._sample_trie(query, stats)
        acc = probe_trie_forest(self._csr, [trie], self.config.sqrt_c)[:, 0]
        acc /= trie.num_walks
        return acc

    # ------------------------------------------------------------------ #
    # native kernel engine (repro.core.native)
    # ------------------------------------------------------------------ #

    def _native_base(self, query: int) -> int:
        """The counter-RNG stream origin for one native query.

        With an integer seed the origin is a pure function of
        ``(seed, query)`` — the bit-reproducibility contract: the same query
        returns the same bytes no matter when it runs, what ran before it,
        or how a serving tier batched it.  Without one there is nothing to
        reproduce, so the origin is drawn from the engine's shared RNG.
        """
        seed = self.config.seed
        if isinstance(seed, int) and not isinstance(seed, bool):
            return stream_base(seed, query)
        return stream_base(int(self._rng.integers(1 << 63)), query)

    def _run_native_engine(self, query: int, stats: QueryStats) -> np.ndarray:
        from repro.core import native

        cfg = self.config
        ctx = native.context_for(self._csr, cfg.sqrt_c)
        scores, trie = native.run_query(
            ctx,
            query,
            cfg.walk_count(self._csr.num_nodes),
            cfg.sqrt_c,
            cfg.walk_truncation(),
            self._native_base(query),
            native.resolve_impl(),
            kernel_trie=native.native_backend() == "numba",
        )
        stats.num_walks = trie.num_walks
        # every walk contributes its root step plus one per surviving level
        stats.walk_length_total = trie.num_walks + sum(trie.level_weight_sums())
        stats.num_tree_nodes = trie.num_tree_nodes
        stats.num_probes = trie.num_tree_nodes
        scores /= trie.num_walks
        return scores

    #: dense cells (n x columns) a single forest sweep may hold in flight;
    #: ~32 MB of float64 — big enough to fuse whole service batches on small
    #: graphs, small enough that wide levels never thrash memory on large ones.
    FOREST_CELL_BUDGET = 4_000_000

    def _forest_chunks(self, tries) -> list[tuple[int, int]]:
        """Split a forest into contiguous chunks bounded by the cell budget.

        Kernel columns never interact across tries, so chunking changes
        nothing but peak memory: results are bit-identical for any split.
        """
        max_columns = max(1, self.FOREST_CELL_BUDGET // max(self._csr.num_nodes, 1))
        chunks: list[tuple[int, int]] = []
        begin, width = 0, 0
        for i, trie in enumerate(tries):
            trie_width = max((len(level) for level in trie.levels), default=1)
            if i > begin and width + trie_width > max_columns:
                chunks.append((begin, i))
                begin, width = i, 0
            width += trie_width
        chunks.append((begin, len(tries)))
        return chunks

    def _run_batched_many(self, queries: list[int]) -> list[SimRankResult]:
        """One forest sweep over every query's trie (the serving hot path)."""
        for query in queries:
            self._check_query(query)
        cfg = self.config
        timer = Timer()
        with timer:
            per_query_stats = [QueryStats() for _ in queries]
            tries = [
                self._sample_trie(query, stats)
                for query, stats in zip(queries, per_query_stats)
            ]
            accumulators = np.empty((self._csr.num_nodes, len(tries)))
            for begin, end in self._forest_chunks(tries):
                accumulators[:, begin:end] = probe_trie_forest(
                    self._csr, tries[begin:end], cfg.sqrt_c
                )
        elapsed_each = timer.elapsed / len(queries)  # amortized batch cost
        results = []
        for column, (query, trie, stats) in enumerate(
            zip(queries, tries, per_query_stats)
        ):
            estimates = accumulators[:, column] / trie.num_walks
            estimates = self._finalize(estimates, query)
            stats.elapsed = elapsed_each
            results.append(
                SimRankResult(
                    query=query,
                    scores=estimates,
                    num_walks=stats.num_walks,
                    elapsed=elapsed_each,
                    method=self._method_label(),
                )
            )
        self.last_stats = per_query_stats[-1]
        return results

    def _sample_walks(self, query: int, stats: QueryStats) -> list[list[int]]:
        self._begin_query(query)
        cfg = self.config
        nr = cfg.walk_count(self._csr.num_nodes)
        max_len = cfg.walk_truncation()
        walks = sample_walk_batch(
            self._csr, query, nr, cfg.sqrt_c, self._rng, max_length=max_len
        )
        stats.num_walks = nr
        stats.walk_length_total = sum(len(w) for w in walks)
        return walks

    def _run_basic(self, walks: list[list[int]], stats: QueryStats) -> np.ndarray:
        cfg = self.config
        n = self._csr.num_nodes
        acc = np.zeros(n, dtype=np.float64)
        eps_p = cfg.prune_threshold()
        for walk in walks:
            for i in range(2, len(walk) + 1):
                acc += probe_deterministic(
                    self._csr, walk[:i], cfg.sqrt_c, eps_p, backend=cfg.backend
                )
                stats.num_probes += 1
        acc /= stats.num_walks
        return acc

    def _run_randomized(self, walks: list[list[int]], stats: QueryStats) -> np.ndarray:
        cfg = self.config
        n = self._csr.num_nodes
        acc = np.zeros(n, dtype=np.float64)
        for walk in walks:
            for i in range(2, len(walk) + 1):
                selected = probe_randomized(self._csr, walk[:i], cfg.sqrt_c, self._rng)
                if len(selected):
                    acc[selected] += 1.0
                stats.num_probes += 1
        acc /= stats.num_walks
        return acc

    def _run_batch(
        self, walks: list[list[int]], stats: QueryStats, hybrid: bool
    ) -> np.ndarray:
        if not walks:
            return np.zeros(self._csr.num_nodes, dtype=np.float64)
        tree = ReachabilityTree.from_walks(walks)
        return self.estimate_from_tree(tree, stats, hybrid=hybrid)

    def estimate_from_tree(
        self, tree: ReachabilityTree, stats: QueryStats | None = None, hybrid: bool | None = None
    ) -> np.ndarray:
        """Algorithm 3's probing loop over an existing reachability tree.

        Exposed separately so walk caches (:mod:`repro.extensions.walk_index`)
        can reuse precomputed trees; estimates are always probed against the
        engine's *current* graph snapshot.
        """
        cfg = self.config
        if stats is None:
            stats = QueryStats(num_walks=tree.num_walks)
        if hybrid is None:
            hybrid = cfg.strategy == "hybrid"
        n = self._csr.num_nodes
        acc = np.zeros(n, dtype=np.float64)
        stats.num_tree_nodes = tree.num_tree_nodes()
        nr = tree.num_walks
        eps_p = cfg.prune_threshold()
        for prefix, weight in tree.iter_prefixes():
            stats.num_probes += 1
            if hybrid:
                contribution = self._probe_path_hybrid(prefix, weight, eps_p, stats)
            else:
                contribution = weight * probe_deterministic(
                    self._csr, prefix, cfg.sqrt_c, eps_p, backend=cfg.backend
                )
            acc += contribution
        acc /= nr
        return acc

    # ------------------------------------------------------------------ #
    # §4.4 hybrid path probing
    # ------------------------------------------------------------------ #

    def _probe_path_hybrid(
        self,
        prefix: list[int],
        weight: int,
        eps_p: float,
        stats: QueryStats,
    ) -> np.ndarray:
        """Probe one tree path; start deterministic, switch to randomized when
        the frontier's out-degree mass exceeds ``c0 * weight * n``.

        Returns the path's weighted score contribution (already multiplied by
        ``weight``; the caller divides by ``nr``).
        """
        cfg = self.config
        graph = self._csr
        n = graph.num_nodes
        i = len(prefix)
        sqrt_c = cfg.sqrt_c
        switch_mass = cfg.hybrid_switch_constant * weight * n
        edge_budget = frontier_edge_budget(graph)

        score = np.zeros(n, dtype=np.float64)
        score[prefix[-1]] = 1.0
        frontier = np.array([prefix[-1]], dtype=np.int64)

        for j in range(i - 1):
            frontier = prune_frontier(score, frontier, sqrt_c ** (i - j - 1), eps_p)
            if len(frontier) == 0:
                return np.zeros(n, dtype=np.float64)
            if int(graph.out_degrees[frontier].sum()) > switch_mass:
                # Deterministic cost from here exceeds c0 * w * n: finish with
                # `weight` independent randomized continuations instead.
                # Membership is Bernoulli-sampled from the deterministic
                # marginals, preserving per-node unbiasedness (Lemma 6's
                # recursion only constrains level marginals).
                stats.num_hybrid_switches += 1
                contribution = np.zeros(n, dtype=np.float64)
                for _ in range(weight):
                    membership = self._rng.random(n) < score
                    selected = probe_randomized_from_membership(
                        graph, prefix, j, membership, sqrt_c, self._rng
                    )
                    if len(selected):
                        contribution[selected] += 1.0
                return contribution
            avoid = prefix[i - j - 2]
            score, frontier = propagate_frontier(
                graph, score, frontier, avoid, sqrt_c, edge_budget
            )
            if len(frontier) == 0:
                break
        return weight * score

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _check_query(self, query: int) -> None:
        if not isinstance(query, (int, np.integer)) or isinstance(query, bool):
            raise QueryError(f"query node must be an int, got {type(query).__name__}")
        if not 0 <= query < self._csr.num_nodes:
            raise QueryError(
                f"query node {query} out of range [0, {self._csr.num_nodes})"
            )

    def __repr__(self) -> str:
        return (
            f"ProbeSim(n={self._csr.num_nodes}, m={self._csr.num_edges}, "
            f"strategy={self.config.strategy!r}, eps_a={self.config.eps_a})"
        )
