"""Native ProbeSim hot path: numba kernels with a pure-numpy fallback.

The backend is selected once at import: ``"numba"`` when numba imports
cleanly (kernels are ``@njit(cache=True)``-compiled, so worker processes
of the parallel/sharded services reuse one on-disk compilation), else
``"numpy"`` — the vectorized fallback in :mod:`.fallback`, which is
byte-identical to the kernels per ``(seed, query)`` (held by the parity
suite).  ``REPRO_NATIVE_BACKEND=numpy`` forces the fallback on a numba
install; forcing ``numba`` without numba silently stays on ``numpy``
(there is nothing to force).

The selected backend is reported through ``Capabilities`` /
``repro methods --json`` as ``native_backend``.
"""

from __future__ import annotations

import os

from repro.core.native.engine import (
    NativeContext,
    build_trie_kernel,
    context_for,
    make_context,
    probe_trie,
    run_query,
)
from repro.core.native.kernels import HAVE_NUMBA
from repro.core.native.rng import stream_base, walk_bases

__all__ = [
    "HAVE_NUMBA",
    "NATIVE_BACKEND",
    "NativeContext",
    "build_trie_kernel",
    "context_for",
    "make_context",
    "native_backend",
    "probe_trie",
    "resolve_impl",
    "run_query",
    "stream_base",
    "walk_bases",
]

_forced = os.environ.get("REPRO_NATIVE_BACKEND", "").strip().lower()
if _forced == "numpy":
    NATIVE_BACKEND = "numpy"
else:
    NATIVE_BACKEND = "numba" if HAVE_NUMBA else "numpy"


def native_backend() -> str:
    """The backend the native engine selected at import: numba or numpy."""
    return NATIVE_BACKEND


def resolve_impl(backend: str | None = None):
    """The kernel namespace for ``backend`` (default: the selected one)."""
    if backend is None:
        backend = NATIVE_BACKEND
    if backend == "numba":
        from repro.core.native import kernels

        return kernels
    from repro.core.native import fallback

    return fallback
