"""Native-engine orchestration: context, trie build, and the hybrid sweep.

The per-level control flow (which levels run sparse, which dense) lives
here, *outside* both backends: the switch is a deterministic integer cost
model over ``(graph, trie)``, so the numba kernels and the numpy fallback
always execute the same step sequence and differ only in how each step is
computed — which the parity suite pins down to byte-identical scores.

Cost model: a sparse level transition costs roughly its matmat flops
(bounded by ``sum(out_degree[row] * row_nnz)``) plus a handful of full
passes over the level's entries; a dense one costs ``m * k_next`` fused
multiply-adds in one compiled ``csr @ dense`` product.  Once column
supports grow past a few percent of ``n`` (shallow levels — ball unions),
dense wins decisively; before that (deep levels — a few hundred touched
nodes across all columns), sparse wins by orders of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.walk_trie import TrieLevel, WalkTrie

#: weights of the sparse-cost proxy (flops, per-entry passes) against the
#: dense cost ``m * k_next``; tuned on the bench_batched_engine preset.
SWITCH_FLOP_WEIGHT = 9
SWITCH_PASS_WEIGHT = 10


@dataclass
class NativeContext:
    """Per-(graph, sqrt_c) state shared by every native query.

    ``op`` is the probe operator ``sqrt_c * B`` (``B[v, x] = 1/|I(v)|``
    for every edge ``x -> v``) materialized once as a CSR whose rows are
    the in-adjacency slices — both backends iterate these exact arrays,
    which is what anchors their float accumulation orders to each other.
    """

    graph: object
    n: int
    m: int
    in_indptr: np.ndarray
    in_indices: np.ndarray
    in_degrees: np.ndarray
    out_indptr: np.ndarray
    out_indices: np.ndarray
    out_degrees: np.ndarray
    target_weights: np.ndarray
    op: sparse.csr_matrix


def make_context(csr, sqrt_c: float) -> NativeContext:
    """Build the native query context for one CSR snapshot."""
    n = csr.num_nodes
    target_weights = sqrt_c * csr.inv_in_degrees
    op = sparse.csr_matrix(
        (
            np.repeat(target_weights, csr.in_degrees),
            csr.in_indices.astype(np.int64),
            csr.in_indptr.astype(np.int64),
        ),
        shape=(n, n),
    )
    return NativeContext(
        graph=csr,
        n=n,
        m=csr.num_edges,
        in_indptr=csr.in_indptr,
        in_indices=csr.in_indices,
        in_degrees=csr.in_degrees,
        out_indptr=csr.out_indptr,
        out_indices=csr.out_indices,
        out_degrees=csr.out_degrees,
        target_weights=target_weights,
        op=op,
    )


def context_for(csr, sqrt_c: float) -> NativeContext:
    """:func:`make_context`, cached on the CSR snapshot (keyed by ``sqrt_c``).

    CSR snapshots are immutable, so a context built once is valid for the
    snapshot's whole lifetime — mirroring how the snapshot caches its
    ``backward_operator``.  Caching here means short-lived engines (one per
    benchmark round, one per service worker epoch) share the operator build.
    """
    cache = getattr(csr, "_native_contexts", None)
    if cache is None:
        cache = {}
        csr._native_contexts = cache
    ctx = cache.get(sqrt_c)
    if ctx is None:
        ctx = cache[sqrt_c] = make_context(csr, sqrt_c)
    return ctx


def build_trie_kernel(nodes: np.ndarray, lengths: np.ndarray) -> WalkTrie:
    """Kernel-backed twin of :meth:`WalkTrie.from_walk_arrays`.

    The canonical trie is integer-valued and per-level sorted, so parity
    only needs the same *spec* — sorted distinct ``(parent, node)`` keys
    with multiplicities — which :func:`kernels.unique_counts` reproduces.
    """
    from repro.core.native import kernels

    count = len(nodes)
    root = int(nodes[0, 0])
    levels: list[TrieLevel] = []
    stride = int(nodes.max()) + 2
    parent_of_walk = np.zeros(count, dtype=np.int64)
    for depth in range(2, int(lengths.max()) + 1):
        alive = lengths >= depth
        if not np.any(alive):
            break
        keys = parent_of_walk[alive] * stride + nodes[alive, depth - 1]
        distinct, inverse, counts = kernels.unique_counts(keys)
        levels.append(
            TrieLevel(
                nodes=distinct % stride,
                parents=distinct // stride,
                weights=counts.astype(np.int64),
            )
        )
        parent_of_walk = np.full(count, -1, dtype=np.int64)
        parent_of_walk[alive] = inverse
    return WalkTrie(root=root, num_walks=count, levels=levels)


def probe_trie(ctx: NativeContext, trie: WalkTrie, impl) -> np.ndarray:
    """Run the hybrid level sweep for one trie; returns unnormalized scores."""
    n = ctx.n
    if trie.max_depth < 2:
        return np.zeros(n, dtype=np.float64)
    levels = trie.levels
    cur = None  # sparse phase state: (keys, data), key = row * k + col
    acc = None  # dense phase state: (n, k) float64
    dense = False
    for depth in range(trie.max_depth, 1, -1):
        level = levels[depth - 2]
        k = len(level)
        parents = level.parents
        if depth == 2:
            k_next = 1
            next_nodes = np.array([trie.root], dtype=np.int64)
        else:
            nxt = levels[depth - 3]
            k_next = len(nxt)
            next_nodes = nxt.nodes
        switching = False
        if not dense and cur is not None:
            flops = int(ctx.out_degrees[cur[0] // k].sum())
            passes = len(cur[0])
            if (
                SWITCH_FLOP_WEIGHT * flops + SWITCH_PASS_WEIGHT * passes
                >= ctx.m * k_next
            ):
                dense = True
                switching = True
        weights = level.weights.astype(np.float64)
        if dense and not switching:
            acc = impl.dense_level(
                acc, level.nodes, weights, parents, ctx.op, next_nodes, k_next
            )
        else:
            # seeds, sorted by flat (row, parent-column) key; trie nodes are
            # unique per (parent, node) so the keys are strictly increasing.
            seed_keys = level.nodes * k_next + parents
            order = np.argsort(seed_keys, kind="stable")
            merged = impl.sparse_merge_seed(
                cur, k, parents, seed_keys[order], weights[order], k_next
            )
            if switching:
                # merge while still sparse (cheap), densify the narrower
                # merged matrix, and only propagate dense from here on.
                acc = impl.sparse_to_dense(merged, n, k_next)
                acc = impl.dense_propagate(acc, ctx.op, next_nodes)
                cur = None
            else:
                cur = impl.sparse_propagate_zero(
                    ctx.out_indptr,
                    ctx.out_indices,
                    ctx.target_weights,
                    merged,
                    k_next,
                    next_nodes,
                )
    if dense:
        return np.ascontiguousarray(acc[:, 0])
    scores = np.zeros(n, dtype=np.float64)
    keys, data = cur
    scores[keys] = data  # k_next == 1 at the last level: key == row
    return scores


def run_query(
    ctx: NativeContext,
    query: int,
    num_walks: int,
    sqrt_c: float,
    max_len: int,
    base: int,
    impl,
    kernel_trie: bool,
) -> tuple[np.ndarray, WalkTrie]:
    """Walks -> trie -> sweep for one query; returns unnormalized scores."""
    from repro.core.native.rng import walk_bases

    bases = walk_bases(base, num_walks)
    nodes, lengths = impl.sample_walks(
        ctx.in_indptr, ctx.in_indices, ctx.in_degrees,
        bases, query, sqrt_c, max_len,
    )
    if kernel_trie:
        trie = build_trie_kernel(nodes, lengths)
    else:
        trie = WalkTrie.from_walk_arrays(nodes, lengths)
    return probe_trie(ctx, trie, impl), trie
