"""Pure numpy/scipy implementation of the native-engine kernels.

This is the backend the native engine runs on when numba is not
installed.  Every function here has a loop twin in
:mod:`repro.core.native.kernels` that produces **byte-identical** output;
the pairing works because each vectorized primitive used below has a
well-defined sequential accumulation order that the loop twin replays:

- ``np.bincount`` with weights adds every input element to its bin in
  input order, exactly like a loop (``np.add.reduceat`` does NOT qualify:
  its runs re-associate via pairwise summation once a run reaches 8
  elements, so it is never used here);
- the sibling merge adds one sibling *round* at a time (first children of
  every parent, then second children, ...), which per output cell is the
  same left-to-right child order as the twins' flat loop;
- ``scipy`` ``csr @ csr`` accumulates each output cell in the order the
  operand rows are stored (a per-row sparse accumulator), and
  ``csr @ dense`` accumulates in row-entry-major order — both identical
  to the twins' double loops;
- sorting (``sort_indices``) happens only *after* a row's sums are final,
  so it permutes entries without re-associating any addition.

The level sweep is a sparse/dense *hybrid*: deep trie levels touch a few
hundred nodes (column supports are tiny — entry-level sparse propagation
wins), while shallow levels are dense ball unions (one compiled
``csr @ dense`` product wins).  The switch is a deterministic integer
cost model evaluated before each level, so both backends always take the
same branch for the same ``(graph, trie)``.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.core.native.rng import draw_keys, uniform_array

__all__ = [
    "sample_walks",
    "sparse_merge_seed",
    "sparse_propagate_zero",
    "sparse_to_dense",
    "dense_propagate",
    "dense_level",
]


def sample_walks(
    in_indptr: np.ndarray,
    in_indices: np.ndarray,
    in_degrees: np.ndarray,
    bases: np.ndarray,
    query: int,
    sqrt_c: float,
    max_len: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample all walks level-synchronously from counter-derived uniforms.

    Because every draw is keyed by ``(walk, step, lane)``, drawing a full
    vector per step (including lanes that already stopped) wastes a few
    mixes but changes no walk — the loop twin draws lazily, one walk at a
    time, and still lands on the same node sequences.
    """
    count = len(bases)
    nodes = np.full((count, max_len), -1, dtype=np.int32)
    nodes[:, 0] = query
    lengths = np.ones(count, dtype=np.int64)
    cur = np.full(count, query, dtype=np.int64)
    alive = np.ones(count, dtype=bool)
    for step in range(max_len - 1):
        u_stop = uniform_array(draw_keys(bases, step, 0))
        alive &= u_stop < sqrt_c
        deg = in_degrees[cur]
        alive &= deg > 0
        if not alive.any():
            break
        u_pick = uniform_array(draw_keys(bases, step, 1))
        idx = (u_pick * deg).astype(np.int64)
        np.minimum(idx, np.maximum(deg, 1) - 1, out=idx)
        # dead lanes still gather (their value is discarded below); clamp the
        # pointer so a dead lane parked at a source node can't index past m.
        ptr = np.minimum(in_indptr[cur] + idx, len(in_indices) - 1)
        nxt = in_indices[ptr].astype(np.int64)
        cur = np.where(alive, nxt, cur)
        nodes[alive, step + 1] = nxt[alive]
        lengths[alive] += 1
    return nodes, lengths


def sparse_merge_seed(
    cur: tuple[np.ndarray, np.ndarray] | None,
    k: int,
    parents: np.ndarray,
    seed_keys: np.ndarray,
    seed_weights: np.ndarray,
    k_next: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge child columns into parents and fold in this level's seeds.

    ``cur`` is the level's scores in entry-keys form ``(keys, data)`` with
    ``key = row * k + col``, keys strictly increasing.  Relabelling each
    column to its parent keeps keys sorted (``parents`` is non-decreasing
    in child order), so sibling entries form adjacent runs that one
    ``bincount`` over run ids collapses — ``bincount`` adds in input
    order, the twins' order (``np.add.reduceat`` would not: it
    re-associates runs of 8+ via pairwise summation).  Seeds — unique,
    sorted ``row * k_next + parent`` keys — are spliced in at the *end* of
    their run, which is the twins' merge order too.
    """
    if cur is None or len(cur[0]) == 0:
        return seed_keys.copy(), seed_weights.copy()
    keys, data = cur
    mapped = (keys // k) * k_next + parents[keys % k]
    pos = np.searchsorted(mapped, seed_keys, side="right")
    mapped = np.insert(mapped, pos, seed_keys)
    data = np.insert(data, pos, seed_weights)
    new_run = np.r_[True, mapped[1:] != mapped[:-1]]
    run_ids = np.cumsum(new_run) - 1
    return mapped[new_run], np.bincount(run_ids, weights=data)


def sparse_propagate_zero(
    out_indptr: np.ndarray,
    out_indices: np.ndarray,
    target_weights: np.ndarray,
    merged: tuple[np.ndarray, np.ndarray],
    k_next: int,
    next_nodes: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """One sparse level transition in entry-keys form, then first-meeting zeros.

    The probe operator is applied by *expansion*: entry ``(r, c, v)``
    contributes ``target_weights[t] * v`` to ``(t, c)`` for every out-edge
    ``r -> t`` (``target_weights[t] = sqrt_c / |I(t)|``).  The expanded
    contributions are grouped by flat key via ``np.unique`` + ``bincount``,
    whose per-cell accumulation order is the expansion order — which the
    loop twin replays with a flat accumulator.  The avoided entry of every
    column — ``(next_nodes[j], j)``, the trie node the column now
    represents — is then zeroed in place, keeping the explicit zero so
    both backends agree on the pattern as well as the values.
    """
    keys, data = merged
    rows = keys // k_next
    cols = keys % k_next
    degrees = (out_indptr[rows + 1] - out_indptr[rows]).astype(np.int64)
    total = int(degrees.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    # expand each entry's out-edge range: starts[e] .. starts[e]+deg[e]
    starts = out_indptr[rows]
    offsets = np.repeat(
        np.cumsum(np.r_[np.int64(0), degrees[:-1]]) - starts, degrees
    )
    targets = out_indices[np.arange(total, dtype=np.int64) - offsets].astype(
        np.int64
    )
    exp_keys = targets * k_next + np.repeat(cols, degrees)
    exp_vals = np.repeat(data, degrees) * target_weights[targets]
    out_keys, inverse = np.unique(exp_keys, return_inverse=True)
    out_data = np.bincount(inverse, weights=exp_vals)
    zero_at = np.searchsorted(
        out_keys, next_nodes * k_next + np.arange(k_next, dtype=np.int64)
    )
    found = zero_at < len(out_keys)
    found[found] = (
        out_keys[zero_at[found]]
        == (next_nodes * k_next + np.arange(k_next, dtype=np.int64))[found]
    )
    out_data[zero_at[found]] = 0.0
    return out_keys, out_data


def sparse_to_dense(
    cur: tuple[np.ndarray, np.ndarray], n: int, k: int
) -> np.ndarray:
    """Densify entry-keys level scores (pure scatter, no sums)."""
    keys, data = cur
    acc = np.zeros((n, k), dtype=np.float64)
    acc[keys // k, keys % k] = data
    return acc


def dense_propagate(
    acc: np.ndarray,
    op: sparse.csr_matrix,
    next_nodes: np.ndarray,
) -> np.ndarray:
    """Propagate an already-merged dense level and apply first-meeting zeros.

    Used on the sparse->dense switch level: merging is cheaper while the
    scores are still sparse, so only the propagation runs dense there.
    """
    out = op @ acc
    out[next_nodes, np.arange(acc.shape[1])] = 0.0
    return out


def dense_level(
    acc: np.ndarray,
    lev_nodes: np.ndarray,
    weights: np.ndarray,
    parents: np.ndarray,
    op: sparse.csr_matrix,
    next_nodes: np.ndarray,
    k_next: int,
) -> np.ndarray:
    """One dense level transition: seed, merge siblings, propagate, zero.

    The sibling merge is one flat ``np.bincount`` scatter-add: cell
    ``(row, j)`` of ``acc`` lands in flat bin ``row * k_next + parents[j]``,
    and ``bincount`` adds its inputs *in input order* — C order, i.e. per
    ``(row, parent)`` cell the additions land in child order, the twins'
    loop order — without the re-association ``np.add.reduceat`` would
    introduce on runs of 8+ siblings.
    """
    n, k = acc.shape
    acc[lev_nodes, np.arange(k)] += weights
    targets = (
        np.arange(n, dtype=np.int64)[:, None] * k_next + parents[None, :]
    ).ravel()
    merged = np.bincount(
        targets, weights=acc.ravel(), minlength=n * k_next
    ).reshape(n, k_next)
    out = op @ merged
    out[next_nodes, np.arange(k_next)] = 0.0
    return out
