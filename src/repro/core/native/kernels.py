"""Loop kernels for the native engine (numba ``@njit(cache=True)`` twins).

Every kernel here is the sequential twin of a vectorized primitive in
:mod:`repro.core.native.fallback` and produces **byte-identical** output:
the float accumulation order of each twin replays the documented order of
its vectorized counterpart (see the fallback module docstring).  When
numba is importable each kernel is compiled with ``@njit(cache=True)``
(the on-disk cache makes worker processes — the parallel/sharded services
— reuse one compilation); when it is not, the same functions run as plain
Python, which is also exactly what ``NUMBA_DISABLE_JIT=1`` yields on a
numba install — the parity CI job runs the suite both ways.

All randomness is the counter RNG of :mod:`repro.core.native.rng`; the
uint64 arithmetic wraps mod 2^64 (numba semantics).  In plain-Python mode
the same wrap raises numpy scalar overflow warnings, so the public
wrappers run the kernels under ``np.errstate(over="ignore")``.
"""

from __future__ import annotations

import numpy as np

from repro.core.native.rng import GOLDEN, MIX1, MIX2, U53

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the fallback container path
    HAVE_NUMBA = False

    def njit(*args, **kwargs):
        """Identity stand-in for ``numba.njit`` when numba is absent.

        The decorated kernels then run as plain Python — the same code
        path ``NUMBA_DISABLE_JIT=1`` exercises on a numba install —
        while the hot-path work routes through :mod:`.fallback`.
        """
        if args and callable(args[0]):
            return args[0]
        return lambda fn: fn


_GOLDEN = np.uint64(GOLDEN)
_MIX1 = np.uint64(MIX1)
_MIX2 = np.uint64(MIX2)
_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)
_S11 = np.uint64(11)


@njit(cache=True)
def _k_sample_walks(in_indptr, in_indices, in_degrees, bases, query, sqrt_c, nodes, lengths):
    count = len(bases)
    max_len = nodes.shape[1]
    for i in range(count):
        base = bases[i]
        cur = query
        length = 1
        for step in range(max_len - 1):
            z = base + np.uint64(2 * step + 1) * _GOLDEN
            z = (z ^ (z >> _S30)) * _MIX1
            z = (z ^ (z >> _S27)) * _MIX2
            z = z ^ (z >> _S31)
            if float(z >> _S11) * U53 >= sqrt_c:
                break
            deg = in_degrees[cur]
            if deg == 0:
                break
            z = base + np.uint64(2 * step + 2) * _GOLDEN
            z = (z ^ (z >> _S30)) * _MIX1
            z = (z ^ (z >> _S27)) * _MIX2
            z = z ^ (z >> _S31)
            idx = np.int64(float(z >> _S11) * U53 * deg)
            if idx >= deg:
                idx = deg - 1
            cur = np.int64(in_indices[in_indptr[cur] + idx])
            nodes[i, step + 1] = cur
            length += 1
        lengths[i] = length


def sample_walks(in_indptr, in_indices, in_degrees, bases, query, sqrt_c, max_len):
    """Twin of :func:`repro.core.native.fallback.sample_walks`."""
    count = len(bases)
    nodes = np.full((count, max_len), -1, dtype=np.int32)
    nodes[:, 0] = query
    lengths = np.ones(count, dtype=np.int64)
    with np.errstate(over="ignore"):
        _k_sample_walks(
            in_indptr, in_indices, in_degrees, bases,
            np.int64(query), sqrt_c, nodes, lengths,
        )
    return nodes, lengths


@njit(cache=True)
def _k_unique_counts(keys):
    """``np.unique(keys, return_inverse=True, return_counts=True)`` twin."""
    order = np.argsort(keys, kind="mergesort")
    count = len(keys)
    distinct = np.empty(count, dtype=keys.dtype)
    counts = np.empty(count, dtype=np.int64)
    inverse = np.empty(count, dtype=np.int64)
    groups = 0
    for pos in range(count):
        idx = order[pos]
        if pos == 0 or keys[idx] != distinct[groups - 1]:
            distinct[groups] = keys[idx]
            counts[groups] = 0
            groups += 1
        counts[groups - 1] += 1
        inverse[idx] = groups - 1
    return distinct[:groups], inverse, counts[:groups]


def unique_counts(keys):
    """Python wrapper (materializes the right dtypes for empty input)."""
    if len(keys) == 0:
        return (
            np.empty(0, dtype=keys.dtype),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    return _k_unique_counts(keys)


@njit(cache=True)
def _k_sparse_merge_seed(keys, data, k, parents, seed_keys, seed_weights, k_next):
    nnz = len(keys)
    num_seeds = len(seed_keys)
    out_data = np.empty(nnz + num_seeds, dtype=np.float64)
    out_keys = np.empty(nnz + num_seeds, dtype=np.int64)
    out_n = 0
    s = 0
    run_key = np.int64(-1)
    for e in range(nnz):
        key = (keys[e] // k) * k_next + parents[keys[e] % k]
        if out_n > 0 and key == run_key:
            out_data[out_n - 1] += data[e]
            continue
        # a new run begins.  Close the previous run first: a seed with
        # the run's key is spliced *after* its entries (the vectorized
        # twin inserts at side="right"), then seeds strictly before the
        # new key become runs of their own (seed keys are unique).
        if out_n > 0 and s < num_seeds and seed_keys[s] == run_key:
            out_data[out_n - 1] += seed_weights[s]
            s += 1
        while s < num_seeds and seed_keys[s] < key:
            out_keys[out_n] = seed_keys[s]
            out_data[out_n] = seed_weights[s]
            out_n += 1
            s += 1
        out_keys[out_n] = key
        out_data[out_n] = data[e]
        out_n += 1
        run_key = key
    if out_n > 0 and s < num_seeds and seed_keys[s] == run_key:
        out_data[out_n - 1] += seed_weights[s]
        s += 1
    while s < num_seeds:
        out_keys[out_n] = seed_keys[s]
        out_data[out_n] = seed_weights[s]
        out_n += 1
        s += 1
    return out_keys[:out_n], out_data[:out_n]


def sparse_merge_seed(cur, k, parents, seed_keys, seed_weights, k_next):
    """Twin of :func:`repro.core.native.fallback.sparse_merge_seed`."""
    if cur is None or len(cur[0]) == 0:
        return seed_keys.copy(), seed_weights.copy()
    keys, data = cur
    return _k_sparse_merge_seed(
        keys, data, np.int64(k), parents,
        seed_keys, seed_weights.astype(np.float64), np.int64(k_next),
    )


@njit(cache=True)
def _k_sparse_propagate_zero(out_indptr, out_indices, target_weights,
                             keys, data, n, k_next, next_nodes):
    # pass 1: expand every entry's out-edges into a flat (n * k_next)
    # accumulator, adding in expansion order — the order the vectorized
    # twin's ``bincount`` over the expanded contribution list adds in.
    total = 0
    for e in range(len(keys)):
        row = keys[e] // k_next
        total += out_indptr[row + 1] - out_indptr[row]
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    flat = np.zeros(n * k_next, dtype=np.float64)
    touched = np.empty(total, dtype=np.int64)
    t = 0
    for e in range(len(keys)):
        row = keys[e] // k_next
        col = keys[e] % k_next
        value = data[e]
        for jj in range(out_indptr[row], out_indptr[row + 1]):
            target = np.int64(out_indices[jj])
            flat_key = target * k_next + col
            flat[flat_key] += target_weights[target] * value
            touched[t] = flat_key
            t += 1
    # emit distinct keys ascending (np.unique's sorted order)
    out_keys = np.unique(touched[:t])
    out_data = np.empty(len(out_keys), dtype=np.float64)
    for e in range(len(out_keys)):
        out_data[e] = flat[out_keys[e]]
        flat[out_keys[e]] = 0.0
    # first-meeting zeros: binary-search each column's avoided key
    for j in range(k_next):
        want = next_nodes[j] * k_next + j
        lo = 0
        hi = len(out_keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if out_keys[mid] < want:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(out_keys) and out_keys[lo] == want:
            out_data[lo] = 0.0
    return out_keys, out_data


def sparse_propagate_zero(out_indptr, out_indices, target_weights, merged,
                          k_next, next_nodes):
    """Twin of :func:`repro.core.native.fallback.sparse_propagate_zero`."""
    keys, data = merged
    return _k_sparse_propagate_zero(
        out_indptr, out_indices, target_weights, keys, data,
        np.int64(len(target_weights)), np.int64(k_next), next_nodes,
    )


@njit(cache=True)
def _k_sparse_to_dense(keys, data, n, k):
    acc = np.zeros((n, k), dtype=np.float64)
    for e in range(len(keys)):
        acc[keys[e] // k, keys[e] % k] = data[e]
    return acc


def sparse_to_dense(cur, n, k):
    """Twin of :func:`repro.core.native.fallback.sparse_to_dense`."""
    keys, data = cur
    return _k_sparse_to_dense(keys, data, np.int64(n), np.int64(k))


@njit(cache=True)
def _k_dense_propagate(acc, op_data, op_indices, op_indptr, next_nodes):
    n, k_next = acc.shape
    out = np.zeros((n, k_next), dtype=np.float64)
    for i in range(n):
        for jj in range(op_indptr[i], op_indptr[i + 1]):
            src = op_indices[jj]
            weight = op_data[jj]
            for j in range(k_next):
                out[i, j] += weight * acc[src, j]
    for j in range(k_next):
        out[next_nodes[j], j] = 0.0
    return out


def dense_propagate(acc, op, next_nodes):
    """Twin of :func:`repro.core.native.fallback.dense_propagate`."""
    return _k_dense_propagate(
        acc, op.data, np.asarray(op.indices, dtype=np.int64),
        np.asarray(op.indptr, dtype=np.int64), next_nodes,
    )


@njit(cache=True)
def _k_dense_level(acc, lev_nodes, weights, parents, op_data, op_indices,
                   op_indptr, next_nodes, k_next):
    n, k = acc.shape
    for j in range(k):
        acc[lev_nodes[j], j] += weights[j]
    merged = np.zeros((n, k_next), dtype=np.float64)
    for row in range(n):
        for j in range(k):  # sibling runs are adjacent; sum left-to-right
            merged[row, parents[j]] += acc[row, j]
    out = np.zeros((n, k_next), dtype=np.float64)
    for i in range(n):
        for jj in range(op_indptr[i], op_indptr[i + 1]):
            src = op_indices[jj]
            weight = op_data[jj]
            for j in range(k_next):
                out[i, j] += weight * merged[src, j]
    for j in range(k_next):
        out[next_nodes[j], j] = 0.0
    return out


def dense_level(acc, lev_nodes, weights, parents, op, next_nodes, k_next):
    """Twin of :func:`repro.core.native.fallback.dense_level`.

    The sibling merge accumulates ``acc`` columns left-to-right per parent
    run — the same per-cell order as the fallback's round-by-round merge;
    zero columns for childless parents fall out of starting from a zero
    matrix.  The dense product accumulates in op-row storage order like
    scipy's ``csr_matvecs``.
    """
    return _k_dense_level(
        acc, lev_nodes, weights.astype(np.float64), parents,
        op.data, np.asarray(op.indices, dtype=np.int64),
        np.asarray(op.indptr, dtype=np.int64),
        next_nodes, np.int64(k_next),
    )
