"""Counter-based RNG for the native engine (splitmix64 streams).

The loop/batched engines thread one ``numpy.random.Generator`` through a
whole walk batch, so a walk's randomness depends on every draw made before
it — correct, but inherently sequential and batch-shaped.  The native
engine instead derives every random draw from a *counter*: a 64-bit key
built from ``(seed, query, walk_id, step, lane)`` and pushed through the
splitmix64 finalizer.  Consequences:

- bit-reproducible per ``(seed, query)`` — a query's walks are a pure
  function of the key material, independent of batch composition, call
  order, and of whether the walks were sampled by the vectorized fallback
  or the numba kernels;
- embarrassingly parallel — any walk or step can be drawn in isolation,
  which is what lets the numba kernel and the vectorized fallback consume
  keys in different iteration orders yet emit identical walks.

Key schedule (all arithmetic mod 2^64)::

    base     = mix64(mix64(seed + GOLDEN) ^ mix64(query * GOLDEN + SALT))
    walk[i]  = base + (i + 1) * GOLDEN          # per-walk sub-stream
    draw     = mix64(walk[i] + (2*step + lane + 1) * GOLDEN)
    uniform  = (draw >> 11) * 2.0**-53          # [0, 1), 53 mantissa bits

``lane`` 0 is the geometric continue/stop test, lane 1 the in-neighbour
pick — mirroring the two draws per step of the sequential sampler.
"""

from __future__ import annotations

import numpy as np

MASK64 = 0xFFFFFFFFFFFFFFFF
#: splitmix64 stream increment (golden-ratio constant).
GOLDEN = 0x9E3779B97F4A7C15
#: splitmix64 finalizer multipliers.
MIX1 = 0xBF58476D1CE4E5B9
MIX2 = 0x94D049BB133111EB
#: salt separating the query word from the seed word in the stream base.
SALT = 0xD1B54A32D192ED03
#: 2^-53: maps the top 53 bits of a draw onto [0, 1).
U53 = 2.0**-53


def mix64(z: int) -> int:
    """splitmix64 finalizer on a python int (setup-time scalar path)."""
    z &= MASK64
    z = ((z ^ (z >> 30)) * MIX1) & MASK64
    z = ((z ^ (z >> 27)) * MIX2) & MASK64
    return z ^ (z >> 31)


def stream_base(seed: int, query: int) -> int:
    """The per-``(seed, query)`` stream base (a pure int function)."""
    return mix64(mix64(seed + GOLDEN) ^ mix64(query * GOLDEN + SALT))


def walk_bases(base: int, count: int) -> np.ndarray:
    """Per-walk sub-stream bases as a uint64 array (shared by both backends)."""
    steps = (np.arange(1, count + 1, dtype=np.uint64)) * np.uint64(GOLDEN)
    return np.uint64(base) + steps


def mix64_array(z: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over a uint64 array."""
    z = (z ^ (z >> np.uint64(30))) * np.uint64(MIX1)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(MIX2)
    return z ^ (z >> np.uint64(31))


def uniform_array(keys: np.ndarray) -> np.ndarray:
    """Map uint64 draw keys to float64 uniforms in [0, 1)."""
    return (mix64_array(keys) >> np.uint64(11)).astype(np.float64) * U53


def draw_keys(bases: np.ndarray, step: int, lane: int) -> np.ndarray:
    """Draw-key array for one ``(step, lane)`` across all walk bases."""
    # the per-step offset is formed in python ints (masked) so the scalar
    # product can't raise a numpy overflow warning; the array add wraps
    # silently, which is the intended mod-2^64 stream arithmetic.
    return bases + np.uint64(((2 * step + lane + 1) * GOLDEN) & MASK64)
