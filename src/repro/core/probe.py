"""Deterministic PROBE (Algorithm 2) with score pruning (Pruning rule 2).

Given a partial √c-walk ``(u_1, ..., u_i)``, PROBE computes, for every node
``v``, the *first-meeting probability* ``P(v, W(u, i))``: the probability that
an independent √c-walk from ``v`` reaches ``u_i`` at step ``i`` while avoiding
``u_{i-1}, ..., u_1`` at the corresponding earlier steps (Definition 4).

Two interchangeable implementations:

:func:`probe_deterministic_python`
    Faithful transliteration of Algorithm 2 over hash maps.  Works on both
    :class:`~repro.graph.digraph.DiGraph` and CSR snapshots; used as the
    cross-validation oracle and for dynamic graphs.

:func:`probe_deterministic_vectorized`
    Frontier propagation over dense numpy score vectors.  Small frontiers are
    expanded with per-node CSR slices; once the frontier's out-degree mass
    passes a threshold it switches to one sparse matvec per iteration
    (``next = sqrt(c) * B @ score`` with ``B[v, x] = 1/|I(v)|``), so each
    iteration costs at most O(m) in C speed.

Both honour Pruning rule 2: after iteration ``j``, entries with
``score * sqrt(c)^(i - j - 1) <= eps_p`` are dropped before descending.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import QueryError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph


def _check_prefix(prefix: Sequence[int]) -> None:
    if len(prefix) < 2:
        raise QueryError(
            f"PROBE needs a partial walk of at least 2 nodes, got {len(prefix)}"
        )


def probe_deterministic_python(
    graph: "DiGraph | CSRGraph",
    prefix: Sequence[int],
    sqrt_c: float,
    eps_p: float = 0.0,
) -> dict[int, float]:
    """Algorithm 2 over hash maps.

    Returns ``{v: Score(v)}`` where ``Score(v) = P(v, prefix)``; nodes with
    zero (or pruned) scores are absent.
    """
    _check_prefix(prefix)
    i = len(prefix)
    scores: dict[int, float] = {prefix[-1]: 1.0}

    if isinstance(graph, DiGraph):
        out_neighbors = graph.out_neighbors
        in_degree = graph.in_degree
    else:
        out_neighbors = graph.out_neighbors
        in_degree = graph.in_degree

    for j in range(i - 1):
        # Pruning rule 2: drop entries whose eventual contribution is <= eps_p.
        if eps_p > 0.0:
            remaining = sqrt_c ** (i - j - 1)
            scores = {v: s for v, s in scores.items() if s * remaining > eps_p}
            if not scores:
                return {}
        avoid = prefix[i - j - 2]  # u_{i-j-1} in the paper's 1-based indexing
        nxt: dict[int, float] = {}
        for x, score_x in scores.items():
            for v in out_neighbors(x):
                v = int(v)
                if v == avoid:
                    continue
                nxt[v] = nxt.get(v, 0.0) + score_x * sqrt_c / in_degree(v)
        scores = nxt
        if not scores:
            break
    return scores


def prune_frontier(
    score: np.ndarray,
    frontier: np.ndarray,
    remaining_factor: float,
    eps_p: float,
) -> np.ndarray:
    """Apply Pruning rule 2 in place; return the surviving frontier.

    ``remaining_factor`` is ``sqrt(c)^(i - j - 1)``, the maximum multiplier a
    frontier score can still gain before the probe finishes — entries whose
    eventual contribution ``score * remaining_factor`` is at most ``eps_p``
    are zeroed.
    """
    if eps_p <= 0.0 or len(frontier) == 0:
        return frontier
    keep = score[frontier] * remaining_factor > eps_p
    dropped = frontier[~keep]
    if len(dropped):
        score[dropped] = 0.0
    return frontier[keep]


def propagate_frontier(
    graph: CSRGraph,
    score: np.ndarray,
    frontier: np.ndarray,
    avoid: int,
    sqrt_c: float,
    edge_budget: float,
) -> tuple[np.ndarray, np.ndarray]:
    """One Algorithm 2 iteration: ``H_j -> H_{j+1}``.

    Returns ``(next_score, next_frontier)``.  While the frontier's out-degree
    mass is below ``edge_budget`` the expansion walks CSR slices per node;
    beyond it one sparse matvec (``sqrt(c) * B @ score``) covers the whole
    iteration in C.
    """
    n = graph.num_nodes
    if len(frontier) == 0:
        return np.zeros(n, dtype=np.float64), frontier
    frontier_out_mass = int(graph.out_degrees[frontier].sum())
    if frontier_out_mass == 0:
        return np.zeros(n, dtype=np.float64), np.empty(0, dtype=np.int64)
    if frontier_out_mass <= edge_budget:
        nxt = np.zeros(n, dtype=np.float64)
        out_indptr = graph.out_indptr
        out_indices = graph.out_indices
        for x in frontier.tolist():
            targets = out_indices[out_indptr[x] : out_indptr[x + 1]]
            nxt[targets] += score[x]
        nxt *= sqrt_c * graph.inv_in_degrees
    else:
        nxt = sqrt_c * (graph.backward_operator @ score)
    nxt[avoid] = 0.0
    return nxt, np.nonzero(nxt)[0]


def frontier_edge_budget(graph: CSRGraph, dense_frontier_fraction: float = 0.25) -> float:
    """Sparse/dense crossover for :func:`propagate_frontier`."""
    return max(64.0, dense_frontier_fraction * max(graph.num_edges, 1))


def probe_deterministic_vectorized(
    graph: CSRGraph,
    prefix: Sequence[int],
    sqrt_c: float,
    eps_p: float = 0.0,
    dense_frontier_fraction: float = 0.25,
) -> np.ndarray:
    """Algorithm 2 as dense-vector frontier propagation.

    Returns a dense ``float64`` array of length ``n`` holding
    ``P(v, prefix)`` for every node ``v``.
    """
    _check_prefix(prefix)
    n = graph.num_nodes
    i = len(prefix)
    score = np.zeros(n, dtype=np.float64)
    score[prefix[-1]] = 1.0
    frontier = np.array([prefix[-1]], dtype=np.int64)
    edge_budget = frontier_edge_budget(graph, dense_frontier_fraction)

    for j in range(i - 1):
        frontier = prune_frontier(score, frontier, sqrt_c ** (i - j - 1), eps_p)
        if len(frontier) == 0:
            return np.zeros(n, dtype=np.float64)
        avoid = prefix[i - j - 2]
        score, frontier = propagate_frontier(
            graph, score, frontier, avoid, sqrt_c, edge_budget
        )
        if len(frontier) == 0:
            break
    return score


def probe_deterministic(
    graph,
    prefix: Sequence[int],
    sqrt_c: float,
    eps_p: float = 0.0,
    backend: str = "vectorized",
) -> np.ndarray:
    """Backend-dispatching deterministic PROBE returning a dense score array."""
    if backend == "vectorized":
        if not isinstance(graph, CSRGraph):
            graph = CSRGraph.from_digraph(graph)
        return probe_deterministic_vectorized(graph, prefix, sqrt_c, eps_p)
    if backend == "python":
        scores = probe_deterministic_python(graph, prefix, sqrt_c, eps_p)
        n = graph.num_nodes
        dense = np.zeros(n, dtype=np.float64)
        for node, value in scores.items():
            dense[node] = value
        return dense
    raise QueryError(f"unknown probe backend {backend!r}")
