"""Randomized PROBE (Algorithm 4).

Instead of propagating exact scores, each iteration *samples* the next level:
every candidate node ``x`` draws one uniform in-neighbour; if that neighbour
was selected in the previous level, ``x`` is selected with probability
``sqrt(c)``.  Lemma 6 shows the probability that ``v`` survives to the final
level equals exactly the deterministic ``Score(v)``, so emitting indicator
scores of 1 for the survivors is an unbiased Bernoulli estimator.

Per iteration the candidate set is the union of the current level's
out-neighbours when that union is cheap (total out-degree <= n), otherwise all
of ``V`` — hence the O(n)-per-iteration worst case that gives ProbeSim its
O(n / eps_a^2 * log(n / delta)) bound.

:func:`probe_randomized_from_membership` is the §4.4 hybrid's entry point:
it starts from an arbitrary Bernoulli membership level (sampled from a
deterministic probe's marginals mid-path) instead of from ``{u_i}``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import QueryError
from repro.graph.csr import CSRGraph
from repro.utils.rng import as_generator


def _candidate_set(graph: CSRGraph, level: np.ndarray) -> np.ndarray:
    """Union of out-neighbours of ``level``, or all nodes if that is cheaper.

    Mirrors Algorithm 4 lines 3-7: when the out-degree mass of the current
    level exceeds n, enumerating the union would cost more than scanning V.
    """
    n = graph.num_nodes
    total_out = int(graph.out_degrees[level].sum())
    if total_out > n:
        return np.arange(n, dtype=np.int64)
    if total_out == 0:
        return np.empty(0, dtype=np.int64)
    chunks = [
        graph.out_indices[graph.out_indptr[x] : graph.out_indptr[x + 1]]
        for x in level.tolist()
    ]
    return np.unique(np.concatenate(chunks).astype(np.int64))


def _advance_level(
    graph: CSRGraph,
    in_level: np.ndarray,
    avoid: int,
    sqrt_c: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """One sampling iteration: from membership array to the next level."""
    n = graph.num_nodes
    level_nodes = np.nonzero(in_level)[0]
    if len(level_nodes) == 0:
        return np.empty(0, dtype=np.int64)
    candidates = _candidate_set(graph, level_nodes)
    if len(candidates) == 0:
        return np.empty(0, dtype=np.int64)
    candidates = candidates[candidates != avoid]
    if len(candidates) == 0:
        return np.empty(0, dtype=np.int64)
    sampled = graph.sample_in_neighbors(candidates, rng)
    valid = sampled >= 0
    hit = np.zeros(len(candidates), dtype=bool)
    hit[valid] = in_level[sampled[valid]]
    accept = hit & (rng.random(len(candidates)) < sqrt_c)
    return candidates[accept]


def probe_randomized(
    graph: CSRGraph,
    prefix: Sequence[int],
    sqrt_c: float,
    rng=None,
) -> np.ndarray:
    """Algorithm 4: one Bernoulli probe of ``prefix``.

    Returns the integer ids of the nodes selected into the final level; each
    carries an implicit score of 1 (Lemma 6 makes this unbiased for the
    deterministic scores).
    """
    if len(prefix) < 2:
        raise QueryError(
            f"PROBE needs a partial walk of at least 2 nodes, got {len(prefix)}"
        )
    rng = as_generator(rng)
    n = graph.num_nodes
    i = len(prefix)
    in_level = np.zeros(n, dtype=bool)
    in_level[prefix[-1]] = True
    selected = np.array([prefix[-1]], dtype=np.int64)
    for j in range(i - 1):
        avoid = prefix[i - j - 2]
        selected = _advance_level(graph, in_level, avoid, sqrt_c, rng)
        in_level[:] = False
        if len(selected) == 0:
            return selected
        in_level[selected] = True
    return selected


def probe_randomized_from_membership(
    graph: CSRGraph,
    prefix: Sequence[int],
    start_iteration: int,
    membership: np.ndarray,
    sqrt_c: float,
    rng=None,
) -> np.ndarray:
    """Continue a probe of ``prefix`` from iteration ``start_iteration``.

    ``membership`` is the boolean level occupancy after iteration
    ``start_iteration - 1`` (i.e. the level the deterministic probe had
    computed when the §4.4 hybrid decided to switch).  Runs the remaining
    ``len(prefix) - 1 - start_iteration`` sampling iterations and returns the
    surviving node ids.
    """
    rng = as_generator(rng)
    i = len(prefix)
    if not 0 <= start_iteration <= i - 1:
        raise QueryError(
            f"start_iteration must lie in [0, {i - 1}], got {start_iteration}"
        )
    in_level = membership.copy()
    selected = np.nonzero(in_level)[0]
    for j in range(start_iteration, i - 1):
        avoid = prefix[i - j - 2]
        selected = _advance_level(graph, in_level, avoid, sqrt_c, rng)
        in_level[:] = False
        if len(selected) == 0:
            return selected
        in_level[selected] = True
    return selected
