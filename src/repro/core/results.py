"""Query result containers shared by ProbeSim and all baselines."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QueryError


class SimRankResult:
    """Single-source SimRank estimates ``s~(u, v)`` for every node ``v``.

    ``scores[u]`` is fixed to 1.0 (``s(u, u) = 1`` by definition); all other
    entries are the algorithm's estimates.  The container is algorithm-
    agnostic: baselines return it too, so the evaluation stack treats every
    method uniformly.
    """

    __slots__ = ("query", "scores", "num_walks", "elapsed", "method")

    def __init__(
        self,
        query: int,
        scores: np.ndarray,
        num_walks: int = 0,
        elapsed: float = 0.0,
        method: str = "probesim",
    ) -> None:
        self.query = int(query)
        self.scores = np.asarray(scores, dtype=np.float64)
        if self.scores.ndim != 1:
            raise QueryError("scores must be a 1-D array over all nodes")
        self.num_walks = int(num_walks)
        self.elapsed = float(elapsed)
        self.method = method

    @property
    def num_nodes(self) -> int:
        return len(self.scores)

    def score(self, node: int) -> float:
        """Estimate for one node (1.0 for the query node itself)."""
        if not 0 <= node < len(self.scores):
            raise QueryError(f"node {node} out of range [0, {len(self.scores)})")
        return float(self.scores[node])

    def topk(self, k: int) -> "TopKResult":
        """Top-k nodes by estimated SimRank, excluding the query node.

        Ties are broken by ascending node id so results are deterministic.
        """
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        n = len(self.scores)
        k = min(k, n - 1)
        masked = self.scores.copy()
        masked[self.query] = -np.inf
        # argsort on (-score, node_id): stable mergesort keeps id order in ties
        order = np.argsort(-masked, kind="stable")[:k]
        return TopKResult(
            query=self.query,
            nodes=order.astype(np.int64),
            scores=self.scores[order].copy(),
            elapsed=self.elapsed,
            method=self.method,
        )

    def as_dict(self, threshold: float = 0.0) -> dict[int, float]:
        """``{v: estimate}`` for nodes with estimate > threshold (query excluded)."""
        out = {}
        for node in np.nonzero(self.scores > threshold)[0].tolist():
            if node != self.query:
                out[node] = float(self.scores[node])
        return out

    def __repr__(self) -> str:
        return (
            f"SimRankResult(query={self.query}, n={self.num_nodes}, "
            f"method={self.method!r}, num_walks={self.num_walks}, "
            f"elapsed={self.elapsed:.4f}s)"
        )


@dataclass(frozen=True)
class TopKResult:
    """Ordered top-k answer: ``nodes[i]`` has the i-th largest estimate."""

    query: int
    nodes: np.ndarray
    scores: np.ndarray
    elapsed: float = 0.0
    method: str = "probesim"

    def __post_init__(self) -> None:
        if len(self.nodes) != len(self.scores):
            raise QueryError("nodes and scores must have equal length")

    @property
    def k(self) -> int:
        return len(self.nodes)

    def as_pairs(self) -> list[tuple[int, float]]:
        """``[(node, estimate), ...]`` in rank order."""
        return [
            (int(node), float(score))
            for node, score in zip(self.nodes, self.scores)
        ]

    def node_set(self) -> set[int]:
        """The returned nodes as a set (for pool/precision computations)."""
        return {int(node) for node in self.nodes}

    def __iter__(self):
        return iter(self.as_pairs())

    def __repr__(self) -> str:
        return (
            f"TopKResult(query={self.query}, k={self.k}, method={self.method!r})"
        )
