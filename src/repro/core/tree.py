"""Reverse-reachability tree (Algorithm 3's batching structure).

All ``nr`` √c-walks from the query node share the same root ``u``; walks that
share a prefix share a path in this tree.  Each tree node carries the graph
node it represents and the number of walks whose prefix runs through it, so
the batch algorithm probes every distinct prefix exactly once and weights its
scores by ``weight / nr`` instead of probing duplicated prefixes repeatedly.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field


@dataclass
class TreeNode:
    """One prefix endpoint: graph node + number of walks sharing the prefix."""

    node: int
    weight: int = 0
    children: dict[int, "TreeNode"] = field(default_factory=dict)

    def child(self, node: int) -> "TreeNode | None":
        """The child tree node for graph node ``node``, if present."""
        return self.children.get(node)


class ReachabilityTree:
    """Compact trie of √c-walks from a common root (Algorithm 3 lines 2-10).

    >>> tree = ReachabilityTree(root=0)
    >>> tree.insert_walk([0, 1, 2])
    >>> tree.insert_walk([0, 1, 3])
    >>> tree.num_walks
    2
    >>> sorted(w for _, w in tree.iter_prefixes())
    [1, 1, 2]
    """

    def __init__(self, root: int) -> None:
        self.root = TreeNode(node=root, weight=0)

    @property
    def num_walks(self) -> int:
        """Number of inserted walks (the root's weight in the paper)."""
        return self.root.weight

    def insert_walk(self, walk: Sequence[int]) -> None:
        """Insert one √c-walk ``(u_1, ..., u_l)``; ``u_1`` must be the root.

        Every prefix node on the walk's path gains weight 1; new tree nodes
        are created where the walk diverges from previously inserted ones.
        """
        if not walk:
            raise ValueError("cannot insert an empty walk")
        if walk[0] != self.root.node:
            raise ValueError(
                f"walk starts at {walk[0]}, tree is rooted at {self.root.node}"
            )
        self.root.weight += 1
        current = self.root
        for node in walk[1:]:
            nxt = current.children.get(node)
            if nxt is None:
                nxt = TreeNode(node=node, weight=0)
                current.children[node] = nxt
            nxt.weight += 1
            current = nxt

    def iter_prefixes(self) -> Iterator[tuple[list[int], int]]:
        """Yield ``(prefix, weight)`` for every non-root tree node.

        ``prefix`` is the full root-to-node path ``(u_1, ..., u_q)`` — exactly
        the partial walks Algorithm 3 probes — in DFS (pre-order) order.
        Weights satisfy: a node's weight equals the number of walks whose
        prefix passes through it, so ``sum over leaves-to-root levels`` of a
        level's weights never exceeds ``num_walks``.
        """
        stack: list[tuple[TreeNode, list[int]]] = [(self.root, [self.root.node])]
        while stack:
            tree_node, path = stack.pop()
            for child in tree_node.children.values():
                child_path = path + [child.node]
                yield child_path, child.weight
                stack.append((child, child_path))

    def num_tree_nodes(self) -> int:
        """Count of non-root tree nodes (distinct probed prefixes)."""
        return sum(1 for _ in self.iter_prefixes())

    def max_depth(self) -> int:
        """Longest root-to-leaf path length in nodes (1 for a bare root)."""
        best = 1
        stack: list[tuple[TreeNode, int]] = [(self.root, 1)]
        while stack:
            tree_node, depth = stack.pop()
            best = max(best, depth)
            for child in tree_node.children.values():
                stack.append((child, depth + 1))
        return best

    @classmethod
    def from_walks(cls, walks: Sequence[Sequence[int]]) -> "ReachabilityTree":
        """Build a tree from a non-empty batch of walks sharing a start node."""
        if not walks:
            raise ValueError("need at least one walk")
        tree = cls(root=walks[0][0])
        for walk in walks:
            tree.insert_walk(walk)
        return tree

    def __repr__(self) -> str:
        return (
            f"ReachabilityTree(root={self.root.node}, walks={self.num_walks}, "
            f"prefixes={self.num_tree_nodes()})"
        )
