"""Array-backed prefix trie of √c-walks (the batched engine's probe plan).

:class:`~repro.core.tree.ReachabilityTree` stores Algorithm 3's walk trie as
linked Python objects — ideal for incremental insertion (the walk cache) but
slow to traverse once per probe.  :class:`WalkTrie` is the same structure
flattened into per-level numpy arrays, built in one vectorised pass over the
padded walk arrays of :func:`~repro.core.walks.sample_walk_arrays`:

- level ``d`` (depth ``d`` nodes, ``d >= 2``) holds three parallel arrays:
  ``nodes`` (graph node of each distinct length-``d`` prefix), ``parents``
  (index of the length-``d-1`` prefix it extends, into level ``d-1``'s
  arrays; level 2 parents all point at the root), and ``weights`` (how many
  sampled walks run through the prefix — Algorithm 3's multiplicity).
- within a level, entries are sorted by ``(parent, node)``, so siblings are
  contiguous and parents appear in column order — the batched engine
  exploits this to merge child score columns into their parent with one
  gather-assign for every parent's first child plus a short add loop over
  the remaining siblings.

Weight invariants (checked by the property suite): the root weight is the
number of inserted walks ``R``; every level's weights sum to the number of
walks still alive at that depth, so level sums are non-increasing in depth
and never exceed ``R``; and a node's weight equals the sum of its children's
weights plus the number of walks that *end* on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np


@dataclass(frozen=True)
class TrieLevel:
    """All distinct walk prefixes of one depth, as parallel arrays."""

    nodes: np.ndarray  # int64 (k,) graph node of each prefix endpoint
    parents: np.ndarray  # int64 (k,) index into the previous level (sorted)
    weights: np.ndarray  # int64 (k,) number of walks through the prefix

    def __len__(self) -> int:
        return len(self.nodes)


class WalkTrie:
    """Prefix trie of a walk batch from one root, flattened per level.

    >>> import numpy as np
    >>> nodes = np.array([[0, 1, 2], [0, 1, -1], [0, -1, -1]], dtype=np.int32)
    >>> trie = WalkTrie.from_walk_arrays(nodes, np.array([3, 2, 1]))
    >>> trie.num_walks, trie.num_tree_nodes, trie.max_depth
    (3, 2, 3)
    >>> trie.levels[0].weights.tolist()  # two of three walks reach node 1
    [2]
    """

    def __init__(self, root: int, num_walks: int, levels: list[TrieLevel]) -> None:
        self.root = int(root)
        self.num_walks = int(num_walks)
        self.levels = levels  # levels[i] holds depth i + 2 prefixes

    @classmethod
    def from_walk_arrays(cls, nodes: np.ndarray, lengths: np.ndarray) -> "WalkTrie":
        """Build the trie from padded walk arrays in O(total walk length).

        ``nodes``/``lengths`` are the output of
        :func:`~repro.core.walks.sample_walk_arrays`: row ``i`` holds walk
        ``i`` padded with ``-1``.  All walks must share ``nodes[:, 0]`` (the
        query node — √c-walks from one source).
        """
        count = len(nodes)
        if count == 0:
            raise ValueError("need at least one walk")
        root = int(nodes[0, 0])
        if np.any(nodes[:, 0] != root):
            raise ValueError("walks in one trie must share their start node")
        levels: list[TrieLevel] = []
        # stride for packing (parent, node) pairs into one sortable int64 key
        stride = int(nodes.max()) + 2
        parent_of_walk = np.zeros(count, dtype=np.int64)  # all at the root
        for depth in range(2, int(lengths.max()) + 1):
            alive = lengths >= depth
            if not np.any(alive):
                break
            keys = parent_of_walk[alive] * stride + nodes[alive, depth - 1]
            distinct, inverse, counts = np.unique(
                keys, return_inverse=True, return_counts=True
            )
            levels.append(
                TrieLevel(
                    nodes=distinct % stride,
                    parents=distinct // stride,
                    weights=counts.astype(np.int64),
                )
            )
            parent_of_walk = np.full(count, -1, dtype=np.int64)
            parent_of_walk[alive] = inverse
        return cls(root=root, num_walks=count, levels=levels)

    @classmethod
    def from_walks(cls, walks: Sequence[Sequence[int]]) -> "WalkTrie":
        """Build from a list-of-lists walk batch (test/oracle convenience)."""
        if not walks:
            raise ValueError("need at least one walk")
        longest = max(len(w) for w in walks)
        nodes = np.full((len(walks), longest), -1, dtype=np.int64)
        lengths = np.empty(len(walks), dtype=np.int64)
        for i, walk in enumerate(walks):
            nodes[i, : len(walk)] = walk
            lengths[i] = len(walk)
        return cls.from_walk_arrays(nodes, lengths)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def max_depth(self) -> int:
        """Longest prefix length in nodes (1 when no walk left the root)."""
        return len(self.levels) + 1

    @property
    def num_tree_nodes(self) -> int:
        """Distinct non-root prefixes — exactly the probes Algorithm 3 runs."""
        return sum(len(level) for level in self.levels)

    def level_weight_sums(self) -> list[int]:
        """Total walk multiplicity per level (non-increasing, <= num_walks)."""
        return [int(level.weights.sum()) for level in self.levels]

    def iter_prefixes(self) -> Iterator[tuple[list[int], int]]:
        """Yield ``(prefix, weight)`` for every distinct probed prefix.

        Mirrors :meth:`repro.core.tree.ReachabilityTree.iter_prefixes` (used
        by the golden-equivalence suite to cross-check multiplicities);
        order is per level, sorted by ``(parent, node)``.
        """
        for li, level in enumerate(self.levels):
            for j in range(len(level)):
                prefix = [int(level.nodes[j])]
                parent = int(level.parents[j])
                for upper in range(li - 1, -1, -1):
                    prefix.append(int(self.levels[upper].nodes[parent]))
                    parent = int(self.levels[upper].parents[parent])
                prefix.append(self.root)
                yield prefix[::-1], int(level.weights[j])

    def __repr__(self) -> str:
        return (
            f"WalkTrie(root={self.root}, walks={self.num_walks}, "
            f"prefixes={self.num_tree_nodes}, depth={self.max_depth})"
        )
