"""√c-walk sampling (Definition 3) and truncation (Pruning rule 1).

A √c-walk from ``u`` follows incoming edges and, *before every step*
(including the first), terminates with probability ``1 - sqrt(c)``.  A walk
also terminates when the current node has no in-neighbours.  The walk is the
node sequence ``(u_1 = u, u_2, ...)``; its expected length is
``1 / (1 - sqrt(c))`` nodes, and ``E[len^2]`` is constant, which is what makes
a single probed walk cost O(m) in expectation (§3.3).
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.rng import as_generator


def truncation_length(eps_t: float, sqrt_c: float) -> int:
    """Pruning rule 1 cut-off: ``l_t = ceil(log eps_t / log sqrt(c))``.

    Beyond step ``l_t`` a meeting contributes at most ``eps_t`` to any
    SimRank value, so walks are truncated there.
    """
    if not 0.0 < eps_t < 1.0:
        raise ValueError(f"eps_t must lie in (0, 1), got {eps_t!r}")
    if not 0.0 < sqrt_c < 1.0:
        raise ValueError(f"sqrt_c must lie in (0, 1), got {sqrt_c!r}")
    return max(1, math.ceil(math.log(eps_t) / math.log(sqrt_c)))


def sample_sqrt_c_walk(
    graph,
    start: int,
    sqrt_c: float,
    rng: np.random.Generator | None = None,
    max_length: int | None = None,
) -> list[int]:
    """Sample one (possibly truncated) √c-walk from ``start``.

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.digraph.DiGraph` or
        :class:`~repro.graph.csr.CSRGraph` (anything with
        ``random_in_neighbor``).
    start:
        The source node ``u`` (becomes ``walk[0]``).
    sqrt_c:
        Per-step continuation probability.
    max_length:
        Truncate the walk to at most this many *nodes* (Pruning rule 1's
        ``l_t``).  ``None`` means unbounded (the geometric stop still
        terminates the walk almost surely).

    Returns
    -------
    list[int]
        The node sequence, always starting with ``start`` and containing at
        least one node.
    """
    rng = as_generator(rng)
    walk = [start]
    current = start
    while max_length is None or len(walk) < max_length:
        if rng.random() >= sqrt_c:  # stop with probability 1 - sqrt(c)
            break
        nxt = graph.random_in_neighbor(current, rng)
        if nxt is None:  # dead end: no in-neighbours to continue through
            break
        walk.append(nxt)
        current = nxt
    return walk


def sample_walk_arrays(
    graph: CSRGraph,
    start: int,
    count: int,
    sqrt_c: float,
    rng: np.random.Generator | None = None,
    max_length: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``count`` independent √c-walks into padded numpy arrays.

    Returns ``(nodes, lengths)`` where ``nodes`` is an int32 array of shape
    ``(count, max_observed_length)`` padded with ``-1`` past each walk's end,
    and ``lengths[i]`` is the node count of walk ``i`` (at least 1 — every
    walk contains ``start``).  Walk ``i`` is ``nodes[i, :lengths[i]]``.

    This is the canonical sampler: :func:`sample_walk_batch` and the batched
    trie-sharing engine both draw through it, consuming the RNG stream in
    exactly the same order, so a fixed seed yields bit-identical walk sets no
    matter which engine runs the probes.  The caller owns the generator —
    pass one ``Generator`` and thread it through the whole batch; re-seeding
    per walk would correlate walks and break the variance analysis behind
    Theorem 1's walk budget.
    """
    rng = as_generator(rng)
    if count <= 0:
        return (
            np.empty((0, 1), dtype=np.int32),
            np.empty(0, dtype=np.int64),
        )
    lengths = np.ones(count, dtype=np.int64)
    steps: list[tuple[np.ndarray, np.ndarray]] = []  # (walk ids, nodes) per level
    positions = np.full(count, start, dtype=np.int64)
    alive = np.ones(count, dtype=bool)
    length = 1
    while np.any(alive) and (max_length is None or length < max_length):
        alive_idx = np.nonzero(alive)[0]
        # geometric stop: each alive walk continues with probability sqrt(c)
        cont = rng.random(len(alive_idx)) < sqrt_c
        stopped = alive_idx[~cont]
        alive[stopped] = False
        moving = alive_idx[cont]
        if len(moving) == 0:
            break
        nxt = graph.sample_in_neighbors(positions[moving], rng)
        dead = nxt < 0
        alive[moving[dead]] = False
        moved = moving[~dead]
        if len(moved):
            targets = nxt[~dead]
            positions[moved] = targets
            lengths[moved] += 1
            steps.append((moved, targets))
        length += 1
    nodes = np.full((count, int(lengths.max())), -1, dtype=np.int32)
    nodes[:, 0] = start
    for level, (moved, targets) in enumerate(steps, start=1):
        nodes[moved, level] = targets
    return nodes, lengths


def sample_walk_batch(
    graph: CSRGraph,
    start: int,
    count: int,
    sqrt_c: float,
    rng: np.random.Generator | None = None,
    max_length: int | None = None,
) -> list[list[int]]:
    """Sample ``count`` independent √c-walks from ``start``.

    Semantically identical to calling :func:`sample_sqrt_c_walk` in a loop;
    on a :class:`CSRGraph` the stepping is vectorised across all still-alive
    walks (via :func:`sample_walk_arrays`), which is what makes the
    theoretical walk counts (thousands of walks) affordable in Python.
    """
    rng = as_generator(rng)
    if count <= 0:
        return []
    if not isinstance(graph, CSRGraph):
        # One shared generator threads through every walk: the fallback loop
        # must never re-seed per walk (walks would correlate).
        return [
            sample_sqrt_c_walk(graph, start, sqrt_c, rng, max_length)
            for _ in range(count)
        ]
    nodes, lengths = sample_walk_arrays(graph, start, count, sqrt_c, rng, max_length)
    return [nodes[i, : lengths[i]].tolist() for i in range(count)]


def expected_walk_length(sqrt_c: float) -> float:
    """``E[len] = 1 / (1 - sqrt(c))`` nodes (ignoring dead ends)."""
    return 1.0 / (1.0 - sqrt_c)
