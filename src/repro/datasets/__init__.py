"""Datasets: the paper's Figure 1 toy graph (exactly reconstructed) and
seeded synthetic stand-ins for the eight benchmark graphs of Table 3."""

from repro.datasets.registry import (
    DATASETS,
    DatasetSpec,
    large_dataset_names,
    load_dataset,
    small_dataset_names,
)
from repro.datasets.toy import (
    TOY_DECAY,
    TOY_EDGES,
    TOY_EXPECTED_SIMRANK_FROM_A,
    TOY_NODE_NAMES,
    toy_graph,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "TOY_DECAY",
    "TOY_EDGES",
    "TOY_EXPECTED_SIMRANK_FROM_A",
    "TOY_NODE_NAMES",
    "large_dataset_names",
    "load_dataset",
    "small_dataset_names",
    "toy_graph",
]
