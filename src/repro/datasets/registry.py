"""Registry of synthetic stand-ins for the paper's eight benchmark graphs.

Each entry targets the structural profile of a Table 3 dataset (see
DESIGN.md §2 for the substitution argument) at two scales:

``scale="small"``
    CI-friendly sizes: every experiment finishes in seconds.  This is the
    default for the test suite and benchmarks.
``scale="paper"``
    Larger stand-ins for heavier runs (still far below the originals — pure
    Python cannot traverse billions of edges; the *relative* comparisons are
    what the benchmarks reproduce).

Generation is deterministic per (name, scale): seeds are fixed in the spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import DatasetError
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    locally_dense_graph,
    preferential_attachment_graph,
    undirected_as_digraph,
    web_graph,
)

#: recognised scale names, ordered small to large.
SCALES = ("tiny", "small", "paper")


@dataclass(frozen=True)
class DatasetSpec:
    """One named stand-in: how to build it at each scale."""

    name: str
    kind: str  # "small" (Figures 4-7) or "large" (Table 4, Figures 8-10)
    profile: str  # prose description of the original's structure
    builder: Callable[[int, int], DiGraph]  # (num_nodes, seed) -> graph
    sizes: dict[str, int]  # scale -> num_nodes
    seed: int

    def build(self, scale: str = "small") -> DiGraph:
        """Generate this dataset at ``scale`` (deterministic per spec seed)."""
        if scale not in self.sizes:
            raise DatasetError(
                f"dataset {self.name!r} has no scale {scale!r}; "
                f"available: {sorted(self.sizes)}"
            )
        return self.builder(self.sizes[scale], self.seed)


def _wiki_vote(n: int, seed: int) -> DiGraph:
    # >60% zero in-degree periphery voting into a dense core (paper §6.1).
    return locally_dense_graph(
        n, core_fraction=0.35, core_out_degree=10, periphery_out_degree=3, seed=seed
    )


def _hepth(n: int, seed: int) -> DiGraph:
    # undirected collaboration network stored as reciprocal edge pairs.
    return undirected_as_digraph(n, attachment=3, seed=seed)


def _as_topology(n: int, seed: int) -> DiGraph:
    # autonomous-systems topology: sparse preferential attachment.
    return preferential_attachment_graph(n, out_degree=4, seed=seed)


def _hepph(n: int, seed: int) -> DiGraph:
    # denser citation network (HepPh has ~12 edges/node).
    return preferential_attachment_graph(n, out_degree=12, seed=seed)


def _livejournal(n: int, seed: int) -> DiGraph:
    # social network, moderately dense, heavy-tailed.
    return preferential_attachment_graph(n, out_degree=14, seed=seed)


def _it2004(n: int, seed: int) -> DiGraph:
    # "locally sparse" web crawl: copying model, bounded out-degree.
    return web_graph(n, out_degree=6, copy_probability=0.65, seed=seed)


def _twitter(n: int, seed: int) -> DiGraph:
    # "locally dense" follower graph: large dense core.
    return locally_dense_graph(
        n, core_fraction=0.5, core_out_degree=18, periphery_out_degree=4, seed=seed
    )


def _friendster(n: int, seed: int) -> DiGraph:
    # very large social graph; dense preferential attachment.
    return preferential_attachment_graph(n, out_degree=18, seed=seed)


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            name="wiki-vote",
            kind="small",
            profile="directed vote graph; dense core, >60% zero in-degree",
            builder=_wiki_vote,
            sizes={"tiny": 200, "small": 1200, "paper": 7155},
            seed=101,
        ),
        DatasetSpec(
            name="hepth",
            kind="small",
            profile="undirected collaboration network (reciprocal edges)",
            builder=_hepth,
            sizes={"tiny": 200, "small": 1000, "paper": 9877},
            seed=102,
        ),
        DatasetSpec(
            name="as",
            kind="small",
            profile="autonomous systems topology; sparse power-law",
            builder=_as_topology,
            sizes={"tiny": 250, "small": 1500, "paper": 26475},
            seed=103,
        ),
        DatasetSpec(
            name="hepph",
            kind="small",
            profile="dense citation network (~12 edges/node)",
            builder=_hepph,
            sizes={"tiny": 250, "small": 1500, "paper": 34546},
            seed=104,
        ),
        DatasetSpec(
            name="livejournal",
            kind="large",
            profile="social network; heavy-tailed, ~14 edges/node",
            builder=_livejournal,
            sizes={"tiny": 500, "small": 8000, "paper": 60000},
            seed=105,
        ),
        DatasetSpec(
            name="it-2004",
            kind="large",
            profile="web crawl; locally sparse, bounded out-degree",
            builder=_it2004,
            sizes={"tiny": 600, "small": 12000, "paper": 100000},
            seed=106,
        ),
        DatasetSpec(
            name="twitter",
            kind="large",
            profile="follower graph; locally dense core",
            builder=_twitter,
            sizes={"tiny": 500, "small": 8000, "paper": 50000},
            seed=107,
        ),
        DatasetSpec(
            name="friendster",
            kind="large",
            profile="very large social graph; dense power-law",
            builder=_friendster,
            sizes={"tiny": 500, "small": 10000, "paper": 80000},
            seed=108,
        ),
    )
}


def load_dataset(name: str, scale: str = "small") -> DiGraph:
    """Build the named stand-in at the requested scale (deterministic)."""
    spec = DATASETS.get(name)
    if spec is None:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    return spec.build(scale)


def small_dataset_names() -> list[str]:
    """The four Figures 4-7 graphs, in the paper's order."""
    return ["wiki-vote", "hepth", "as", "hepph"]


def large_dataset_names() -> list[str]:
    """The four Table 4 / Figures 8-10 graphs, in the paper's order."""
    return ["livejournal", "it-2004", "twitter", "friendster"]
