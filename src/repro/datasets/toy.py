"""The paper's Figure 1 toy graph, reconstructed from the worked examples.

The paper never lists Figure 1's edge set, but the §3.2 running example pins
it down: probing the walk ``(a, b, a, b)`` yields printed intermediate scores
whose denominators reveal every in-degree, and the probe expansions identify
the in-neighbour sets.  Four in-edges are not uniquely determined by the
example (the second in-neighbours of ``b`` and ``e``, the third of ``c``, the
fourth of ``f``); those were resolved by checking all candidate assignments
against Table 2's Power-Method values at ``c = 0.25`` — the assignment below
matches every printed value to its rounding precision (max deviation 4e-4 on
values printed to 3-4 decimals), and the §3.2 probe score trace exactly.

Nodes ``a..h`` are mapped to ids 0..7.
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph

#: node labels in id order: TOY_NODE_NAMES[3] == "d".
TOY_NODE_NAMES = "abcdefgh"

#: decay factor used throughout the paper's running example (c', with
#: sqrt(c') = 0.5).
TOY_DECAY = 0.25

#: the reconstructed edge list (by label, source -> target).
TOY_EDGES_BY_NAME: tuple[tuple[str, str], ...] = (
    ("a", "b"), ("a", "c"),
    ("b", "a"), ("b", "c"), ("b", "d"), ("b", "e"),
    ("c", "a"), ("c", "f"), ("c", "g"), ("c", "h"),
    ("d", "f"), ("d", "g"), ("d", "h"),
    ("e", "b"), ("e", "f"), ("e", "g"), ("e", "h"),
    ("g", "c"), ("g", "e"),
    ("h", "f"),
)

#: same edges as integer node ids.
TOY_EDGES: tuple[tuple[int, int], ...] = tuple(
    (TOY_NODE_NAMES.index(s), TOY_NODE_NAMES.index(t)) for s, t in TOY_EDGES_BY_NAME
)

#: Table 2 of the paper: s(a, v) at c = 0.25, printed to 2-4 significant
#: digits ("computed by the Power Method within 1e-5 error").
TOY_EXPECTED_SIMRANK_FROM_A: dict[str, float] = {
    "a": 1.0,
    "b": 0.0096,
    "c": 0.049,
    "d": 0.131,
    "e": 0.070,
    "f": 0.041,
    "g": 0.051,
    "h": 0.051,
}

#: tolerance for comparing against Table 2 (its values are rounded to the
#: last printed digit, so half an ULP of the coarsest entry).
TOY_TABLE2_TOLERANCE = 5e-4


def toy_graph() -> DiGraph:
    """Build the Figure 1 toy graph (8 nodes, 20 edges)."""
    return DiGraph.from_edges(TOY_EDGES, num_nodes=len(TOY_NODE_NAMES))


def node_id(name: str) -> int:
    """Map a label ``a..h`` to its node id."""
    index = TOY_NODE_NAMES.find(name)
    if index < 0:
        raise KeyError(f"unknown toy node {name!r}")
    return index
