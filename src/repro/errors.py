"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Base class for errors related to graph construction or mutation."""


class NodeNotFoundError(GraphError, KeyError):
    """A referenced node does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """A referenced edge does not exist in the graph."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"edge ({source!r} -> {target!r}) is not in the graph")
        self.source = source
        self.target = target

    def __str__(self) -> str:  # KeyError.__str__ repr()s its args; undo that.
        return str(self.args[0])


class DuplicateEdgeError(GraphError):
    """An edge insertion would create a parallel edge in a simple graph."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"edge ({source!r} -> {target!r}) already exists")
        self.source = source
        self.target = target


class ConfigurationError(ReproError, ValueError):
    """An algorithm was configured with invalid or inconsistent parameters."""


class BudgetError(ConfigurationError):
    """The error budget of Theorem 2 cannot be satisfied by the given split."""


class QueryError(ReproError, ValueError):
    """A similarity query was issued with invalid arguments."""


class DatasetError(ReproError):
    """A dataset could not be generated, loaded, or parsed."""


class EvaluationError(ReproError):
    """An evaluation protocol (pooling, ground truth) was misused."""


class AnalysisError(ReproError):
    """The static-analysis suite was misconfigured (bad path, malformed
    baseline file, unknown rule) — distinct from *findings*, which are
    reported, not raised."""


class ServerError(ReproError):
    """The HTTP serving tier could not parse, admit, or answer a request."""


class ProtocolError(ServerError):
    """A malformed or oversized HTTP message (maps to a 4xx response)."""


class AdmissionError(ServerError):
    """A request was shed by admission control (maps to 503 + Retry-After)."""

    def __init__(self, lane: str, capacity: int, retry_after: float) -> None:
        super().__init__(
            f"admission lane {lane!r} is full ({capacity} in flight); "
            f"retry after {retry_after:g}s"
        )
        self.lane = lane
        self.capacity = capacity
        self.retry_after = retry_after
