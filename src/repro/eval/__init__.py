"""Evaluation machinery of §6: metrics, exact ground truth, pooling, query
sampling, and the experiment runner that regenerates the paper's tables and
figures."""

from repro.eval.ground_truth import GroundTruth, compute_ground_truth
from repro.eval.metrics import (
    abs_error_max,
    abs_error_mean,
    kendall_tau,
    ndcg_at_k,
    precision_at_k,
)
from repro.eval.metrics_export import flatten_metrics, render_prometheus, service_metrics
from repro.eval.pooling import PoolingEvaluation, pool_evaluate
from repro.eval.queries import sample_query_nodes
from repro.eval.reporting import format_table, markdown_table, write_json_report
from repro.eval.runner import MethodSpec, SingleSourceOutcome, TopKOutcome, run_single_source, run_topk

__all__ = [
    "GroundTruth",
    "MethodSpec",
    "PoolingEvaluation",
    "SingleSourceOutcome",
    "TopKOutcome",
    "abs_error_max",
    "abs_error_mean",
    "compute_ground_truth",
    "flatten_metrics",
    "format_table",
    "kendall_tau",
    "markdown_table",
    "ndcg_at_k",
    "pool_evaluate",
    "precision_at_k",
    "render_prometheus",
    "run_single_source",
    "run_topk",
    "sample_query_nodes",
    "service_metrics",
    "write_json_report",
]
