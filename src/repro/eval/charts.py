"""ASCII charts for the benchmark harness.

The paper's Figures 4-10 are scatter/line plots of accuracy against query
time.  matplotlib is unavailable in offline environments, so the harness
renders the same series as ASCII scatter plots: one glyph per method, log-
scaled axes where the paper uses them.  These charts are cosmetic — the
numeric tables remain the source of truth — but they make "who wins where"
visible at a glance in terminal output and in the persisted result files.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import EvaluationError

#: glyphs assigned to series in order (paper legend order fits in five).
GLYPHS = "o*x+#@%&"


@dataclass
class Series:
    """One method's points: ``(x, y)`` pairs plus a display name."""

    name: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one data point."""
        self.points.append((float(x), float(y)))


def _log_ticks(lo: float, hi: float) -> tuple[float, float]:
    """Snap a positive range outward to powers of ten."""
    return 10 ** math.floor(math.log10(lo)), 10 ** math.ceil(math.log10(hi))


def _scale(value: float, lo: float, hi: float, size: int, log: bool) -> int:
    if log:
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    if hi == lo:
        return 0
    position = (value - lo) / (hi - lo)
    return min(size - 1, max(0, round(position * (size - 1))))


def scatter_chart(
    series: list[Series],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    log_x: bool = False,
    log_y: bool = False,
    title: str | None = None,
) -> str:
    """Render series as an ASCII scatter plot.

    Log axes require strictly positive coordinates on that axis (points at
    zero are clamped to the smallest positive value present).
    """
    if not series or all(not s.points for s in series):
        raise EvaluationError("scatter_chart needs at least one point")
    if width < 10 or height < 4:
        raise EvaluationError("chart must be at least 10x4")

    xs = [p[0] for s in series for p in s.points]
    ys = [p[1] for s in series for p in s.points]
    if log_x:
        positive = [x for x in xs if x > 0]
        if not positive:
            raise EvaluationError("log x-axis needs a positive x value")
        floor = min(positive)
        xs = [max(x, floor) for x in xs]
    if log_y:
        positive = [y for y in ys if y > 0]
        if not positive:
            raise EvaluationError("log y-axis needs a positive y value")
        floor = min(positive)
        ys = [max(y, floor) for y in ys]

    x_lo, x_hi = (min(xs), max(xs))
    y_lo, y_hi = (min(ys), max(ys))
    if log_x:
        x_lo, x_hi = _log_ticks(x_lo, x_hi)
    if log_y:
        y_lo, y_hi = _log_ticks(y_lo, y_hi)
    if x_lo == x_hi:
        x_hi = x_lo + 1.0
    if y_lo == y_hi:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, one_series in enumerate(series):
        glyph = GLYPHS[index % len(GLYPHS)]
        for x, y in one_series.points:
            if log_x:
                x = max(x, x_lo)
            if log_y:
                y = max(y, y_lo)
            col = _scale(x, x_lo, x_hi, width, log_x)
            row = height - 1 - _scale(y, y_lo, y_hi, height, log_y)
            grid[row][col] = glyph

    def fmt(value: float) -> str:
        return f"{value:.3g}"

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (top={fmt(y_hi)}, bottom={fmt(y_lo)}"
                 f"{', log' if log_y else ''})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {fmt(x_lo)} .. {fmt(x_hi)}"
                 f"{' (log)' if log_x else ''}")
    legend = "  ".join(
        f"{GLYPHS[i % len(GLYPHS)]}={s.name}" for i, s in enumerate(series)
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)


def tradeoff_chart(
    rows: list[dict],
    x_key: str,
    y_key: str,
    label_key: str = "method",
    **kwargs,
) -> str:
    """Build a scatter chart straight from table rows (one series per label).

    This is the one-liner the benches use: the same ``rows`` that feed
    ``format_table`` feed the figure.
    """
    by_label: dict[str, Series] = {}
    for row in rows:
        label = str(row[label_key])
        series = by_label.setdefault(label, Series(label))
        series.add(float(row[x_key]), float(row[y_key]))
    return scatter_chart(list(by_label.values()), **kwargs)
