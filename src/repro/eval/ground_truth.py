"""Exact SimRank ground truth for the small-graph experiments (§6.1).

The paper computes ground truth with 55 Power Method iterations (< 1e-12
error at c = 0.6).  :class:`GroundTruth` wraps the resulting matrix with the
query shapes the metrics need, including tie-aware exact top-k sets.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.power import PowerMethod
from repro.errors import EvaluationError
from repro.graph.csr import as_csr


class GroundTruth:
    """Exact SimRank scores for every pair, with top-k helpers."""

    def __init__(self, matrix: np.ndarray, c: float) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise EvaluationError("ground truth matrix must be square")
        self._matrix = matrix
        self.c = c

    @property
    def num_nodes(self) -> int:
        return self._matrix.shape[0]

    def single_source(self, query: int) -> np.ndarray:
        """True scores ``s(query, .)`` as a read-only row."""
        self._check(query)
        return self._matrix[query]

    def pair(self, u: int, v: int) -> float:
        """Exact ``s(u, v)``."""
        self._check(u)
        self._check(v)
        return float(self._matrix[u, v])

    def topk_nodes(self, query: int, k: int) -> np.ndarray:
        """The exact top-k nodes by true score (ties broken by node id)."""
        self._check(query)
        scores = self._matrix[query].copy()
        scores[query] = -np.inf
        if k >= self.num_nodes:
            raise EvaluationError(f"k={k} too large for n={self.num_nodes}")
        return np.argsort(-scores, kind="stable")[:k].astype(np.int64)

    def kth_score(self, query: int, k: int) -> float:
        """The k-th largest true score among non-query nodes."""
        nodes = self.topk_nodes(query, k)
        return float(self._matrix[query][nodes[-1]])

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise EvaluationError(f"node {node} out of range [0, {self.num_nodes})")


def compute_ground_truth(
    graph, c: float = 0.6, iterations: int = 55, tol: float = 0.0
) -> GroundTruth:
    """Run the Power Method at the paper's settings and wrap the result."""
    csr = as_csr(graph)
    method = PowerMethod(csr, c=c)
    matrix = method.compute(iterations=iterations, tol=tol)
    return GroundTruth(matrix, c=c)
