"""Accuracy metrics of §6.1: AbsError, Precision@k, NDCG@k, Kendall τk.

All metrics take *true* SimRank scores as numpy arrays plus the method's
returned nodes/estimates, and match the paper's definitions:

- ``AbsError = max_{v != u} |s(u,v) - s~(u,v)|`` for single-source answers;
- ``Precision@k = |V_k ∩ V'_k| / k`` with a tie-tolerant ground-truth set
  (any node whose true score reaches the k-th best counts as correct —
  without this, equal-score nodes at the boundary make precision depend on
  arbitrary tie-breaks);
- ``NDCG@k = (1/Z_k) * sum_i (2^{s(u,v_i)} - 1) / log2(i + 1)`` with ``Z_k``
  from the ideal (true top-k) ordering;
- ``τk = (#concordant - #discordant) / (k (k-1) / 2)`` over pairs of returned
  nodes, judged against their true scores (ties contribute zero).
"""

from __future__ import annotations

import numpy as np

from repro.errors import EvaluationError


def _as_nodes(nodes) -> np.ndarray:
    arr = np.asarray(nodes, dtype=np.int64)
    if arr.ndim != 1:
        raise EvaluationError("node list must be 1-D")
    if len(set(arr.tolist())) != len(arr):
        raise EvaluationError("node list contains duplicates")
    return arr


def abs_error_max(estimates: np.ndarray, truth: np.ndarray, query: int) -> float:
    """Maximum absolute estimation error over all nodes except the query."""
    estimates = np.asarray(estimates, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if estimates.shape != truth.shape:
        raise EvaluationError(
            f"shape mismatch: estimates {estimates.shape} vs truth {truth.shape}"
        )
    diff = np.abs(estimates - truth)
    diff[query] = 0.0
    return float(diff.max()) if len(diff) else 0.0


def abs_error_mean(estimates: np.ndarray, truth: np.ndarray, query: int) -> float:
    """Mean absolute estimation error over all nodes except the query."""
    estimates = np.asarray(estimates, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if estimates.shape != truth.shape:
        raise EvaluationError(
            f"shape mismatch: estimates {estimates.shape} vs truth {truth.shape}"
        )
    if len(estimates) <= 1:
        return 0.0
    diff = np.abs(estimates - truth)
    diff[query] = 0.0
    return float(diff.sum() / (len(diff) - 1))


def precision_at_k(
    returned_nodes, true_scores: np.ndarray, k: int, query: int
) -> float:
    """Tie-tolerant Precision@k.

    A returned node is correct when its true score is at least the k-th
    largest true score among all non-query nodes.
    """
    returned = _as_nodes(returned_nodes)[:k]
    if len(returned) == 0:
        return 0.0
    true_scores = np.asarray(true_scores, dtype=np.float64)
    candidates = np.delete(true_scores, query)
    if k > len(candidates):
        raise EvaluationError(f"k={k} exceeds number of candidate nodes {len(candidates)}")
    kth_best = np.partition(candidates, -k)[-k]
    hits = sum(
        1 for node in returned.tolist() if node != query and true_scores[node] >= kth_best
    )
    return hits / k


def ndcg_at_k(returned_nodes, true_scores: np.ndarray, k: int, query: int) -> float:
    """NDCG@k with exponential gains ``2^s - 1`` (paper's §6.1 definition)."""
    returned = _as_nodes(returned_nodes)[:k]
    true_scores = np.asarray(true_scores, dtype=np.float64)
    discounts = 1.0 / np.log2(np.arange(2, k + 2, dtype=np.float64))

    gains = np.zeros(k, dtype=np.float64)
    for rank, node in enumerate(returned.tolist()):
        if node == query:
            raise EvaluationError("returned top-k list contains the query node")
        gains[rank] = 2.0 ** true_scores[node] - 1.0
    dcg = float((gains * discounts).sum())

    candidates = np.delete(true_scores, query)
    if k > len(candidates):
        raise EvaluationError(f"k={k} exceeds number of candidate nodes {len(candidates)}")
    ideal = np.sort(candidates)[::-1][:k]
    ideal_gains = 2.0**ideal - 1.0
    z_k = float((ideal_gains * discounts).sum())
    if z_k == 0.0:
        # no node has positive similarity: every list is ideal.
        return 1.0
    return dcg / z_k


def kendall_tau(returned_nodes, true_scores: np.ndarray, query: int | None = None) -> float:
    """Kendall τ of the returned ordering against the true scores.

    ``τk = (#concordant - #discordant) / (k (k-1) / 2)`` over all pairs of
    returned nodes; a pair is concordant when the list order agrees with the
    true-score order, discordant when it disagrees, and neutral on true-score
    ties.  Returns 1.0 for lists of length < 2 (nothing can be mis-ordered).
    """
    returned = _as_nodes(returned_nodes)
    true_scores = np.asarray(true_scores, dtype=np.float64)
    if query is not None and query in set(returned.tolist()):
        raise EvaluationError("returned top-k list contains the query node")
    k = len(returned)
    if k < 2:
        return 1.0
    scores = true_scores[returned]
    concordant = 0
    discordant = 0
    for i in range(k):
        # list position i is ranked above positions j > i
        later = scores[i + 1 :]
        concordant += int((scores[i] > later).sum())
        discordant += int((scores[i] < later).sum())
    total_pairs = k * (k - 1) / 2
    return (concordant - discordant) / total_pairs
