"""Prometheus text-format exposition of serving counters.

One formatter, two consumers: the HTTP tier's ``/metrics`` endpoint
(:mod:`repro.server.app`) and the workload driver's JSON reports
(:meth:`repro.workloads.driver.MethodReport.to_dict`) both flatten their
counters through :func:`service_metrics` / :func:`flatten_metrics` and
render with :func:`render_prometheus` — so a dashboard scraping the live
server and a notebook reading an offline report see identical metric
names for the same quantities.

The exposition format follows the Prometheus text format v0.0.4: one
``# HELP`` + ``# TYPE`` header pair per metric, ``gauge`` type throughout
(counters here are snapshots of monotone totals, which scrapers treat the
same way), names sorted for deterministic output.
"""

from __future__ import annotations

import math
import re
from typing import Mapping

from repro.errors import EvaluationError

__all__ = ["flatten_metrics", "render_prometheus", "sanitize_metric_name", "service_metrics"]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Coerce ``name`` into a valid Prometheus metric name.

    Invalid characters become ``_``; a leading digit gains a ``_`` prefix.
    Raises :class:`EvaluationError` if nothing salvageable remains.
    """
    cleaned = _NAME_BAD_CHARS.sub("_", str(name))
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    if not cleaned or not _NAME_OK.match(cleaned):
        raise EvaluationError(f"cannot derive a metric name from {name!r}")
    return cleaned


def flatten_metrics(*groups: Mapping[str, object] | None, **prefixed) -> dict[str, float]:
    """Merge counter mappings into one flat ``{name: float}`` dict.

    Positional ``groups`` merge as-is (later groups win on collisions);
    keyword arguments are mappings whose keys gain ``"<kwarg>_"`` prefixes
    — ``flatten_metrics(stats, cache=snapshot)`` yields ``cache_hits``,
    ``cache_hit_rate``, ...  Non-numeric and non-finite values raise
    :class:`EvaluationError` (an exposition that silently drops or
    stringifies a counter hides exactly the signal it exists to carry).
    """
    flat: dict[str, float] = {}

    def put(name: str, value: object) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise EvaluationError(
                f"metric {name!r} must be numeric, got {type(value).__name__}"
            )
        if not math.isfinite(value):
            raise EvaluationError(f"metric {name!r} must be finite, got {value!r}")
        flat[sanitize_metric_name(name)] = float(value)

    for group in groups:
        for name, value in (group or {}).items():
            put(name, value)
    for prefix, group in prefixed.items():
        for name, value in (group or {}).items():
            put(f"{prefix}_{name}", value)
    return flat


def service_metrics(
    stats,
    cache: Mapping[str, object] | None = None,
    extra: Mapping[str, object] | None = None,
) -> dict[str, float]:
    """Flatten one service's operational counters for exposition.

    ``stats`` is a :class:`repro.api.service.ServiceStats` (anything with
    an ``as_row()`` of numbers works); ``cache`` is a
    :meth:`repro.parallel.cache.ResultCache.snapshot` dict (exposed under
    a ``cache_`` prefix); ``extra`` adds caller-owned gauges (the HTTP
    tier's admission/coalescing counters) verbatim.
    """
    return flatten_metrics(stats.as_row(), extra, cache=cache)


def _format_value(value: float) -> str:
    """Prometheus sample value: integral floats render without the dot."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(
    metrics: Mapping[str, float],
    namespace: str = "repro",
    help_texts: Mapping[str, str] | None = None,
) -> str:
    """Render flat metrics as a Prometheus text-format exposition.

    Every metric becomes ``<namespace>_<name>`` with a ``# HELP`` /
    ``# TYPE <...> gauge`` header; names are emitted sorted so the output
    is deterministic (and therefore diffable in tests and reports).
    Returns the exposition including the trailing newline scrapers expect.
    """
    help_texts = help_texts or {}
    prefix = sanitize_metric_name(namespace) if namespace else ""
    lines: list[str] = []
    for name in sorted(metrics):
        value = metrics[name]
        full = f"{prefix}_{name}" if prefix else name
        help_text = help_texts.get(name, f"{name} (repro serving counter)")
        lines.append(f"# HELP {full} {help_text}")
        lines.append(f"# TYPE {full} gauge")
        lines.append(f"{full} {_format_value(float(value))}")
    return "\n".join(lines) + "\n" if lines else ""
