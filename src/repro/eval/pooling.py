"""Pooling evaluation for graphs too large for exact ground truth (§6.2).

The protocol, borrowed from IR: take the top-k lists of all competing
methods, merge them (deduplicated) into a *pool*, score the whole pool with a
trusted *expert*, and declare the k best pool members the ground truth.  Each
method is then scored against that pooled ground truth with the usual
metrics.  The pooled truth is "the best possible k nodes obtainable by any of
the algorithms considered", which is exactly what the paper's Figures 8-10
measure.

The expert here is a callable ``expert(query, nodes) -> scores``.  The paper
uses a single-pair Monte Carlo estimator with a 1e-4 error budget; at this
reproduction's scale the exact Power Method is affordable and strictly more
accurate — both are provided via :func:`monte_carlo_expert` and
:func:`exact_expert`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.baselines.monte_carlo import MonteCarlo, pair_sample_size
from repro.core.results import TopKResult
from repro.errors import EvaluationError
from repro.eval.metrics import kendall_tau, ndcg_at_k, precision_at_k

ExpertFn = Callable[[int, list[int]], np.ndarray]


@dataclass(frozen=True)
class PoolingEvaluation:
    """Per-method metrics against the pooled ground truth for one query."""

    query: int
    k: int
    pool: tuple[int, ...]
    truth_nodes: tuple[int, ...]
    precision: dict[str, float]
    ndcg: dict[str, float]
    tau: dict[str, float]


def exact_expert(ground_truth) -> ExpertFn:
    """Expert backed by a :class:`~repro.eval.ground_truth.GroundTruth`."""

    def expert(query: int, nodes: list[int]) -> np.ndarray:
        row = ground_truth.single_source(query)
        return np.array([row[node] for node in nodes], dtype=np.float64)

    return expert


def monte_carlo_expert(
    graph, c: float = 0.6, eps: float = 0.01, delta: float = 1e-3, seed=None
) -> ExpertFn:
    """Expert backed by single-pair Monte Carlo with a Chernoff budget.

    The paper uses eps = 1e-4 / delta = 1e-5; those budgets need ~1e9 walk
    pairs per pool entry, far outside Python's reach, so the defaults here
    are the documented scaled-down substitution (see DESIGN.md §2).
    """
    estimator = MonteCarlo(graph, c=c, seed=seed)
    samples = pair_sample_size(eps, delta)

    def expert(query: int, nodes: list[int]) -> np.ndarray:
        return np.array(
            [estimator.single_pair(query, node, samples) for node in nodes],
            dtype=np.float64,
        )

    return expert


def pool_evaluate(
    results: dict[str, TopKResult],
    expert: ExpertFn,
    k: int | None = None,
) -> PoolingEvaluation:
    """Evaluate competing top-k answers for one query via pooling.

    Parameters
    ----------
    results:
        ``{method name: TopKResult}``; all must answer the same query.
    expert:
        Trusted scorer for pool members.
    k:
        Evaluation depth; defaults to the smallest k among the results.
    """
    if not results:
        raise EvaluationError("need at least one method result to pool")
    queries = {res.query for res in results.values()}
    if len(queries) != 1:
        raise EvaluationError(f"results answer different queries: {sorted(queries)}")
    query = queries.pop()
    if k is None:
        k = min(res.k for res in results.values())
    if k <= 0:
        raise EvaluationError(f"k must be positive, got {k}")

    pool = sorted({int(n) for res in results.values() for n in res.nodes[:k]})
    if not pool:
        raise EvaluationError("pool is empty — no method returned any node")
    expert_scores = np.asarray(expert(query, pool), dtype=np.float64)
    if expert_scores.shape != (len(pool),):
        raise EvaluationError(
            f"expert returned shape {expert_scores.shape}, expected ({len(pool)},)"
        )

    # Dense true-score vector over the full node range: nodes outside the
    # pool get score 0 (they were considered relevant by nobody).
    num_nodes = max(max(pool), query) + 1
    for res in results.values():
        num_nodes = max(num_nodes, int(res.nodes.max()) + 1 if res.k else 0)
    truth = np.zeros(num_nodes, dtype=np.float64)
    truth[np.array(pool, dtype=np.int64)] = expert_scores

    order = np.argsort(-expert_scores, kind="stable")[:k]
    truth_nodes = tuple(int(pool[i]) for i in order)

    precision: dict[str, float] = {}
    ndcg: dict[str, float] = {}
    tau: dict[str, float] = {}
    for name, res in results.items():
        returned = res.nodes[:k]
        precision[name] = precision_at_k(returned, truth, k, query)
        ndcg[name] = ndcg_at_k(returned, truth, k, query)
        tau[name] = kendall_tau(returned, truth, query)

    return PoolingEvaluation(
        query=query,
        k=k,
        pool=tuple(pool),
        truth_nodes=truth_nodes,
        precision=precision,
        ndcg=ndcg,
        tau=tau,
    )
