"""Query workload sampling (§6.1/§6.2 protocol).

The paper selects query nodes "uniformly at random from those with nonzero
in-degrees" — a node with no in-edges has ``s(u, v) = 0`` against everything,
which would make every method trivially exact.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EvaluationError
from repro.graph.csr import as_csr
from repro.utils.rng import as_generator


def sample_query_nodes(
    graph,
    count: int,
    seed=None,
    require_nonzero_in_degree: bool = True,
) -> list[int]:
    """Sample ``count`` distinct query nodes (without replacement)."""
    if count <= 0:
        raise EvaluationError(f"count must be positive, got {count}")
    csr = as_csr(graph)
    rng = as_generator(seed)
    if require_nonzero_in_degree:
        eligible = np.nonzero(csr.in_degrees > 0)[0]
    else:
        eligible = np.arange(csr.num_nodes, dtype=np.int64)
    if len(eligible) == 0:
        raise EvaluationError("graph has no eligible query nodes")
    count = min(count, len(eligible))
    chosen = rng.choice(eligible, size=count, replace=False)
    return sorted(int(node) for node in chosen)
