"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; this module is the single place that formats them.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Iterable[Mapping[str, object]],
    columns: list[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict rows as an aligned ASCII table.

    >>> print(format_table([{"a": 1, "b": 2.5}], title="demo"))
    == demo ==
    a | b
    --+----
    1 | 2.500
    """
    rows = list(rows)
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    rendered = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) if rendered else len(col)
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(f"== {title} ==")
    lines.append(" | ".join(col.ljust(w) for col, w in zip(columns, widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for r in rendered:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(r, widths)).rstrip())
    return "\n".join(lines)
