"""Table rendering and report persistence for benchmark/workload output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; this module is the single place that formats them — as
aligned ASCII (:func:`format_table`), as GitHub markdown
(:func:`markdown_table`, used for the README's auto-generated methods
table), and as machine-readable JSON artifacts
(:func:`write_json_report`, used by the dynamic-workload benchmark).
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping
from pathlib import Path


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Iterable[Mapping[str, object]],
    columns: list[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict rows as an aligned ASCII table.

    >>> print(format_table([{"a": 1, "b": 2.5}], title="demo"))
    == demo ==
    a | b
    --+----
    1 | 2.500
    """
    rows = list(rows)
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    rendered = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) if rendered else len(col)
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(f"== {title} ==")
    lines.append(" | ".join(col.ljust(w) for col, w in zip(columns, widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for r in rendered:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(r, widths)).rstrip())
    return "\n".join(lines)


def markdown_table(
    rows: Iterable[Mapping[str, object]],
    columns: list[str] | None = None,
) -> str:
    """Render dict rows as a GitHub-flavoured markdown table.

    Column order follows ``columns`` when given, else first-seen key order
    across the rows (as in :func:`format_table`).  Cell values are
    formatted with the same rules as the ASCII renderer, so the two views
    of one result agree.

    >>> print(markdown_table([{"a": 1, "b": True}]))
    | a | b |
    |---|---|
    | 1 | yes |
    """
    rows = list(rows)
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(_format_value(row.get(col, "")) for col in columns) + " |"
        )
    return "\n".join(lines)


def write_json_report(path, payload: Mapping[str, object]) -> Path:
    """Persist one machine-readable experiment artifact as pretty JSON.

    Parent directories are created as needed; the file is overwritten.
    Returns the path written, for logging.

    Raises
    ------
    TypeError
        If ``payload`` contains values the JSON encoder cannot serialize
        (reports should pre-flatten via their ``to_dict()`` methods).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
