"""Experiment runner: execute method x query grids and aggregate the metrics
the paper reports.

A *method* is anything exposing ``single_source(query) -> SimRankResult``; a
:class:`MethodSpec` binds a display name to a zero-argument factory so each
experiment constructs fresh instances (with fresh seeds) per dataset.

:func:`run_single_source` reproduces the Figure 4 protocol (average max
AbsError and average query time over a query set); :func:`run_topk` the
Figures 5-7 protocol (Precision@k / NDCG@k / τk against exact ground truth).
Pooling runs (Figures 8-10) are assembled in the benchmark harness from
:func:`repro.eval.pooling.pool_evaluate` because they need all methods' lists
per query before anything can be scored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.errors import EvaluationError
from repro.eval.ground_truth import GroundTruth
from repro.eval.metrics import abs_error_max, kendall_tau, ndcg_at_k, precision_at_k


@dataclass(frozen=True)
class MethodSpec:
    """A named, lazily-constructed query method."""

    name: str
    factory: Callable[[], object]

    def build(self):
        """Construct a fresh method instance and check its interface."""
        method = self.factory()
        if not hasattr(method, "single_source"):
            raise EvaluationError(
                f"method {self.name!r} does not expose single_source()"
            )
        return method


@dataclass
class SingleSourceOutcome:
    """Aggregated Figure 4-style numbers for one method on one dataset."""

    method: str
    abs_errors: list[float] = field(default_factory=list)
    times: list[float] = field(default_factory=list)

    @property
    def mean_abs_error(self) -> float:
        return float(np.mean(self.abs_errors)) if self.abs_errors else 0.0

    @property
    def mean_time(self) -> float:
        return float(np.mean(self.times)) if self.times else 0.0

    def as_row(self) -> dict[str, object]:
        """Flat dict row for table rendering."""
        return {
            "method": self.method,
            "abs_error": self.mean_abs_error,
            "query_time_s": self.mean_time,
            "queries": len(self.abs_errors),
        }


@dataclass
class TopKOutcome:
    """Aggregated Figures 5-7 numbers for one method on one dataset."""

    method: str
    precisions: list[float] = field(default_factory=list)
    ndcgs: list[float] = field(default_factory=list)
    taus: list[float] = field(default_factory=list)
    times: list[float] = field(default_factory=list)

    @property
    def mean_precision(self) -> float:
        return float(np.mean(self.precisions)) if self.precisions else 0.0

    @property
    def mean_ndcg(self) -> float:
        return float(np.mean(self.ndcgs)) if self.ndcgs else 0.0

    @property
    def mean_tau(self) -> float:
        return float(np.mean(self.taus)) if self.taus else 0.0

    @property
    def mean_time(self) -> float:
        return float(np.mean(self.times)) if self.times else 0.0

    def as_row(self) -> dict[str, object]:
        """Flat dict row for table rendering."""
        return {
            "method": self.method,
            "precision": self.mean_precision,
            "ndcg": self.mean_ndcg,
            "tau": self.mean_tau,
            "query_time_s": self.mean_time,
            "queries": len(self.precisions),
        }


def run_single_source(
    methods: Sequence[MethodSpec],
    queries: Sequence[int],
    ground_truth: GroundTruth,
) -> list[SingleSourceOutcome]:
    """Figure 4 protocol: per-query max AbsError + query time, averaged."""
    if not queries:
        raise EvaluationError("need at least one query node")
    outcomes = []
    for spec in methods:
        method = spec.build()
        outcome = SingleSourceOutcome(method=spec.name)
        for query in queries:
            result = method.single_source(query)
            truth = ground_truth.single_source(query)
            outcome.abs_errors.append(
                abs_error_max(result.scores, truth, query)
            )
            outcome.times.append(result.elapsed)
        outcomes.append(outcome)
    return outcomes


def run_topk(
    methods: Sequence[MethodSpec],
    queries: Sequence[int],
    ground_truth: GroundTruth,
    k: int,
) -> list[TopKOutcome]:
    """Figures 5-7 protocol: top-k quality against exact ground truth."""
    if not queries:
        raise EvaluationError("need at least one query node")
    if k <= 0:
        raise EvaluationError(f"k must be positive, got {k}")
    outcomes = []
    for spec in methods:
        method = spec.build()
        outcome = TopKOutcome(method=spec.name)
        for query in queries:
            result = method.single_source(query)
            top = result.topk(k)
            truth = ground_truth.single_source(query)
            outcome.precisions.append(precision_at_k(top.nodes, truth, k, query))
            outcome.ndcgs.append(ndcg_at_k(top.nodes, truth, k, query))
            outcome.taus.append(kendall_tau(top.nodes, truth, query))
            outcome.times.append(result.elapsed)
        outcomes.append(outcome)
    return outcomes
