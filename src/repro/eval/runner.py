"""Experiment runner: execute method x query grids and aggregate the metrics
the paper reports.

A *method* is any :class:`repro.api.estimator.SimRankEstimator` (structural
conformance suffices); a :class:`MethodSpec` binds a display name to a
zero-argument factory so each experiment constructs fresh instances (with
fresh seeds) per dataset.  :meth:`MethodSpec.from_registry` is the standard
way to build specs — it routes construction through
:mod:`repro.api.registry`, so experiment scripts never hand-wire estimator
classes.

:func:`run_single_source` reproduces the Figure 4 protocol (average max
AbsError and average query time over a query set); :func:`run_topk` the
Figures 5-7 protocol (Precision@k / NDCG@k / τk against exact ground truth).
Both push the whole query set through the estimator's batched
``single_source_many`` hot path.  Pooling runs (Figures 8-10) are assembled
in the benchmark harness from :func:`repro.eval.pooling.pool_evaluate`
because they need all methods' lists per query before anything can be scored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.api.estimator import SimRankEstimator
from repro.api.registry import create
from repro.errors import EvaluationError
from repro.eval.ground_truth import GroundTruth
from repro.eval.metrics import abs_error_max, kendall_tau, ndcg_at_k, precision_at_k


@dataclass(frozen=True)
class MethodSpec:
    """A named, lazily-constructed query method (thin registry wrapper)."""

    name: str
    factory: Callable[[], object]

    @classmethod
    def from_registry(cls, method: str, graph, label: str | None = None, **config):
        """A spec whose factory constructs ``method`` through the registry.

        ``label`` overrides the display name (e.g. ``probesim(eps=0.05)``
        for parameter sweeps); ``config`` is passed to the registry factory
        on every :meth:`build`.
        """
        return cls(label or method, lambda: create(method, graph, **config))

    def build(self) -> SimRankEstimator:
        """Construct a fresh method instance and check protocol conformance."""
        method = self.factory()
        if not isinstance(method, SimRankEstimator):
            raise EvaluationError(
                f"method {self.name!r} does not conform to the SimRankEstimator "
                f"protocol (needs single_source/topk/single_source_many/sync/"
                f"capabilities)"
            )
        return method


@dataclass
class SingleSourceOutcome:
    """Aggregated Figure 4-style numbers for one method on one dataset."""

    method: str
    abs_errors: list[float] = field(default_factory=list)
    times: list[float] = field(default_factory=list)

    @property
    def mean_abs_error(self) -> float:
        return float(np.mean(self.abs_errors)) if self.abs_errors else 0.0

    @property
    def mean_time(self) -> float:
        return float(np.mean(self.times)) if self.times else 0.0

    def as_row(self) -> dict[str, object]:
        """Flat dict row for table rendering."""
        return {
            "method": self.method,
            "abs_error": self.mean_abs_error,
            "query_time_s": self.mean_time,
            "queries": len(self.abs_errors),
        }


@dataclass
class TopKOutcome:
    """Aggregated Figures 5-7 numbers for one method on one dataset."""

    method: str
    precisions: list[float] = field(default_factory=list)
    ndcgs: list[float] = field(default_factory=list)
    taus: list[float] = field(default_factory=list)
    times: list[float] = field(default_factory=list)

    @property
    def mean_precision(self) -> float:
        return float(np.mean(self.precisions)) if self.precisions else 0.0

    @property
    def mean_ndcg(self) -> float:
        return float(np.mean(self.ndcgs)) if self.ndcgs else 0.0

    @property
    def mean_tau(self) -> float:
        return float(np.mean(self.taus)) if self.taus else 0.0

    @property
    def mean_time(self) -> float:
        return float(np.mean(self.times)) if self.times else 0.0

    def as_row(self) -> dict[str, object]:
        """Flat dict row for table rendering."""
        return {
            "method": self.method,
            "precision": self.mean_precision,
            "ndcg": self.mean_ndcg,
            "tau": self.mean_tau,
            "query_time_s": self.mean_time,
            "queries": len(self.precisions),
        }


def run_single_source(
    methods: Sequence[MethodSpec],
    queries: Sequence[int],
    ground_truth: GroundTruth,
) -> list[SingleSourceOutcome]:
    """Figure 4 protocol: per-query max AbsError + query time, averaged."""
    if not queries:
        raise EvaluationError("need at least one query node")
    outcomes = []
    for spec in methods:
        method = spec.build()
        outcome = SingleSourceOutcome(method=spec.name)
        for query, result in zip(queries, method.single_source_many(list(queries))):
            truth = ground_truth.single_source(query)
            outcome.abs_errors.append(
                abs_error_max(result.scores, truth, query)
            )
            outcome.times.append(result.elapsed)
        outcomes.append(outcome)
    return outcomes


def run_topk(
    methods: Sequence[MethodSpec],
    queries: Sequence[int],
    ground_truth: GroundTruth,
    k: int,
) -> list[TopKOutcome]:
    """Figures 5-7 protocol: top-k quality against exact ground truth."""
    if not queries:
        raise EvaluationError("need at least one query node")
    if k <= 0:
        raise EvaluationError(f"k must be positive, got {k}")
    outcomes = []
    for spec in methods:
        method = spec.build()
        outcome = TopKOutcome(method=spec.name)
        for query, result in zip(queries, method.single_source_many(list(queries))):
            top = result.topk(k)
            truth = ground_truth.single_source(query)
            outcome.precisions.append(precision_at_k(top.nodes, truth, k, query))
            outcome.ndcgs.append(ndcg_at_k(top.nodes, truth, k, query))
            outcome.taus.append(kendall_tau(top.nodes, truth, query))
            outcome.times.append(result.elapsed)
        outcomes.append(outcome)
    return outcomes
