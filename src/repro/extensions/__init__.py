"""Extensions beyond the paper's evaluated system (its §7 directions).

- :class:`~repro.extensions.walk_index.WalkIndex` — a *lightweight* index
  (cached √c-walk trees with fine-grained invalidation) that accelerates
  repeated queries without giving up dynamic-graph support.
- :class:`~repro.extensions.adaptive_topk.AdaptiveTopK` — early-stopping
  top-k that spends walks only until the ranking is statistically settled.
"""

from repro.extensions.adaptive_topk import AdaptiveTopK
from repro.extensions.walk_index import WalkIndex

__all__ = ["AdaptiveTopK", "WalkIndex"]
