"""Adaptive top-k: stop sampling once the ranking is statistically settled.

The paper answers top-k queries by running the full single-source estimator
(whose walk count ``n_r`` is sized for *every* node to reach ``eps_a``
accuracy) and sorting.  That is often wasteful for top-k: if the query has a
clear-cut answer, far fewer walks separate the k-th and (k+1)-th scores.

This extension samples √c-walks in geometric batches and, after each batch,
applies a Hoeffding confidence radius to the running estimates: per-trial
estimators lie in ``[0, 1]``, so after ``T`` walks every mean is within

    r(T) = sqrt( ln(2 n R / delta) / (2 T) )

of its expectation with probability ``1 - delta`` (union over nodes and over
the at most ``R`` stopping checks).  When the gap between the k-th and
(k+1)-th running estimates exceeds ``2 r(T)``, the top-k *set* is already
correct w.h.p. and sampling stops.  If separation never happens (ties or
near-ties), the loop runs to the Theorem 1 walk count and the result falls
back to the standard ``eps_a`` guarantee — so adaptivity never costs
correctness, only saves time when the instance is easy.

This is an extension beyond the paper (its §7 asks for "higher effectiveness
... without incurring significant space and time"); the ablation bench
measures what it saves on clear-cut versus ambiguous queries.
"""

from __future__ import annotations

import math

import numpy as np

from repro.api.estimator import Capabilities, SimRankEstimator
from repro.core.config import ProbeSimConfig
from repro.core.engine import ProbeSim, QueryStats
from repro.core.results import SimRankResult, TopKResult
from repro.core.tree import ReachabilityTree
from repro.core.walks import sample_walk_batch
from repro.errors import QueryError
from repro.utils.timer import Timer


class AdaptiveTopK(SimRankEstimator):
    """Early-stopping top-k SimRank on top of a :class:`ProbeSim` engine.

    Parameters
    ----------
    initial_batch:
        Walks in the first batch; each subsequent batch doubles (geometric
        batching keeps the number of stopping checks logarithmic).
    """

    def __init__(
        self,
        graph,
        config: ProbeSimConfig | None = None,
        initial_batch: int = 64,
        **overrides,
    ) -> None:
        if initial_batch <= 0:
            raise QueryError(f"initial_batch must be positive, got {initial_batch}")
        self._engine = ProbeSim(graph, config=config, **overrides)
        self.initial_batch = initial_batch
        self.last_walks_used = 0
        self.last_stopped_early = False

    @property
    def engine(self) -> ProbeSim:
        return self._engine

    @property
    def config(self) -> ProbeSimConfig:
        return self._engine.config

    def single_source(self, query: int) -> SimRankResult:
        """Full-budget single-source answer via the underlying engine.

        Adaptivity only pays off for top-k (the stopping rule needs a k-th /
        (k+1)-th gap), so single-source queries run the standard Theorem 1
        walk budget and are simply relabelled.
        """
        result = self._engine.single_source(query)
        result.method = "probesim-adaptive"
        return result

    def sync(self) -> None:
        """Re-snapshot the engine's graph (index-free maintenance)."""
        self._engine.sync()

    def capabilities(self) -> Capabilities:
        """Approximate, index-free, dynamic-friendly (O(m) sync)."""
        return Capabilities(
            method="probesim-adaptive",
            exact=False,
            index_based=False,
            supports_dynamic=True,
            incremental_updates=False,
            vectorized=False,
            parallel_safe=True,
            native=False,
        )

    def topk(self, query: int, k: int) -> TopKResult:
        """Adaptive approximate top-k query (Definition 2)."""
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        engine = self._engine
        engine._check_query(query)
        cfg = engine.config
        graph = engine.graph
        n = graph.num_nodes
        if k >= n:
            raise QueryError(f"k={k} must be smaller than n={n}")

        walk_cap = cfg.walk_count(n)
        max_rounds = max(1, math.ceil(math.log2(walk_cap / self.initial_batch)) + 1)
        max_len = cfg.walk_truncation()

        timer = Timer()
        with timer:
            score_sum = np.zeros(n, dtype=np.float64)
            total_walks = 0
            batch_size = self.initial_batch
            stopped_early = False
            while total_walks < walk_cap:
                batch = min(batch_size, walk_cap - total_walks)
                walks = sample_walk_batch(
                    graph, query, batch, cfg.sqrt_c, engine._rng, max_length=max_len
                )
                tree = ReachabilityTree.from_walks(walks)
                stats = QueryStats(num_walks=batch)
                # estimate_from_tree returns the batch mean; re-weight to sum
                score_sum += batch * engine.estimate_from_tree(tree, stats)
                total_walks += batch
                batch_size *= 2

                means = score_sum / total_walks
                means[query] = -np.inf
                order = np.argsort(-means, kind="stable")
                gap = means[order[k - 1]] - means[order[k]]
                radius = math.sqrt(
                    math.log(2.0 * n * max_rounds / cfg.delta) / (2.0 * total_walks)
                )
                if gap > 2.0 * radius:
                    stopped_early = True
                    break

            estimates = score_sum / total_walks
            estimates[query] = 1.0

        self.last_walks_used = total_walks
        self.last_stopped_early = stopped_early
        result = SimRankResult(
            query=query,
            scores=estimates,
            num_walks=total_walks,
            elapsed=timer.elapsed,
            method="probesim-adaptive",
        )
        return result.topk(k)

    def __repr__(self) -> str:
        return (
            f"AdaptiveTopK(initial_batch={self.initial_batch}, "
            f"last_walks={self.last_walks_used}, "
            f"early={self.last_stopped_early})"
        )
