"""A lightweight walk-cache index (the paper's §7 future-work direction).

ProbeSim's per-query cost splits into (a) sampling ``nr`` √c-walks and
(b) probing their distinct prefixes.  For *repeated* queries on a slowly
changing graph, (a) and the tree construction can be cached: this index
stores, per registered node, the reverse-reachability tree of its walks.
Queries then reuse the tree and only re-run the probes — which always execute
against the *current* graph, so out-edge/in-degree changes are reflected
immediately.

Correctness under updates: a cached tree is a sample from the √c-walk
distribution, which depends only on the in-neighbour lists of the nodes the
walks visit.  An update touching node ``v`` (as the *target* of an inserted /
deleted in-edge, changing ``I(v)``) staleness-invalidates exactly the cached
trees whose walks visit ``v``; all other trees remain exact samples.  The
node-to-tree incidence map makes that invalidation O(#affected trees).

This keeps the index "lightweight" in the paper's sense: space is
O(#cached nodes * nr * E[walk length]) integers — independent of m — and
maintenance is a set lookup per update, versus TSF's Rg*n one-way graphs or
SLING's full rebuild.
"""

from __future__ import annotations

from repro.api.estimator import Capabilities, SimRankEstimator
from repro.core.config import ProbeSimConfig
from repro.core.engine import ProbeSim, QueryStats
from repro.core.results import SimRankResult
from repro.core.tree import ReachabilityTree, TreeNode
from repro.graph.dynamic import EdgeUpdate
from repro.utils.sizing import deep_sizeof
from repro.utils.timer import Timer


def _serialize_node(node: TreeNode) -> tuple:
    """``(graph_node, weight, children)`` nested tuples, insertion-ordered."""
    return (
        node.node,
        node.weight,
        tuple(_serialize_node(child) for child in node.children.values()),
    )


def _deserialize_node(packed: tuple) -> TreeNode:
    """Rebuild a :func:`_serialize_node` tree, preserving child order."""
    graph_node, weight, children = packed
    node = TreeNode(node=int(graph_node), weight=int(weight))
    for child in children:
        rebuilt = _deserialize_node(child)
        node.children[rebuilt.node] = rebuilt
    return node


class WalkIndex(SimRankEstimator):
    """Cached-walk accelerator around a :class:`ProbeSim` engine.

    >>> from repro.graph import DiGraph
    >>> g = DiGraph.from_edges([(0, 1), (1, 0), (2, 0), (2, 1)])
    >>> index = WalkIndex(g, eps_a=0.2, seed=3)
    >>> index.single_source(0).score(0)   # first call: samples + caches walks
    1.0
    >>> index.hit_rate                    # second call would be a cache hit
    0.0
    """

    def __init__(self, graph, config: ProbeSimConfig | None = None, **overrides) -> None:
        self._engine = ProbeSim(graph, config=config, **overrides)
        self._trees: dict[int, ReachabilityTree] = {}
        self._touched: dict[int, set[int]] = {}  # graph node -> cached query nodes
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def engine(self) -> ProbeSim:
        return self._engine

    @property
    def config(self) -> ProbeSimConfig:
        return self._engine.config

    @property
    def hit_rate(self) -> float:
        """Fraction of queries served from a cached tree (0.0 before any query)."""
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    @property
    def evictions(self) -> int:
        """Cached trees dropped by update invalidation (cumulative).

        Under a mixed query/update workload this is the walk cache's
        maintenance bill in kind: each eviction forces the next query on
        that node to re-sample its walks.  ``invalidate_all`` counts every
        tree it drops.
        """
        return self._evictions

    def warm(self, nodes) -> None:
        """Pre-sample walk trees for the given (expected hot) query nodes."""
        for node in nodes:
            self._tree_for(int(node))

    def single_source(self, query: int) -> SimRankResult:
        """ProbeSim single-source answer, reusing the cached walk tree."""
        timer = Timer()
        with timer:
            tree = self._tree_for(query)
            stats = QueryStats(num_walks=tree.num_walks)
            # Always probe deterministically: cache hits then return
            # bit-identical answers, which is the behaviour one expects of an
            # index (the hybrid's randomized switch would re-draw RNG state
            # on every hit).
            estimates = self._engine.estimate_from_tree(tree, stats, hybrid=False)
            estimates[query] = 1.0
            cfg = self.config
            if cfg.compensate_truncation and cfg.prune:
                estimates += cfg.budget.eps_t / 2.0
                estimates[query] = 1.0
        return SimRankResult(
            query=query,
            scores=estimates,
            num_walks=tree.num_walks,
            elapsed=timer.elapsed,
            method="probesim-walkindex",
        )

    # topk() and single_source_many() come from SimRankEstimator.

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #

    def sync(self) -> None:
        """Coarse maintenance: re-snapshot the engine and drop every tree.

        Used after bulk graph replacement; for individual edge updates the
        incremental :meth:`apply_updates` path keeps unaffected trees alive.
        """
        self.invalidate_all()

    def capabilities(self) -> Capabilities:
        """Approximate, index-based (cached trees), incremental maintenance."""
        return Capabilities(
            method="probesim-walkindex",
            exact=False,
            index_based=True,
            supports_dynamic=True,
            incremental_updates=True,
            vectorized=False,
            parallel_safe=True,
            native=False,
        )

    def apply_updates(self, updates) -> None:
        """Incremental maintenance hook: fine-grained eviction per update."""
        for update in updates:
            self.apply_update(update)

    def apply_update(self, update: EdgeUpdate) -> None:
        """Invalidate cached trees whose walk distribution the update stales.

        The caller mutates the graph itself (and the engine refreshes its
        snapshot); this method only evicts cache entries that visit the
        update's *target* node, whose in-neighbour list changed.
        """
        self._engine.sync()
        stale_queries = self._touched.get(update.target, set()).copy()
        for query in stale_queries:
            self._evict(query)

    def invalidate_all(self) -> None:
        """Drop every cached tree (e.g. after bulk graph replacement)."""
        self._evictions += len(self._trees)
        self._trees.clear()
        self._touched.clear()
        self._engine.sync()

    def index_bytes(self) -> int:
        """Actual Python memory of the cached trees + incidence map."""
        return deep_sizeof(self._trees) + deep_sizeof(self._touched)

    def payload_bytes(self) -> int:
        """C-equivalent payload: what a native implementation would store.

        Each tree node is (graph node id, weight, child pointer) ~ 16 bytes;
        each incidence entry (node -> query) ~ 8 bytes.  This is the number
        comparable to :meth:`repro.baselines.tsf.TSFIndex.index_bytes`, which
        measures raw array payloads.
        """
        tree_nodes = sum(t.num_tree_nodes() + 1 for t in self._trees.values())
        incidence = sum(len(qs) for qs in self._touched.values())
        return 16 * tree_nodes + 8 * incidence

    @property
    def num_cached(self) -> int:
        return len(self._trees)

    # ------------------------------------------------------------------ #
    # state export / restore (the storage tier's warm-start sidecar)
    # ------------------------------------------------------------------ #

    def export_state(self) -> dict:
        """The cached trees + incidence map as a plain serialisable dict.

        Trees serialise in DFS pre-order with children in *insertion*
        order, and :meth:`restore_state` rebuilds them in that order — so a
        restored tree probes its prefixes in exactly the original sequence
        and cached queries stay bit-identical across a save/restore cycle.
        Used by :mod:`repro.storage.sidecar` to warm-start the index from a
        file instead of re-sampling every walk at restart.
        """
        return {
            "trees": {
                query: _serialize_node(tree.root)
                for query, tree in self._trees.items()
            },
            "touched": {
                node: sorted(queries)
                for node, queries in self._touched.items() if queries
            },
        }

    def restore_state(self, state: dict) -> int:
        """Replace the cache with a previously exported state.

        Returns the number of restored trees.  Hit/miss/eviction counters
        are untouched: a warm start is not a query.  The caller is
        responsible for only restoring state exported against the *same*
        graph and configuration (the sidecar file carries both digests and
        refuses mismatches).
        """
        trees: dict[int, ReachabilityTree] = {}
        for query, packed in state["trees"].items():
            tree = ReachabilityTree(root=int(query))
            tree.root = _deserialize_node(packed)
            trees[int(query)] = tree
        self._trees = trees
        self._touched = {
            int(node): set(queries)
            for node, queries in state["touched"].items()
        }
        return len(self._trees)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _tree_for(self, query: int) -> ReachabilityTree:
        tree = self._trees.get(query)
        if tree is not None:
            self._hits += 1
            return tree
        self._misses += 1
        engine = self._engine
        engine._check_query(query)
        stats = QueryStats()
        walks = engine._sample_walks(query, stats)
        tree = ReachabilityTree.from_walks(walks)
        self._trees[query] = tree
        visited = {node for walk in walks for node in walk}
        for node in visited:
            self._touched.setdefault(node, set()).add(query)
        return tree

    def _evict(self, query: int) -> None:
        if self._trees.pop(query, None) is not None:
            self._evictions += 1
        for queries in self._touched.values():
            queries.discard(query)

    def __repr__(self) -> str:
        return (
            f"WalkIndex(cached={self.num_cached}, hits={self._hits}, "
            f"misses={self._misses}, evictions={self._evictions})"
        )
