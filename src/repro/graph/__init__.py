"""Graph substrate: dynamic directed graphs, frozen CSR snapshots, generators,
edge-list I/O, statistics, and update streams.

The SimRank algorithms in :mod:`repro.core` and :mod:`repro.baselines` operate
on :class:`~repro.graph.csr.CSRGraph` snapshots for speed; the mutable
:class:`~repro.graph.digraph.DiGraph` is the dynamic-graph substrate the paper
motivates (index-free queries keep working across updates because a snapshot
is just the graph itself, not a precomputed index).
"""

from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.dynamic import (
    EdgeUpdate,
    MutationSampler,
    UpdateStream,
    apply_update,
    apply_stream,
    generate_update_stream,
    touched_neighborhood,
)
from repro.graph.generators import (
    chung_lu_graph,
    erdos_renyi_graph,
    locally_dense_graph,
    preferential_attachment_graph,
    web_graph,
)
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.stats import GraphStats, compute_stats

__all__ = [
    "CSRGraph",
    "DiGraph",
    "EdgeUpdate",
    "GraphStats",
    "MutationSampler",
    "UpdateStream",
    "apply_stream",
    "apply_update",
    "chung_lu_graph",
    "compute_stats",
    "erdos_renyi_graph",
    "generate_update_stream",
    "locally_dense_graph",
    "preferential_attachment_graph",
    "read_edge_list",
    "touched_neighborhood",
    "web_graph",
    "write_edge_list",
]
