"""Frozen CSR (compressed sparse row) snapshot of a directed graph.

All hot kernels (deterministic PROBE propagation, randomized PROBE sampling,
vectorized Monte Carlo walks, the Power Method) run on this representation:
plain int32/float64 numpy arrays, so every per-edge operation happens inside
numpy/scipy rather than the Python interpreter.

Both directions are materialised:

``out_indptr/out_indices``
    out-adjacency — followed by PROBE traversals.
``in_indptr/in_indices``
    in-adjacency — followed by √c-walks and used for uniform in-neighbour
    sampling.

The snapshot also precomputes the two sparse operators used throughout:

``forward_operator`` (``P_hat``)
    ``P_hat[x, v] = 1 / |I(v)|`` for each edge ``x -> v``; one deterministic
    PROBE iteration is ``score @ P_hat`` scaled by √c.
``transition`` (``P``)
    the column-stochastic matrix of Eq. 10 (``P[x, v] = 1 / |I(v)|``), kept as
    CSC for the Power Method.  ``P_hat`` and ``P`` share values; both handles
    are exposed because callers want different sparse layouts.
"""

from __future__ import annotations

from hashlib import blake2b

import numpy as np
from scipy import sparse

from repro.errors import GraphError, NodeNotFoundError
from repro.graph.digraph import DiGraph

#: canonical field order and dtypes of a CSR snapshot's shareable payload.
#: The 8-byte ``indptr`` arrays come first so every array starts at an
#: 8-byte-aligned offset when the fields are packed back to back into one
#: flat buffer (the layout :mod:`repro.parallel.shm` maps into
#: ``multiprocessing.shared_memory`` and :mod:`repro.storage.snapshot`
#: maps into an on-disk snapshot file).
SHM_LAYOUT = (
    ("out_indptr", np.int64),
    ("in_indptr", np.int64),
    ("out_indices", np.int32),
    ("in_indices", np.int32),
)


def payload_layout(num_nodes: int, num_edges: int):
    """``([(field, dtype, offset, count)], total_bytes)`` for one packed payload.

    The single source of truth for how a CSR snapshot's adjacency arrays
    pack back to back into one flat buffer: the shared-memory segments of
    :mod:`repro.parallel.shm` and the mmap-backed snapshot files of
    :mod:`repro.storage.snapshot` both follow it, which is what lets either
    side be reconstructed zero-copy from the other's bytes.  ``total_bytes``
    is at least 1 (``SharedMemory`` refuses zero-byte segments).
    """
    layout = []
    offset = 0
    for field, dtype in SHM_LAYOUT:
        count = num_nodes + 1 if field.endswith("indptr") else num_edges
        layout.append((field, np.dtype(dtype), offset, count))
        offset += int(np.dtype(dtype).itemsize) * count
    return layout, max(offset, 1)


class CSRGraph:
    """Immutable CSR snapshot of a :class:`DiGraph`.

    Build with :meth:`from_digraph` or :meth:`from_edges`.  All arrays are
    read-only views; mutating the source ``DiGraph`` afterwards does not
    affect a snapshot.
    """

    def __init__(
        self,
        num_nodes: int,
        out_indptr: np.ndarray,
        out_indices: np.ndarray,
        in_indptr: np.ndarray,
        in_indices: np.ndarray,
    ) -> None:
        self.num_nodes = int(num_nodes)
        self.num_edges = int(len(out_indices))
        self.out_indptr = out_indptr
        self.out_indices = out_indices
        self.in_indptr = in_indptr
        self.in_indices = in_indices
        for arr in (out_indptr, out_indices, in_indptr, in_indices):
            arr.setflags(write=False)

        self.in_degrees = np.diff(in_indptr).astype(np.int64)
        self.out_degrees = np.diff(out_indptr).astype(np.int64)
        self.in_degrees.setflags(write=False)
        self.out_degrees.setflags(write=False)

        self._forward_operator: sparse.csr_matrix | None = None
        self._backward_operator: sparse.csr_matrix | None = None
        self._transition_csc: sparse.csc_matrix | None = None
        self._inv_in_degrees: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_digraph(cls, graph: DiGraph) -> "CSRGraph":
        """Snapshot a mutable :class:`DiGraph` into CSR arrays."""
        n = graph.num_nodes
        m = graph.num_edges

        out_indptr = np.zeros(n + 1, dtype=np.int64)
        in_indptr = np.zeros(n + 1, dtype=np.int64)
        out_indices = np.empty(m, dtype=np.int32)
        in_indices = np.empty(m, dtype=np.int32)

        pos = 0
        for node in range(n):
            targets = graph.out_neighbors(node)
            out_indices[pos : pos + len(targets)] = targets
            pos += len(targets)
            out_indptr[node + 1] = pos
        pos = 0
        for node in range(n):
            sources = graph.in_neighbors(node)
            in_indices[pos : pos + len(sources)] = sources
            pos += len(sources)
            in_indptr[node + 1] = pos

        return cls(n, out_indptr, out_indices, in_indptr, in_indices)

    @classmethod
    def from_edges(cls, edges, num_nodes: int | None = None) -> "CSRGraph":
        """Snapshot directly from an edge list (via a temporary DiGraph)."""
        return cls.from_digraph(DiGraph.from_edges(edges, num_nodes=num_nodes))

    def to_digraph(self) -> DiGraph:
        """Thaw the snapshot back into a mutable :class:`DiGraph`."""
        graph = DiGraph(self.num_nodes)
        for source in range(self.num_nodes):
            for target in self.out_neighbors(source):
                graph.add_edge(source, int(target))
        return graph

    # ------------------------------------------------------------------ #
    # adjacency queries
    # ------------------------------------------------------------------ #

    def out_neighbors(self, node: int) -> np.ndarray:
        """Out-neighbour ids of ``node`` as a read-only int32 array."""
        self._check_node(node)
        return self.out_indices[self.out_indptr[node] : self.out_indptr[node + 1]]

    def in_neighbors(self, node: int) -> np.ndarray:
        """In-neighbour ids of ``node`` as a read-only int32 array."""
        self._check_node(node)
        return self.in_indices[self.in_indptr[node] : self.in_indptr[node + 1]]

    def in_degree(self, node: int) -> int:
        """Number of in-edges of ``node``."""
        self._check_node(node)
        return int(self.in_degrees[node])

    def out_degree(self, node: int) -> int:
        """Number of out-edges of ``node``."""
        self._check_node(node)
        return int(self.out_degrees[node])

    def edges(self):
        """Iterate over all edges as ``(source, target)`` pairs."""
        for source in range(self.num_nodes):
            for target in self.out_neighbors(source):
                yield (source, int(target))

    def random_in_neighbor(self, node: int, rng: np.random.Generator) -> int | None:
        """Uniformly sample one in-neighbour of ``node``; ``None`` if none."""
        start = self.in_indptr[node]
        end = self.in_indptr[node + 1]
        if start == end:
            return None
        return int(self.in_indices[start + int(rng.integers(end - start))])

    def sample_in_neighbors(
        self, nodes: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Vectorised uniform in-neighbour sampling for an array of nodes.

        Nodes with zero in-degree map to ``-1``.  This is the inner step of
        the vectorized Monte Carlo walker and of randomized PROBE.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        starts = self.in_indptr[nodes]
        degrees = self.in_degrees[nodes]
        result = np.full(len(nodes), -1, dtype=np.int64)
        alive = degrees > 0
        if np.any(alive):
            offsets = (rng.random(int(alive.sum())) * degrees[alive]).astype(np.int64)
            result[alive] = self.in_indices[starts[alive] + offsets]
        return result

    # ------------------------------------------------------------------ #
    # sparse operators
    # ------------------------------------------------------------------ #

    @property
    def forward_operator(self) -> sparse.csr_matrix:
        """CSR matrix ``P_hat`` with ``P_hat[x, v] = 1/|I(v)|`` per edge x->v.

        One deterministic PROBE iteration is ``next = sqrt(c) * (score @ P_hat)``.
        """
        if self._forward_operator is None:
            self._forward_operator = self._build_operator().tocsr()
        return self._forward_operator

    @property
    def backward_operator(self) -> sparse.csr_matrix:
        """CSR matrix ``B = P_hat^T``: ``B[v, x] = 1/|I(v)|`` per edge x->v.

        Stored row-major so the probe iteration ``next = sqrt(c) * (B @ score)``
        is a fast CSR matvec.
        """
        if self._backward_operator is None:
            self._backward_operator = self._build_operator().T.tocsr()
        return self._backward_operator

    @property
    def inv_in_degrees(self) -> np.ndarray:
        """``1 / in_degree`` per node (0.0 for sources with no in-edges)."""
        if self._inv_in_degrees is None:
            with np.errstate(divide="ignore"):
                inv = np.where(self.in_degrees > 0, 1.0 / self.in_degrees, 0.0)
            inv.setflags(write=False)
            self._inv_in_degrees = inv
        return self._inv_in_degrees

    @property
    def transition(self) -> sparse.csc_matrix:
        """Column-stochastic transition matrix ``P`` of Eq. 10 (CSC layout)."""
        if self._transition_csc is None:
            self._transition_csc = self._build_operator().tocsc()
        return self._transition_csc

    def _build_operator(self) -> sparse.coo_matrix:
        n = self.num_nodes
        if self.num_edges == 0:
            return sparse.coo_matrix((n, n), dtype=np.float64)
        # COO triples from the in-adjacency: column v repeats in_degree[v] times.
        cols = np.repeat(np.arange(n, dtype=np.int64), self.in_degrees)
        rows = self.in_indices.astype(np.int64)
        with np.errstate(divide="ignore"):
            inv_deg = np.where(self.in_degrees > 0, 1.0 / self.in_degrees, 0.0)
        vals = inv_deg[cols]
        return sparse.coo_matrix((vals, (rows, cols)), shape=(n, n))

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #

    def shm_payload(self) -> dict[str, np.ndarray]:
        """The adjacency arrays in the canonical shareable form.

        Returns ``{field: array}`` for every ``SHM_LAYOUT`` field, each
        C-contiguous and normalised to the canonical dtype (a no-copy
        passthrough for snapshots built by :meth:`from_digraph`).  This is
        the exact byte payload :class:`repro.parallel.shm.SharedCSRGraph`
        places in shared memory; a snapshot is reconstructed zero-copy on
        the other side by handing the mapped views straight back to
        :class:`CSRGraph`.
        """
        return {
            field: np.ascontiguousarray(getattr(self, field), dtype=dtype)
            for field, dtype in SHM_LAYOUT
        }

    def payload_bytes(self) -> int:
        """Bytes of the raw adjacency arrays (the 'graph size' of Table 4)."""
        return int(
            self.out_indptr.nbytes
            + self.out_indices.nbytes
            + self.in_indptr.nbytes
            + self.in_indices.nbytes
        )

    def digest(self) -> str:
        """Canonical 128-bit hex digest of the adjacency payload.

        Hashes ``(num_nodes, num_edges)`` plus every ``SHM_LAYOUT`` array in
        canonical dtype and order, so two snapshots digest equal exactly when
        their CSR bytes are identical — regardless of whether the arrays live
        in process memory, a shared-memory segment, or an mmap-backed
        snapshot file.  This is the bit-identity witness the storage tier's
        crash-recovery contract asserts on.
        """
        hasher = blake2b(digest_size=16)
        hasher.update(
            np.array([self.num_nodes, self.num_edges], dtype=np.int64).tobytes()
        )
        for field, dtype in SHM_LAYOUT:
            hasher.update(
                np.ascontiguousarray(getattr(self, field), dtype=dtype).tobytes()
            )
        return hasher.hexdigest()

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise NodeNotFoundError(node)

    def __repr__(self) -> str:
        return f"CSRGraph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"


def as_csr(graph: "DiGraph | CSRGraph") -> CSRGraph:
    """Accept either representation and return a CSR snapshot.

    Public algorithm entry points call this so users can pass whichever form
    they have; a ``CSRGraph`` passes through without copying.
    """
    if isinstance(graph, CSRGraph):
        return graph
    if isinstance(graph, DiGraph):
        return CSRGraph.from_digraph(graph)
    raise GraphError(f"expected DiGraph or CSRGraph, got {type(graph).__name__}")
