"""A mutable, simple, directed graph with integer-labelled nodes.

This is the dynamic-graph substrate of the reproduction.  Nodes are dense
integers ``0..n-1`` (the loaders and generators guarantee this), edges are
unweighted and simple (no parallel edges; self-loops are rejected because
SimRank's random-surfer formulation never uses them and the paper's graphs are
simple).

Both in- and out-adjacency are maintained because every algorithm in the paper
needs both directions: √c-walks follow *in*-edges while PROBE traversals follow
*out*-edges.

Design notes
------------
Adjacency is stored as ``list[list[int]]`` plus ``list[set[int]]`` membership
sets.  The list gives O(1) uniform sampling of a random in-neighbour (the inner
loop of every Monte Carlo algorithm here), the set gives O(1) edge-existence
checks and O(degree) deletion.  This doubles memory versus a bare list but the
graph itself is small next to the walk/score workspaces.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import DuplicateEdgeError, EdgeNotFoundError, GraphError, NodeNotFoundError


class DiGraph:
    """Simple directed graph over nodes ``0..n-1`` supporting edge updates.

    >>> g = DiGraph(3)
    >>> g.add_edge(0, 1)
    >>> g.add_edge(2, 1)
    >>> sorted(g.in_neighbors(1))
    [0, 2]
    >>> g.num_edges
    2
    """

    def __init__(self, num_nodes: int = 0) -> None:
        if num_nodes < 0:
            raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
        self._out: list[list[int]] = [[] for _ in range(num_nodes)]
        self._in: list[list[int]] = [[] for _ in range(num_nodes)]
        self._out_sets: list[set[int]] = [set() for _ in range(num_nodes)]
        self._num_edges = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(
        cls, edges: Iterable[tuple[int, int]], num_nodes: int | None = None
    ) -> "DiGraph":
        """Build a graph from ``(source, target)`` pairs.

        When ``num_nodes`` is omitted it is inferred as ``max node id + 1``.
        Duplicate edges in the input raise :class:`DuplicateEdgeError` —
        silently merging them would hide data bugs in loaders.
        """
        edge_list = [(int(s), int(t)) for s, t in edges]
        if num_nodes is None:
            num_nodes = 1 + max((max(s, t) for s, t in edge_list), default=-1)
        graph = cls(num_nodes)
        for source, target in edge_list:
            graph.add_edge(source, target)
        return graph

    def copy(self) -> "DiGraph":
        """Deep copy of the graph (adjacency is copied, not shared)."""
        clone = DiGraph(self.num_nodes)
        clone._out = [list(adj) for adj in self._out]
        clone._in = [list(adj) for adj in self._in]
        clone._out_sets = [set(s) for s in self._out_sets]
        clone._num_edges = self._num_edges
        return clone

    def reversed(self) -> "DiGraph":
        """A new graph with every edge direction flipped."""
        clone = DiGraph(self.num_nodes)
        clone._out = [list(adj) for adj in self._in]
        clone._in = [list(adj) for adj in self._out]
        clone._out_sets = [set(adj) for adj in self._in]
        clone._num_edges = self._num_edges
        return clone

    def edge_subgraph(self, keep) -> "DiGraph":
        """A same-node-set copy containing only edges where ``keep(s, t)``.

        Both the out- and in-adjacency lists of the copy preserve this
        graph's *relative* neighbour order — not merely the edge set.  The
        serving layer's shard subgraphs rely on that: adjacency-order-
        sensitive samplers (TSF draws neighbours by list position) must see
        the induced order of the parent graph, so a keep-everything
        predicate yields a graph whose CSR snapshot is byte-identical to
        the parent's.
        """
        clone = DiGraph(self.num_nodes)
        clone._out = [
            [t for t in adj if keep(s, t)] for s, adj in enumerate(self._out)
        ]
        clone._in = [
            [s for s in adj if keep(s, t)] for t, adj in enumerate(self._in)
        ]
        clone._out_sets = [set(adj) for adj in clone._out]
        clone._num_edges = sum(len(adj) for adj in clone._out)
        return clone

    def add_node(self) -> int:
        """Append a fresh isolated node and return its id."""
        self._out.append([])
        self._in.append([])
        self._out_sets.append(set())
        return self.num_nodes - 1

    def add_edge(self, source: int, target: int) -> None:
        """Insert the edge ``source -> target``.

        Raises :class:`DuplicateEdgeError` if present, :class:`GraphError` for
        self-loops, :class:`NodeNotFoundError` for unknown endpoints.
        """
        self._check_node(source)
        self._check_node(target)
        if source == target:
            raise GraphError(f"self-loops are not allowed (node {source})")
        if target in self._out_sets[source]:
            raise DuplicateEdgeError(source, target)
        self._out[source].append(target)
        self._out_sets[source].add(target)
        self._in[target].append(source)
        self._num_edges += 1

    def remove_edge(self, source: int, target: int) -> None:
        """Delete the edge ``source -> target`` (raises if absent)."""
        self._check_node(source)
        self._check_node(target)
        if target not in self._out_sets[source]:
            raise EdgeNotFoundError(source, target)
        self._out[source].remove(target)
        self._out_sets[source].remove(target)
        self._in[target].remove(source)
        self._num_edges -= 1

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        return len(self._out)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def nodes(self) -> range:
        """All node ids (a ``range``; nodes are dense integers)."""
        return range(self.num_nodes)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all edges as ``(source, target)`` pairs."""
        for source, targets in enumerate(self._out):
            for target in targets:
                yield (source, target)

    def has_edge(self, source: int, target: int) -> bool:
        """Whether the edge ``source -> target`` exists (O(1))."""
        self._check_node(source)
        self._check_node(target)
        return target in self._out_sets[source]

    def out_neighbors(self, node: int) -> list[int]:
        """Out-neighbour list of ``node`` (the live list — do not mutate)."""
        self._check_node(node)
        return self._out[node]

    def in_neighbors(self, node: int) -> list[int]:
        """In-neighbour list of ``node`` (the live list — do not mutate)."""
        self._check_node(node)
        return self._in[node]

    def out_degree(self, node: int) -> int:
        """Number of out-edges of ``node``."""
        self._check_node(node)
        return len(self._out[node])

    def in_degree(self, node: int) -> int:
        """Number of in-edges of ``node``."""
        self._check_node(node)
        return len(self._in[node])

    def random_in_neighbor(self, node: int, rng: np.random.Generator) -> int | None:
        """Uniformly sample one in-neighbour of ``node``; ``None`` if it has none.

        This is the single step of a √c-walk / random walk along in-edges.
        """
        neighbors = self._in[node]
        if not neighbors:
            return None
        return neighbors[int(rng.integers(len(neighbors)))]

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise NodeNotFoundError(node)

    # ------------------------------------------------------------------ #
    # dunder
    # ------------------------------------------------------------------ #

    def __contains__(self, node: object) -> bool:
        return isinstance(node, int) and 0 <= node < self.num_nodes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        if self.num_nodes != other.num_nodes or self.num_edges != other.num_edges:
            return False
        return self._out_sets == other._out_sets

    def __repr__(self) -> str:
        return f"DiGraph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"
