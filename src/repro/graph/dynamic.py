"""Dynamic-graph substrate: edge update streams.

The paper's headline claim is that an *index-free* algorithm naturally
supports real-time queries on dynamic graphs, while index-based methods must
rebuild (SLING) or incrementally patch (TSF) their structures.  This module
provides the workload half of that claim: reproducible streams of edge
insertions/deletions, and helpers to apply them to a :class:`DiGraph` (and,
for TSF, to notify an index — see :meth:`repro.baselines.tsf.TSFIndex.apply_update`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_positive_int


@dataclass(frozen=True)
class EdgeUpdate:
    """One graph mutation: insert or delete the edge ``source -> target``."""

    kind: str  # "insert" | "delete"
    source: int
    target: int

    def __post_init__(self) -> None:
        if self.kind not in ("insert", "delete"):
            raise GraphError(f"update kind must be 'insert' or 'delete', got {self.kind!r}")
        if self.source == self.target:
            raise GraphError("updates may not create self-loops")


class UpdateStream:
    """An immutable sequence of :class:`EdgeUpdate` operations."""

    def __init__(self, updates: list[EdgeUpdate]) -> None:
        self._updates = tuple(updates)

    def __len__(self) -> int:
        return len(self._updates)

    def __iter__(self) -> Iterator[EdgeUpdate]:
        return iter(self._updates)

    def __getitem__(self, index: int) -> EdgeUpdate:
        return self._updates[index]

    @property
    def num_inserts(self) -> int:
        return sum(1 for u in self._updates if u.kind == "insert")

    @property
    def num_deletes(self) -> int:
        return len(self._updates) - self.num_inserts

    def __repr__(self) -> str:
        return (
            f"UpdateStream(len={len(self)}, inserts={self.num_inserts}, "
            f"deletes={self.num_deletes})"
        )


def generate_update_stream(
    graph: DiGraph,
    num_updates: int,
    insert_fraction: float = 0.5,
    seed=None,
) -> UpdateStream:
    """Generate a valid update stream against (a simulated evolution of) ``graph``.

    The stream is generated against a scratch copy so that every insert is of
    an absent edge and every delete is of a present edge *at the moment it is
    applied in order*.  ``graph`` itself is not modified.
    """
    check_positive_int("num_updates", num_updates)
    check_fraction("insert_fraction", insert_fraction)
    rng = as_generator(seed)
    scratch = graph.copy()
    n = scratch.num_nodes
    if n < 2:
        raise GraphError("need at least 2 nodes to generate updates")

    updates: list[EdgeUpdate] = []
    edge_pool: list[tuple[int, int]] = list(scratch.edges())
    while len(updates) < num_updates:
        want_insert = rng.random() < insert_fraction or scratch.num_edges == 0
        if want_insert:
            for _ in range(100):
                s = int(rng.integers(n))
                t = int(rng.integers(n))
                if s != t and not scratch.has_edge(s, t):
                    scratch.add_edge(s, t)
                    edge_pool.append((s, t))
                    updates.append(EdgeUpdate("insert", s, t))
                    break
            else:
                raise GraphError("could not find a free edge slot after 100 attempts")
        else:
            while edge_pool:
                idx = int(rng.integers(len(edge_pool)))
                s, t = edge_pool[idx]
                edge_pool[idx] = edge_pool[-1]
                edge_pool.pop()
                if scratch.has_edge(s, t):
                    scratch.remove_edge(s, t)
                    updates.append(EdgeUpdate("delete", s, t))
                    break
    return UpdateStream(updates)


def apply_update(graph: DiGraph, update: EdgeUpdate) -> None:
    """Apply one update in place."""
    if update.kind == "insert":
        graph.add_edge(update.source, update.target)
    else:
        graph.remove_edge(update.source, update.target)


def apply_stream(graph: DiGraph, stream: UpdateStream) -> DiGraph:
    """Apply a full stream in place and return ``graph`` for chaining."""
    for update in stream:
        apply_update(graph, update)
    return graph
