"""Dynamic-graph substrate: edge update streams.

The paper's headline claim is that an *index-free* algorithm naturally
supports real-time queries on dynamic graphs, while index-based methods must
rebuild (SLING) or incrementally patch (TSF) their structures.  This module
provides the workload half of that claim: reproducible streams of edge
insertions/deletions, and helpers to apply them to a :class:`DiGraph` (and,
for TSF, to notify an index — see :meth:`repro.baselines.tsf.TSFIndex.apply_update`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_positive_int


@dataclass(frozen=True)
class EdgeUpdate:
    """One graph mutation: insert or delete the edge ``source -> target``."""

    kind: str  # "insert" | "delete"
    source: int
    target: int

    def __post_init__(self) -> None:
        if self.kind not in ("insert", "delete"):
            raise GraphError(f"update kind must be 'insert' or 'delete', got {self.kind!r}")
        if self.source == self.target:
            raise GraphError("updates may not create self-loops")


class UpdateStream:
    """An immutable sequence of :class:`EdgeUpdate` operations."""

    def __init__(self, updates: list[EdgeUpdate]) -> None:
        self._updates = tuple(updates)

    def __len__(self) -> int:
        return len(self._updates)

    def __iter__(self) -> Iterator[EdgeUpdate]:
        return iter(self._updates)

    def __getitem__(self, index: int) -> EdgeUpdate:
        return self._updates[index]

    @property
    def num_inserts(self) -> int:
        return sum(1 for u in self._updates if u.kind == "insert")

    @property
    def num_deletes(self) -> int:
        return len(self._updates) - self.num_inserts

    def __repr__(self) -> str:
        return (
            f"UpdateStream(len={len(self)}, inserts={self.num_inserts}, "
            f"deletes={self.num_deletes})"
        )


class MutationSampler:
    """Stateful sampler of *valid* edge mutations against an evolving graph.

    The sampler owns a scratch copy of ``graph`` (unless ``copy=False``) and
    mutates it as updates are drawn, so every insert targets an absent edge
    and every delete targets a present edge *at the moment it is sampled*.
    This is the building block under both :func:`generate_update_stream`
    (one homogeneous stream up front) and the workload generator in
    :mod:`repro.workloads.generator`, which interleaves update draws with
    query arrivals and therefore needs the evolving-graph state to persist
    between draws.

    Parameters
    ----------
    graph:
        Starting graph.  Copied by default, so the caller's graph is never
        modified; pass ``copy=False`` only when the caller hands over a
        scratch graph it wants mutated in place.
    insert_fraction:
        Probability in ``[0, 1]`` that a draw is an insertion.  Deletions
        fall back to insertions while the scratch graph has no edges.
    seed:
        Anything :func:`repro.utils.rng.as_generator` accepts; pass an
        existing generator to share one RNG stream with the caller.

    Raises
    ------
    GraphError
        If ``graph`` has fewer than 2 nodes (no valid edge slot exists), or
        ``insert_fraction`` is outside ``[0, 1]``.
    """

    def __init__(self, graph: DiGraph, insert_fraction: float = 0.5,
                 seed=None, copy: bool = True) -> None:
        check_fraction("insert_fraction", insert_fraction)
        self._scratch = graph.copy() if copy else graph
        if self._scratch.num_nodes < 2:
            raise GraphError("need at least 2 nodes to generate updates")
        self._insert_fraction = insert_fraction
        self._rng = as_generator(seed)
        self._edge_pool: list[tuple[int, int]] = list(self._scratch.edges())

    @property
    def graph(self) -> DiGraph:
        """The evolving scratch graph (reflects every sampled update)."""
        return self._scratch

    def sample(self) -> EdgeUpdate:
        """Draw one valid update and apply it to the scratch graph.

        Returns
        -------
        EdgeUpdate
            An insertion of a currently-absent edge or a deletion of a
            currently-present edge.

        Raises
        ------
        GraphError
            If no absent edge slot is found after 100 attempts (the scratch
            graph is nearly complete).
        """
        scratch, rng = self._scratch, self._rng
        n = scratch.num_nodes
        want_insert = rng.random() < self._insert_fraction or scratch.num_edges == 0
        if want_insert:
            for _ in range(100):
                s = int(rng.integers(n))
                t = int(rng.integers(n))
                if s != t and not scratch.has_edge(s, t):
                    scratch.add_edge(s, t)
                    self._edge_pool.append((s, t))
                    return EdgeUpdate("insert", s, t)
            raise GraphError("could not find a free edge slot after 100 attempts")
        edge_pool = self._edge_pool
        while edge_pool:
            idx = int(rng.integers(len(edge_pool)))
            s, t = edge_pool[idx]
            edge_pool[idx] = edge_pool[-1]
            edge_pool.pop()
            # the pool may hold edges already deleted by an earlier draw —
            # skip those lazily instead of scanning the pool on every delete
            if scratch.has_edge(s, t):
                scratch.remove_edge(s, t)
                return EdgeUpdate("delete", s, t)
        # every pooled edge was stale; the scratch graph must be empty now,
        # so fall back to an insertion (mirrors the want_insert guard above)
        return self.sample()

    def sample_many(self, count: int) -> list[EdgeUpdate]:
        """Draw ``count`` updates in order (each applied to the scratch graph)."""
        check_positive_int("count", count)
        return [self.sample() for _ in range(count)]


def generate_update_stream(
    graph: DiGraph,
    num_updates: int,
    insert_fraction: float = 0.5,
    seed=None,
) -> UpdateStream:
    """Generate a valid update stream against (a simulated evolution of) ``graph``.

    The stream is generated against a scratch copy so that every insert is of
    an absent edge and every delete is of a present edge *at the moment it is
    applied in order*.  ``graph`` itself is not modified.

    Parameters
    ----------
    graph:
        Graph the stream must be valid against (not modified).
    num_updates:
        Stream length; must be positive.
    insert_fraction:
        Probability in ``[0, 1]`` that each update is an insertion.
    seed:
        Anything :func:`repro.utils.rng.as_generator` accepts.

    Returns
    -------
    UpdateStream
        ``num_updates`` operations, applicable to ``graph`` in order.

    Raises
    ------
    GraphError
        If ``graph`` has fewer than 2 nodes or the sampler cannot find a
        free edge slot (see :meth:`MutationSampler.sample`).
    """
    check_positive_int("num_updates", num_updates)
    sampler = MutationSampler(graph, insert_fraction=insert_fraction, seed=seed)
    return UpdateStream(sampler.sample_many(num_updates))


def apply_update(graph: DiGraph, update: EdgeUpdate) -> None:
    """Apply one update in place."""
    if update.kind == "insert":
        graph.add_edge(update.source, update.target)
    else:
        graph.remove_edge(update.source, update.target)


def touched_neighborhood(graph, updates) -> set[int]:
    """Nodes whose cached single-source answers an update burst stales most.

    The set is the updated edges' endpoints plus the endpoints' current
    in/out neighbors.  SimRank perturbations decay geometrically (``c``
    per hop) with distance from a flipped edge, so this 1-hop set catches
    the dominant movement; it is a locality heuristic, not a completeness
    guarantee — answers further out can still drift by the residual
    (higher-order) terms.  The serving layers use it for fine-grained
    result-cache invalidation under delta maintenance
    (:meth:`repro.parallel.cache.ResultCache.invalidate_nodes`), trading
    that bounded staleness for warm hot keys.

    ``graph`` may be read before or after the burst is applied: an update
    only toggles the edge between its own endpoints, and both endpoints are
    always included, so any neighbor reachable through a burst-internal
    edge is already in the set either way.  Works on :class:`DiGraph` and
    :class:`~repro.graph.csr.CSRGraph` alike.
    """
    touched: set[int] = set()
    for update in updates:
        for node in (update.source, update.target):
            touched.add(int(node))
            touched.update(int(n) for n in graph.in_neighbors(node))
            touched.update(int(n) for n in graph.out_neighbors(node))
    return touched


def apply_stream(graph: DiGraph, stream: UpdateStream) -> DiGraph:
    """Apply a full stream in place and return ``graph`` for chaining."""
    for update in stream:
        apply_update(graph, update)
    return graph
