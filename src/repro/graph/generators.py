"""Seeded synthetic graph generators.

These produce the stand-in datasets described in DESIGN.md §2: the paper's
benchmark graphs come from SNAP/LAW downloads that are unavailable offline, so
each generator targets the *structural profile* that drives the relative
behaviour of the SimRank algorithms — degree skew, direction, and local
density — at a reproducible, reduced scale.

All generators return a :class:`~repro.graph.digraph.DiGraph`, take an
explicit ``seed``, and are deterministic given it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_positive_int


def erdos_renyi_graph(
    num_nodes: int, num_edges: int, seed=None, allow_fewer: bool = True
) -> DiGraph:
    """Uniform random simple digraph with ``num_edges`` distinct edges.

    Edges are drawn by rejection sampling over ``(s, t)`` pairs with
    ``s != t``.  With ``allow_fewer=False`` a :class:`GraphError` is raised if
    the requested count exceeds ``n * (n - 1)``.
    """
    check_positive_int("num_nodes", num_nodes)
    if num_edges < 0:
        raise GraphError(f"num_edges must be non-negative, got {num_edges}")
    capacity = num_nodes * (num_nodes - 1)
    if num_edges > capacity:
        if not allow_fewer:
            raise GraphError(
                f"cannot place {num_edges} simple edges on {num_nodes} nodes "
                f"(capacity {capacity})"
            )
        num_edges = capacity
    rng = as_generator(seed)
    graph = DiGraph(num_nodes)
    seen: set[tuple[int, int]] = set()
    # Draw in vectorised blocks; rejection keeps the distribution uniform.
    while len(seen) < num_edges:
        need = num_edges - len(seen)
        block = max(64, int(need * 1.3))
        sources = rng.integers(0, num_nodes, size=block)
        targets = rng.integers(0, num_nodes, size=block)
        for s, t in zip(sources.tolist(), targets.tolist()):
            if s == t:
                continue
            key = (s, t)
            if key in seen:
                continue
            seen.add(key)
            graph.add_edge(s, t)
            if len(seen) == num_edges:
                break
    return graph


def preferential_attachment_graph(
    num_nodes: int, out_degree: int, seed=None
) -> DiGraph:
    """Directed Barabási–Albert-style graph (heavy-tailed in-degrees).

    Node ``i`` (for ``i >= out_degree``) attaches ``out_degree`` out-edges to
    earlier nodes chosen preferentially by current in-degree (+1 smoothing).
    Models citation networks (HepPh/HepTh-like) and AS topologies: old nodes
    accumulate in-links, producing the power-law in-degree skew that makes
    PROBE frontiers blow up through hub nodes.
    """
    check_positive_int("num_nodes", num_nodes)
    check_positive_int("out_degree", out_degree)
    if out_degree >= num_nodes:
        raise GraphError("out_degree must be smaller than num_nodes")
    rng = as_generator(seed)
    graph = DiGraph(num_nodes)
    # attachment pool: node ids repeated once per (in-degree + 1).
    pool: list[int] = list(range(out_degree))
    for node in range(out_degree, num_nodes):
        chosen: set[int] = set()
        attempts = 0
        while len(chosen) < min(out_degree, node) and attempts < 50 * out_degree:
            target = pool[int(rng.integers(len(pool)))]
            attempts += 1
            if target != node:
                chosen.add(target)
        for target in chosen:
            graph.add_edge(node, target)
            pool.append(target)
        pool.append(node)
    return graph


def chung_lu_graph(
    in_weights: np.ndarray, out_weights: np.ndarray, seed=None
) -> DiGraph:
    """Directed Chung–Lu graph: edge ``s -> t`` appears with probability
    ``min(1, out_weights[s] * in_weights[t] / W)`` where ``W = sum(out_weights)``.

    Gives independent control of in-/out-degree sequences, which is how the
    stand-ins match a target dataset's degree profile directly.
    """
    in_weights = np.asarray(in_weights, dtype=np.float64)
    out_weights = np.asarray(out_weights, dtype=np.float64)
    if in_weights.shape != out_weights.shape or in_weights.ndim != 1:
        raise GraphError("in_weights and out_weights must be 1-D arrays of equal length")
    if np.any(in_weights < 0) or np.any(out_weights < 0):
        raise GraphError("Chung-Lu weights must be non-negative")
    n = len(in_weights)
    total = float(out_weights.sum())
    if total <= 0:
        return DiGraph(n)
    rng = as_generator(seed)
    graph = DiGraph(n)
    # Expected edge count is sum_s sum_t w_out[s] w_in[t] / W = sum(w_in).
    # Sample per-source targets with a Poisson-style approximation: each
    # source s draws Binomial-ish count proportional to its weight, targets
    # by the in-weight distribution, then rejects duplicates/self-loops.
    in_probs = in_weights / in_weights.sum() if in_weights.sum() > 0 else None
    if in_probs is None:
        return graph
    for source in range(n):
        expected = out_weights[source] * in_weights.sum() / total
        count = rng.poisson(expected)
        if count == 0:
            continue
        targets = rng.choice(n, size=int(count), p=in_probs)
        for target in np.unique(targets).tolist():
            if target != source and not graph.has_edge(source, int(target)):
                graph.add_edge(source, int(target))
    return graph


def locally_dense_graph(
    num_nodes: int,
    core_fraction: float = 0.3,
    core_out_degree: int = 12,
    periphery_out_degree: int = 2,
    seed=None,
) -> DiGraph:
    """'Locally dense' social-style graph (Wiki-Vote / Twitter profile).

    A dense preferential-attachment core holds ``core_fraction`` of the nodes;
    the rest are periphery nodes with *zero in-degree* that point into the
    core (the paper observes >60% of Wiki-Vote nodes have zero in-degree while
    the remainder form a dense subgraph).  Walks from core nodes stay in the
    dense core, which is what stresses meeting-point enumeration.
    """
    check_positive_int("num_nodes", num_nodes)
    check_fraction("core_fraction", core_fraction)
    rng = as_generator(seed)
    core_size = max(core_out_degree + 1, int(num_nodes * core_fraction))
    if core_size >= num_nodes:
        core_size = num_nodes
    graph = preferential_attachment_graph(core_size, core_out_degree, seed=rng)
    # densify the core with random extra edges among core nodes.
    extra = core_size * max(1, core_out_degree // 2)
    for _ in range(extra):
        s = int(rng.integers(core_size))
        t = int(rng.integers(core_size))
        if s != t and not graph.has_edge(s, t):
            graph.add_edge(s, t)
    # periphery: zero in-degree nodes pointing into the core.
    for _ in range(core_size, num_nodes):
        node = graph.add_node()
        targets = rng.choice(core_size, size=min(periphery_out_degree, core_size), replace=False)
        for target in targets.tolist():
            graph.add_edge(node, int(target))
    return graph


def web_graph(
    num_nodes: int,
    out_degree: int = 6,
    copy_probability: float = 0.6,
    seed=None,
) -> DiGraph:
    """'Locally sparse' web-style graph (IT-2004 profile) via the copying model.

    Each new page links to ``out_degree`` targets; with ``copy_probability``
    a target is copied from a random earlier page's links (creating hub/
    authority structure and long chains), otherwise chosen uniformly.  Out-
    degrees are bounded, in-degrees heavy-tailed but the graph lacks a single
    dense core — walks disperse quickly, which is what makes web graphs cheap
    for ProbeSim relative to social graphs.
    """
    check_positive_int("num_nodes", num_nodes)
    check_positive_int("out_degree", out_degree)
    check_fraction("copy_probability", copy_probability)
    rng = as_generator(seed)
    graph = DiGraph(num_nodes)
    start = min(out_degree + 1, num_nodes)
    for node in range(1, start):
        graph.add_edge(node, int(rng.integers(node)))
    for node in range(start, num_nodes):
        prototype = int(rng.integers(node))
        proto_links = graph.out_neighbors(prototype)
        chosen: set[int] = set()
        for _ in range(out_degree):
            if proto_links and rng.random() < copy_probability:
                target = int(proto_links[int(rng.integers(len(proto_links)))])
            else:
                target = int(rng.integers(node))
            if target != node:
                chosen.add(target)
        for target in chosen:
            graph.add_edge(node, target)
    return graph


def undirected_as_digraph(num_nodes: int, attachment: int = 3, seed=None) -> DiGraph:
    """Undirected collaboration-style graph (HepTh profile) stored as a digraph.

    Each undirected edge is materialised as a reciprocal pair, matching how
    the paper treats undirected datasets ("HepTh undirected" in Table 3).
    """
    check_positive_int("num_nodes", num_nodes)
    base = preferential_attachment_graph(num_nodes, attachment, seed=seed)
    graph = DiGraph(num_nodes)
    for source, target in base.edges():
        if not graph.has_edge(source, target):
            graph.add_edge(source, target)
        if not graph.has_edge(target, source):
            graph.add_edge(target, source)
    return graph
