"""Edge-list I/O in the SNAP plain-text format.

The paper's datasets ship as whitespace-separated ``source target`` lines with
``#`` comments (SNAP) — these functions read and write that format, with
optional gzip transparency, plus relabelling of arbitrary node ids onto the
dense ``0..n-1`` range the library requires.
"""

from __future__ import annotations

import gzip
from pathlib import Path

from repro.errors import DatasetError
from repro.graph.digraph import DiGraph


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def read_edge_list(
    path: str | Path,
    comments: str = "#",
    relabel: bool = True,
    deduplicate: bool = True,
    drop_self_loops: bool = True,
) -> DiGraph:
    """Load a directed graph from a SNAP-style edge list.

    Parameters
    ----------
    relabel:
        Map arbitrary integer node ids to dense ``0..n-1`` in first-seen
        order (SNAP files are sparse-id).  With ``relabel=False`` ids are used
        verbatim and must already be dense.
    deduplicate:
        Silently drop repeated edges (real SNAP dumps contain them).
    drop_self_loops:
        Silently drop ``u -> u`` lines (SimRank graphs are simple).
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"edge list not found: {path}")

    # Edges stream straight into the graph: no intermediate edge list, no
    # separate seen-set — the graph's own adjacency answers the duplicate
    # check in O(1), so peak memory is the final graph plus one line.
    graph = DiGraph(0)
    label_of: dict[int, int] = {}

    def intern(raw: int) -> int:
        if not relabel:
            return raw
        node = label_of.get(raw)
        if node is None:
            node = graph.add_node()
            label_of[raw] = node
        return node

    with _open_text(path, "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(comments):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise DatasetError(f"{path}:{lineno}: expected 'source target', got {line!r}")
            try:
                raw_s, raw_t = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise DatasetError(f"{path}:{lineno}: non-integer node id in {line!r}") from exc
            source, target = intern(raw_s), intern(raw_t)
            if source == target:
                if drop_self_loops:
                    continue
                raise DatasetError(f"{path}:{lineno}: self-loop on node {raw_s}")
            if not relabel:
                # verbatim ids: the node range grows to cover kept edges
                # only, matching the old "max id over kept edges" rule
                while graph.num_nodes <= max(source, target):
                    graph.add_node()
            if graph.has_edge(source, target):
                if deduplicate:
                    continue
                raise DatasetError(f"{path}:{lineno}: duplicate edge {raw_s} -> {raw_t}")
            graph.add_edge(source, target)
    return graph


def write_edge_list(graph: DiGraph, path: str | Path, header: str | None = None) -> None:
    """Write ``graph`` as a SNAP-style edge list (gzip if path ends in .gz)."""
    path = Path(path)
    with _open_text(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# nodes: {graph.num_nodes} edges: {graph.num_edges}\n")
        for source, target in graph.edges():
            handle.write(f"{source}\t{target}\n")
