"""Graph summary statistics (Table 3 of the paper).

:func:`compute_stats` produces the row the paper prints for each dataset
(type, n, m) plus the degree-profile numbers DESIGN.md uses to argue that the
synthetic stand-ins preserve the relevant structure (degree skew, fraction of
zero-in-degree nodes, reciprocity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import as_csr


@dataclass(frozen=True)
class GraphStats:
    """Summary row for one graph."""

    num_nodes: int
    num_edges: int
    is_undirected: bool
    mean_in_degree: float
    max_in_degree: int
    max_out_degree: int
    zero_in_degree_fraction: float
    reciprocity: float
    in_degree_gini: float

    def as_row(self) -> dict[str, object]:
        """Flat dict for table rendering."""
        return {
            "type": "undirected" if self.is_undirected else "directed",
            "n": self.num_nodes,
            "m": self.num_edges,
            "avg_in_deg": round(self.mean_in_degree, 2),
            "max_in_deg": self.max_in_degree,
            "zero_in_frac": round(self.zero_in_degree_fraction, 3),
            "reciprocity": round(self.reciprocity, 3),
            "gini": round(self.in_degree_gini, 3),
        }


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = uniform, →1 = skewed)."""
    if len(values) == 0:
        return 0.0
    total = float(values.sum())
    if total == 0:
        return 0.0
    sorted_vals = np.sort(values.astype(np.float64))
    n = len(sorted_vals)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float((2.0 * (ranks * sorted_vals).sum()) / (n * total) - (n + 1.0) / n)


def compute_stats(graph) -> GraphStats:
    """Compute a :class:`GraphStats` summary for a DiGraph or CSRGraph."""
    csr = as_csr(graph)
    n, m = csr.num_nodes, csr.num_edges
    in_deg = csr.in_degrees
    out_deg = csr.out_degrees

    reciprocal = 0
    if m > 0:
        edge_set = set()
        for source in range(n):
            for target in csr.out_neighbors(source):
                edge_set.add((source, int(target)))
        reciprocal = sum(1 for s, t in edge_set if (t, s) in edge_set)
    reciprocity = reciprocal / m if m else 0.0

    return GraphStats(
        num_nodes=n,
        num_edges=m,
        is_undirected=(m > 0 and reciprocity == 1.0),
        mean_in_degree=float(in_deg.mean()) if n else 0.0,
        max_in_degree=int(in_deg.max()) if n else 0,
        max_out_degree=int(out_deg.max()) if n else 0,
        zero_in_degree_fraction=float((in_deg == 0).mean()) if n else 0.0,
        reciprocity=reciprocity,
        in_degree_gini=_gini(in_deg),
    )
