"""Shared-memory multiprocess serving: the scale-out layer.

The sequential :class:`~repro.api.service.SimRankService` tops out at one
core for pure-Python estimators (the GIL serialises their interpreter
work).  This package lifts serving to process-level parallelism while
keeping the graph physically shared:

:mod:`~repro.parallel.shm`
    :class:`~repro.parallel.shm.SharedCSRGraph` — CSR adjacency arrays in
    ``multiprocessing.shared_memory``, reattached zero-copy in workers,
    versioned by a generation counter (the *epoch*) so workers detect
    graph changes.
:mod:`~repro.parallel.pool`
    :class:`~repro.parallel.pool.ParallelSimRankService` — the same
    query/maintenance surface as the sequential service, fanned out over a
    persistent worker-process pool with batched deterministic dispatch and
    worker-crash recovery.
:mod:`~repro.parallel.cache`
    :class:`~repro.parallel.cache.ResultCache` — an update-aware LRU for
    single-source results keyed ``(method, query, epoch)``, invalidated by
    epoch bumps.
:mod:`~repro.parallel.partition`
    Node-ownership partitioning (hash and degree-balanced) plus the
    incident-edge shard-subgraph rule the shard layer routes by.
:mod:`~repro.parallel.sharded`
    :class:`~repro.parallel.sharded.ShardedSimRankService` — a router over
    ``P`` per-shard worker groups (one shared graph segment, delta log,
    and cache each), same service surface, shard-parallel batch fan-out.

Both services can also serve straight off the persistent tier
(:mod:`repro.storage`): ``snapshot=`` mmap-attaches a CSR snapshot file
(or a :func:`~repro.parallel.sharded.write_shard_snapshots` directory)
instead of rebuilding shared segments, and ``store=`` (unsharded) makes
the service durable — every accepted update burst is write-ahead-logged
and each compaction checkpoints a fresh snapshot generation.

Entry points: ``repro workload --executor process [--shards P]`` and
``repro serve --shards P`` on the CLI (``--snapshot`` / ``--store`` for
the persistent paths), plus ``benchmarks/bench_parallel_service.py`` and
``benchmarks/bench_sharded_service.py`` in the harness.
"""

from repro.parallel.cache import CacheStats, ResultCache
from repro.parallel.partition import (
    PARTITION_STRATEGIES,
    Partition,
    degree_partition,
    hash_partition,
    make_partition,
    shard_subgraph,
)
from repro.parallel.pool import ParallelSimRankService, derive_replica_config
from repro.parallel.sharded import (
    ShardedCacheView,
    ShardedSimRankService,
    load_shard_partition,
    write_shard_snapshots,
)
from repro.parallel.shm import SharedCSRGraph, ShmGraphDescriptor

__all__ = [
    "PARTITION_STRATEGIES",
    "CacheStats",
    "ParallelSimRankService",
    "Partition",
    "ResultCache",
    "ShardedCacheView",
    "ShardedSimRankService",
    "SharedCSRGraph",
    "ShmGraphDescriptor",
    "degree_partition",
    "derive_replica_config",
    "hash_partition",
    "load_shard_partition",
    "make_partition",
    "shard_subgraph",
    "write_shard_snapshots",
]
