"""Shared-memory multiprocess serving: the scale-out layer.

The sequential :class:`~repro.api.service.SimRankService` tops out at one
core for pure-Python estimators (the GIL serialises their interpreter
work).  This package lifts serving to process-level parallelism while
keeping the graph physically shared:

:mod:`~repro.parallel.shm`
    :class:`~repro.parallel.shm.SharedCSRGraph` — CSR adjacency arrays in
    ``multiprocessing.shared_memory``, reattached zero-copy in workers,
    versioned by a generation counter (the *epoch*) so workers detect
    graph changes.
:mod:`~repro.parallel.pool`
    :class:`~repro.parallel.pool.ParallelSimRankService` — the same
    query/maintenance surface as the sequential service, fanned out over a
    persistent worker-process pool with batched deterministic dispatch and
    worker-crash recovery.
:mod:`~repro.parallel.cache`
    :class:`~repro.parallel.cache.ResultCache` — an update-aware LRU for
    single-source results keyed ``(method, query, epoch)``, invalidated by
    epoch bumps.

Entry points: ``repro workload --executor process`` on the CLI and
``benchmarks/bench_parallel_service.py`` in the harness.
"""

from repro.parallel.cache import CacheStats, ResultCache
from repro.parallel.pool import ParallelSimRankService, derive_replica_config
from repro.parallel.shm import SharedCSRGraph, ShmGraphDescriptor

__all__ = [
    "CacheStats",
    "ParallelSimRankService",
    "ResultCache",
    "SharedCSRGraph",
    "ShmGraphDescriptor",
    "derive_replica_config",
]
