"""Update-aware LRU cache for single-source SimRank results.

Serving traffic is Zipf-skewed: a small set of hot query nodes dominates
the request mix (the workload generator reproduces exactly this shape).
Once a hot query has been answered, re-answering it costs a full round of
√c-walk sampling and probing — unless the graph changed, the previous
answer is just as good.  :class:`ResultCache` memoizes single-source
results under the key ``(method, query, epoch)``:

``method``
    The service-local method name the answer came from — two mounted
    methods never share answers.
``query``
    The query node id.
``epoch``
    The graph generation the answer was computed against.  Every
    full-rebuild :meth:`~repro.parallel.pool.ParallelSimRankService.sync`
    bumps the service epoch, so entries from before a graph mutation can
    never be served afterwards — the cache is *update-aware* by
    construction.  :meth:`ResultCache.invalidate_older` purges the dead
    generations eagerly (and counts them), keeping capacity for live
    entries.

Delta maintenance invalidates *by neighborhood* instead: when a small
update burst is absorbed in place (the epoch does not move),
:meth:`ResultCache.invalidate_nodes` drops only the entries whose query
node falls in the touched neighborhood — the updated edges' endpoints plus
their in/out neighbors — and keeps every other hot key warm.  This is a
deliberate locality heuristic, not an exactness guarantee: SimRank
perturbations decay geometrically (as ``c`` per hop) with distance from a
flipped edge, so the 1-hop set catches the dominant terms while entries
further out may serve answers slightly staler than a recompute — the same
freshness-for-throughput trade as the driver's ``sync_every`` knob.
Callers needing strictly fresh hits use rebuild maintenance (every sync
turns the whole cache over) or disable caching.

The cache is coordinator-side and thread-safe: the workload driver's
thread executor probes it from many threads, the process executor from the
dispatch loop.  Counters must therefore be read through
:meth:`ResultCache.snapshot` (one locked read), never field-by-field — a
report assembled from unlocked reads can embed torn hit/miss pairs.
Capacity is bounded by LRU eviction; ``capacity == 0`` disables caching
entirely (every :meth:`ResultCache.get` misses).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["CacheStats", "ResultCache"]


@dataclass
class CacheStats:
    """Operational counters of one :class:`ResultCache`.

    ``invalidations`` counts entries purged because their graph epoch was
    superseded (the update-aware path); ``evictions`` counts entries pushed
    out by the LRU capacity bound.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total number of :meth:`ResultCache.get` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, object]:
        """JSON-ready counter snapshot.

        Reads the fields without synchronisation — on a live, concurrently
        updated cache use :meth:`ResultCache.snapshot` instead, which takes
        the cache lock and cannot observe torn hit/miss pairs.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """Bounded LRU map ``(method, query, epoch) -> result``.

    The cached value is opaque to the cache (the serving layers store
    :class:`~repro.core.results.SimRankResult` objects).  All operations
    are O(1) and guarded by one lock; see the module docstring for the
    keying discipline.

    >>> cache = ResultCache(capacity=2)
    >>> cache.put("probesim", 4, 0, "answer")
    >>> cache.get("probesim", 4, 0)
    'answer'
    >>> cache.get("probesim", 4, 1) is None  # epoch bumped: miss
    True
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self.stats = CacheStats()  # guarded-by: _lock
        # guarded-by: _lock
        self._entries: OrderedDict[tuple[str, int, int], object] = OrderedDict()
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """False for the ``capacity == 0`` no-op configuration."""
        return self.capacity > 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, method: str, query: int, epoch: int):
        """The cached result for the key, or ``None`` (counted either way)."""
        if not self.enabled:
            return None
        key = (method, int(query), int(epoch))
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
            return None

    def put(self, method: str, query: int, epoch: int, result) -> None:
        """Insert (or refresh) one entry, evicting LRU past capacity."""
        if not self.enabled:
            return
        key = (method, int(query), int(epoch))
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate_older(self, epoch: int) -> int:
        """Purge every entry from a generation before ``epoch``.

        Entries keyed to older epochs can never hit again (lookups always
        use the current epoch); purging them eagerly frees capacity and
        makes the update-aware behaviour observable in the counters.
        Returns the number of entries invalidated.
        """
        with self._lock:
            dead = [key for key in self._entries if key[2] < epoch]
            for key in dead:
                del self._entries[key]
            self.stats.invalidations += len(dead)
            return len(dead)

    def invalidate_nodes(self, nodes) -> int:
        """Purge every entry whose *query node* is in ``nodes`` (any epoch).

        This is the delta-maintenance counterpart of
        :meth:`invalidate_older`: a small update burst absorbed in place
        leaves the epoch unchanged, so staleness is scoped by graph
        locality instead of by generation — the caller passes the touched
        neighborhood and everything outside it stays warm (accepting the
        geometrically decaying residual staleness described in the module
        docstring).  Returns the number of entries invalidated (also added
        to the counters).
        """
        targets = {int(node) for node in nodes}
        if not targets:
            return 0
        with self._lock:
            dead = [key for key in self._entries if key[1] in targets]
            for key in dead:
                del self._entries[key]
            self.stats.invalidations += len(dead)
            return len(dead)

    def clear(self) -> None:
        """Drop every entry without touching the counters."""
        with self._lock:
            self._entries.clear()

    def snapshot(self) -> dict[str, object]:
        """One consistent, locked counter snapshot (plus the live size).

        This is what reports should embed: every counter (and the derived
        ``hit_rate``) is read under the cache lock in a single critical
        section, so concurrent lookups can never tear the numbers
        (e.g. ``hits + misses != lookups``).
        """
        with self._lock:
            payload = self.stats.as_dict()
            payload["size"] = len(self._entries)
            return payload

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (
            f"ResultCache(capacity={self.capacity}, size={snap['size']}, "
            f"hit_rate={snap['hit_rate']:.2f})"
        )
