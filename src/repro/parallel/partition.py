"""Node partitioning for the sharded serving layer.

The sharded service splits a graph's *nodes* into ``P`` disjoint ownership
sets and gives every shard the subgraph of edges **incident to its owned
nodes** — the write/serve-path partitioning story of LogBase and the
qserv partition-and-route design applied to SimRank serving.  Two
properties fall out of that edge rule and carry the whole layer:

- an edge update ``(u, v)`` changes the subgraphs of ``owner(u)`` and
  ``owner(v)`` *only* — every other shard's graph literally does not
  contain the edge, so per-shard delta logs and per-shard cache
  invalidation are sound without any cross-shard coordination;
- with one shard the subgraph **is** the input graph (same adjacency
  order, see :meth:`repro.graph.digraph.DiGraph.edge_subgraph`), which is
  what lets ``P=1`` reproduce the unsharded service bit for bit.

Two strategies are provided.  :func:`hash_partition` spreads nodes by a
fixed integer mix (SplitMix64's finalizer — deterministic across
platforms and Python processes, unlike the builtin ``hash``).
:func:`degree_partition` greedily balances *degree mass* instead of node
count: nodes are placed heaviest-first onto the lightest shard, so a few
hubs cannot pile replicated edges onto one worker group.  Both are pure
functions of their inputs; the resulting :class:`Partition` is the single
routing authority the sharded service consults.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import ConfigurationError, GraphError
from repro.graph.csr import CSRGraph, as_csr
from repro.graph.digraph import DiGraph
from repro.utils.validation import check_positive_int

__all__ = [
    "PARTITION_STRATEGIES",
    "Partition",
    "degree_partition",
    "hash_partition",
    "make_partition",
    "shard_subgraph",
]

#: strategies :func:`make_partition` resolves by name.
PARTITION_STRATEGIES = ("hash", "degree")


class Partition:
    """An assignment of every node to exactly one owning shard.

    ``owner`` is an int64 array of shape ``(num_nodes,)`` with values in
    ``[0, num_shards)``.  Shards may own zero nodes (``num_shards`` larger
    than the graph is legal — the extra shards simply never receive a
    query or an update).
    """

    def __init__(self, owner: np.ndarray, num_shards: int, strategy: str) -> None:
        check_positive_int("num_shards", num_shards)
        owner = np.ascontiguousarray(owner, dtype=np.int64)
        if owner.ndim != 1:
            raise ConfigurationError(
                f"owner must be a 1-d array, got shape {owner.shape}"
            )
        if owner.size and not (
            0 <= int(owner.min()) and int(owner.max()) < num_shards
        ):
            raise ConfigurationError(
                f"owner values must lie in [0, {num_shards}), got "
                f"[{int(owner.min())}, {int(owner.max())}]"
            )
        owner.setflags(write=False)
        self.owner = owner
        self.num_shards = int(num_shards)
        self.strategy = strategy

    @property
    def num_nodes(self) -> int:
        return int(self.owner.size)

    def owner_of(self, node: int) -> int:
        """The shard that owns ``node`` (raises for out-of-range ids)."""
        if not 0 <= node < self.num_nodes:
            raise GraphError(
                f"node {node} out of range [0, {self.num_nodes})"
            )
        return int(self.owner[node])

    def shard_nodes(self, shard: int) -> np.ndarray:
        """The node ids owned by ``shard``, ascending."""
        if not 0 <= shard < self.num_shards:
            raise ConfigurationError(
                f"shard {shard} out of range [0, {self.num_shards})"
            )
        return np.flatnonzero(self.owner == shard)

    def counts(self) -> list[int]:
        """Owned-node count per shard (length ``num_shards``)."""
        return np.bincount(self.owner, minlength=self.num_shards).tolist()

    def __repr__(self) -> str:
        return (
            f"Partition(num_shards={self.num_shards}, "
            f"num_nodes={self.num_nodes}, strategy={self.strategy!r})"
        )


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """SplitMix64's finalizer over a uint64 array (wrapping arithmetic)."""
    z = values + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def hash_partition(num_nodes: int, num_shards: int) -> Partition:
    """Assign nodes to shards by a fixed integer mix of the node id.

    Deterministic across runs, platforms, and processes (no ``hash``
    randomisation), and independent of the graph's edges — routing a query
    or update needs only the node id.
    """
    if num_nodes < 0:
        raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
    check_positive_int("num_shards", num_shards)
    ids = np.arange(num_nodes, dtype=np.uint64)
    with np.errstate(over="ignore"):  # uint64 wraparound is the point
        mixed = _splitmix64(ids)
    owner = (mixed % np.uint64(num_shards)).astype(np.int64)
    return Partition(owner, num_shards, "hash")


def degree_partition(graph: "DiGraph | CSRGraph", num_shards: int) -> Partition:
    """Greedily balance total degree (in + out) across shards.

    Nodes are placed heaviest-first onto the currently lightest shard
    (ties broken toward the lower shard index, then the lower node id), so
    hub nodes — whose incident edges are what each shard replicates —
    spread evenly instead of hashing together.  Deterministic for a given
    graph.
    """
    check_positive_int("num_shards", num_shards)
    csr = as_csr(graph)
    degrees = csr.in_degrees + csr.out_degrees
    # argsort on (-degree, node): stable sort over node-ascending input
    order = np.argsort(-degrees, kind="stable")
    owner = np.zeros(csr.num_nodes, dtype=np.int64)
    heap = [(0, shard) for shard in range(num_shards)]  # (load, shard)
    heapq.heapify(heap)
    for node in order:
        load, shard = heapq.heappop(heap)
        owner[node] = shard
        heapq.heappush(heap, (load + int(degrees[node]) + 1, shard))
    return Partition(owner, num_shards, "degree")


def make_partition(
    graph: "DiGraph | CSRGraph", num_shards: int, strategy: str = "hash"
) -> Partition:
    """Resolve a strategy name to its :class:`Partition` for ``graph``."""
    if strategy not in PARTITION_STRATEGIES:
        raise ConfigurationError(
            f"partition strategy must be one of {PARTITION_STRATEGIES}, "
            f"got {strategy!r}"
        )
    if strategy == "degree":
        return degree_partition(graph, num_shards)
    return hash_partition(graph.num_nodes, num_shards)


def shard_subgraph(
    graph: "DiGraph | CSRGraph", partition: Partition, shard: int
) -> DiGraph:
    """The subgraph shard ``shard`` serves: edges incident to its nodes.

    The result keeps the full node-id space (``num_nodes`` is unchanged —
    score vectors stay globally indexed and no id remapping exists
    anywhere in the layer) but contains exactly the edges ``(u, v)`` with
    ``owner(u) == shard or owner(v) == shard``, in the parent's adjacency
    order.  Summed over all shards that is at most ``2m`` edges; with one
    shard it is the whole graph, adjacency-order included.
    """
    if not 0 <= shard < partition.num_shards:
        raise ConfigurationError(
            f"shard {shard} out of range [0, {partition.num_shards})"
        )
    if graph.num_nodes != partition.num_nodes:
        raise GraphError(
            f"partition covers {partition.num_nodes} nodes but the graph "
            f"has {graph.num_nodes}"
        )
    base = graph if isinstance(graph, DiGraph) else graph.to_digraph()
    owner = partition.owner
    return base.edge_subgraph(
        lambda s, t: owner[s] == shard or owner[t] == shard
    )
