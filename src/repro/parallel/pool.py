"""Process-parallel SimRank serving over a shared-memory graph.

:class:`ParallelSimRankService` is the multi-core sibling of
:class:`~repro.api.service.SimRankService`: the same query/maintenance
surface (``single_source`` / ``topk`` / ``single_source_many`` /
``topk_many`` / ``apply_edges`` / ``sync``), but queries execute on a
persistent pool of **worker processes**, so sustained throughput scales
with cores instead of being GIL-bound.  The design separates shared data
from per-worker compute:

Shared graph
    The coordinator owns one :class:`~repro.parallel.shm.SharedCSRGraph`;
    every worker maps the adjacency arrays zero-copy
    (:mod:`repro.parallel.shm`).  Graph mutations stay coordinator-side;
    :meth:`ParallelSimRankService.sync` publishes a new graph *epoch* and
    barriers every worker onto it before the old generation is unlinked, so
    readers never see a half-applied update batch.

Worker replicas
    Each worker builds its own estimator replica per mounted method, seeded
    ``base_seed + worker_index`` (the same replica-derivation rule as the
    thread-pool workload driver), and rebuilds them at every epoch — RNG
    streams restart per epoch, which is what makes crash recovery exact.

Deterministic dispatch
    Batches are deduplicated, probed against the result cache, and the
    misses split positionally (``misses[w::workers]``) across workers; every
    worker consumes its share in order and results merge back in global
    batch order.  Replica results are therefore a pure function of
    ``(graph, configs, workers, call sequence)`` — bit-identical across
    runs, and bit-identical to ``executor="sequential"``, which replays the
    exact same partition/replay/rebuild schedule in-process (the oracle the
    correctness suite compares against).

Crash recovery
    A worker that dies mid-flight is respawned, rebuilt against the live
    epoch, and fast-forwarded by replaying the query sequence it had served
    since the last pool rebuild (recorded coordinator-side); the pending
    share is then re-dispatched.  Because replica RNG restarts at each
    rebuild, the replay reproduces the dead worker's stream exactly — a
    crash changes no answer, only latency.  The replay log is bounded: after
    ``history_limit`` queries on any worker the pool is proactively rebuilt
    in place (same graph, fresh deterministic streams), so update-free
    serving never accumulates unbounded history or unbounded recovery cost.

Result caching
    An update-aware LRU (:mod:`repro.parallel.cache`) keyed
    ``(method, query, epoch)`` answers repeat hot-key queries without
    touching a worker; epoch bumps invalidate stale generations.  Note the
    cache returns the *first* computed estimate for a key — for randomized
    estimators any sample within the ``eps_a`` guarantee is a valid answer,
    so hits stay inside the paper's accuracy contract.

What does **not** carry over from the sequential service: per-update
incremental maintenance (``capabilities().incremental_updates``).  Workers
cannot observe coordinator-side mutations, so every method pays the epoch
rebuild on :meth:`~ParallelSimRankService.sync`; methods whose registry
capabilities set ``parallel_safe=False`` (rebuild-heavy static indexes) are
rejected at mount time unless ``allow_unsafe=True``.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from typing import Iterable, Sequence

from repro.api.registry import get_entry
from repro.api.service import QueryServiceBase
from repro.errors import ConfigurationError, QueryError
from repro.graph.csr import CSRGraph, as_csr
from repro.graph.digraph import DiGraph
from repro.graph.dynamic import EdgeUpdate, apply_update
from repro.parallel.cache import ResultCache
from repro.parallel.shm import SharedCSRGraph
from repro.utils.validation import check_positive_int

__all__ = ["ParallelSimRankService", "WorkerCrashed", "derive_replica_config"]

#: executors the service can run its workers on.
EXECUTORS = ("process", "sequential")


class WorkerCrashed(RuntimeError):
    """Internal signal: a worker process died; the dispatcher will revive it."""


def derive_replica_config(entry, config: dict, worker: int) -> dict:
    """Per-replica method configuration: offset the seed by ``worker``.

    Replica ``i`` of any run draws the same RNG stream — the single rule
    both the thread-pool workload driver and this service's workers use, so
    the two executors agree query-for-query wherever their schedules match.
    """
    config = dict(config)
    if "seed" in entry.config_keys:
        base = config.get("seed", 0) or 0
        config["seed"] = int(base) + worker
    return config


# --------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------- #


class _WorkerCore:
    """One worker's estimator replicas; the logic shared by both executors.

    ``source`` is either a :class:`~repro.parallel.shm.ShmGraphDescriptor`
    (process executor — the core attaches the shared segment) or a
    :class:`CSRGraph` (sequential executor — used directly).  Everything
    downstream of that choice is identical, which is what makes the
    sequential executor a bit-exact oracle for the process one.
    """

    def __init__(self, worker_index: int) -> None:
        self.worker_index = worker_index
        self.shared: SharedCSRGraph | None = None
        self.csr: CSRGraph | None = None
        self.estimators: dict[str, object] = {}
        self.mounts: list[tuple[str, str, dict]] = []

    def _graph_from(self, source) -> CSRGraph:
        if isinstance(source, CSRGraph):
            return source
        if self.shared is None:
            self.shared = SharedCSRGraph.attach(source)
        else:
            self.shared.reattach(source)
        return self.shared.graph

    def build(self, source, mounts: list[tuple[str, str, dict]]) -> None:
        """Mount every replica against ``source`` (fresh RNG streams)."""
        self.mounts = list(mounts)
        # drop old replicas AND the old graph before reattaching: the old
        # segment is unmapped underneath any view that survives this point
        self.estimators = {}
        self.csr = None
        self.csr = self._graph_from(source)
        for key, name, config in self.mounts:
            self.estimators[key] = get_entry(name).build(self.csr, **config)

    def rebuild(self, source) -> None:
        """Epoch bump: reattach the new generation and rebuild replicas."""
        self.build(source, self.mounts)

    def query(self, key: str, kind: str, k: int | None, ops):
        """Answer ``(op_id, node)`` ops in order with the ``key`` replica."""
        estimator = self.estimators[key]
        if kind == "topk":
            return [(op_id, estimator.topk(node, k)) for op_id, node in ops]
        return [(op_id, estimator.single_source(node)) for op_id, node in ops]

    def shutdown(self) -> None:
        self.estimators = {}
        self.csr = None
        if self.shared is not None:
            self.shared.close()
            self.shared = None


def _worker_main(conn, worker_index: int) -> None:  # pragma: no cover
    """Process-executor entry point: serve RPCs until ``exit`` or EOF.

    Estimator-level exceptions are caught and shipped back as ``("error",
    …)`` replies — the worker survives them; only interpreter-level faults
    (or ``kill -9``) take it down, and those the coordinator heals.

    (Excluded from coverage: this body runs inside worker processes, out of
    the tracer's sight; the multiprocess suite exercises it end to end and
    the sequential executor keeps the shared `_WorkerCore` logic measured.)
    """
    core = _WorkerCore(worker_index)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            command, payload = message
            try:
                if command == "build":
                    core.build(*payload)
                    reply = ("ok", None)
                elif command == "epoch":
                    core.rebuild(payload)
                    reply = ("ok", None)
                elif command == "query":
                    reply = ("ok", core.query(*payload))
                elif command == "ping":
                    reply = ("ok", worker_index)
                elif command == "exit":
                    conn.send(("ok", None))
                    break
                else:  # pragma: no cover - protocol misuse
                    reply = ("error", ("ValueError", f"unknown command {command!r}", ""))
            except BaseException as exc:  # noqa: BLE001 - shipped to coordinator
                reply = ("error", (type(exc).__name__, str(exc), traceback.format_exc()))
            conn.send(reply)
    finally:
        core.shutdown()
        conn.close()


class _ProcessWorker:
    """Coordinator-side handle for one worker process (pipe + liveness)."""

    def __init__(self, ctx, index: int) -> None:
        self.index = index
        self.conn, child = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main, args=(child, index), daemon=True,
            name=f"repro-parallel-w{index}",
        )
        self.process.start()
        child.close()  # coordinator keeps only its end; EOF propagates cleanly

    def send(self, message) -> None:
        try:
            self.conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashed(f"worker {self.index} pipe closed") from exc

    def recv(self, timeout: float):
        deadline = time.monotonic() + timeout
        while not self.conn.poll(0.02):
            if not self.process.is_alive():
                raise WorkerCrashed(f"worker {self.index} died")
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"worker {self.index} did not reply within {timeout}s"
                )
        try:
            return self.conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerCrashed(f"worker {self.index} died mid-reply") from exc

    def close(self, force: bool = False) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if force and self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.kill()
            self.process.join(timeout=5.0)


class _InlineWorker:
    """Sequential-executor handle: same RPC surface, runs in-process."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.core = _WorkerCore(index)
        self._reply = None

    def send(self, message) -> None:
        command, payload = message
        try:
            if command == "build":
                self.core.build(*payload)
                self._reply = ("ok", None)
            elif command == "epoch":
                self.core.rebuild(payload)
                self._reply = ("ok", None)
            elif command == "query":
                self._reply = ("ok", self.core.query(*payload))
            elif command in ("ping", "exit"):
                self._reply = ("ok", None)
            else:  # pragma: no cover - protocol misuse
                self._reply = ("error", ("ValueError", f"unknown {command!r}", ""))
        except Exception as exc:
            self._reply = ("error", (type(exc).__name__, str(exc), traceback.format_exc()))

    def recv(self, timeout: float):
        del timeout
        reply, self._reply = self._reply, None
        return reply

    def close(self, force: bool = False) -> None:
        del force
        self.core.shutdown()


# --------------------------------------------------------------------- #
# coordinator side
# --------------------------------------------------------------------- #


class ParallelSimRankService(QueryServiceBase):
    """Multiprocess SimRank serving: shared graph, worker pool, result cache.

    >>> from repro.graph import DiGraph
    >>> g = DiGraph.from_edges([(0, 1), (1, 0), (2, 0), (2, 1)])
    >>> with ParallelSimRankService(
    ...     g, methods=("probesim",), workers=2, executor="sequential",
    ...     configs={"probesim": {"eps_a": 0.2, "seed": 7}},
    ... ) as service:
    ...     service.single_source(0).score(0)
    1.0

    Parameters
    ----------
    graph:
        A mutable :class:`DiGraph` (enables :meth:`apply_edges`) or a frozen
        :class:`CSRGraph` (read-only service).
    methods:
        Registry names to mount; each worker builds one replica per method.
        Methods whose capabilities declare ``parallel_safe=False`` are
        rejected unless ``allow_unsafe=True``.
    configs / default_method:
        As on :class:`~repro.api.service.SimRankService`.
    workers:
        Pool width (positive).  Throughput scales with cores for the
        ``process`` executor; ``sequential`` ignores parallelism but keeps
        the identical dispatch schedule (the determinism oracle).
    cache_size:
        Capacity of the coordinator-side update-aware result cache
        (``0`` disables it).
    auto_sync:
        When True (default) :meth:`apply_edges` immediately publishes a new
        epoch; when False the caller flushes with :meth:`sync`.
    executor:
        ``"process"`` (default) or ``"sequential"``.
    start_method:
        ``multiprocessing`` start method for the process executor
        (default: ``fork`` where available, else ``spawn``).
    rpc_timeout:
        Seconds to wait on a worker reply before the worker is treated as
        hung and replaced (a liveness backstop, not a latency budget).
    history_limit:
        Queries any one worker may serve before the pool is proactively
        rebuilt in place, bounding crash-recovery replay cost and the
        coordinator-side history memory.  The trigger depends only on the
        call sequence, so rollovers preserve bit-reproducibility.

    Always :meth:`close` the service (or use it as a context manager):
    that tears down the pool and unlinks the shared-memory segments.  A
    finalizer on the shared graph unlinks the segments even if ``close`` is
    never called, so crashes cannot leak ``/dev/shm`` entries.
    """

    def __init__(
        self,
        graph,
        methods: Sequence[str] = ("probesim",),
        configs: dict[str, dict] | None = None,
        default_method: str | None = None,
        workers: int = 2,
        cache_size: int = 0,
        auto_sync: bool = True,
        executor: str = "process",
        start_method: str | None = None,
        allow_unsafe: bool = False,
        rpc_timeout: float = 300.0,
        history_limit: int = 10_000,
    ) -> None:
        check_positive_int("workers", workers)
        check_positive_int("history_limit", history_limit)
        if executor not in EXECUTORS:
            raise ConfigurationError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        if not methods:
            raise ConfigurationError("need at least one method to serve")
        super().__init__(graph, default_method=default_method)
        self.workers = int(workers)
        self.executor = executor
        self.auto_sync = auto_sync
        self.rpc_timeout = float(rpc_timeout)
        self.history_limit = int(history_limit)
        self.cache = ResultCache(cache_size)
        self._digraph = graph if isinstance(graph, DiGraph) else None
        self._mounts: dict[str, tuple[str, dict]] = {}
        configs = self._validate_configs(configs, methods)
        for name in methods:
            entry = get_entry(name)
            caps = entry.capabilities
            if caps is not None and not caps.parallel_safe and not allow_unsafe:
                raise ConfigurationError(
                    f"method {name!r} is not parallel_safe (its per-worker "
                    "epoch rebuild is impractical); pass allow_unsafe=True "
                    "to mount it anyway"
                )
            config = dict(configs.get(name, {}))
            unknown = sorted(set(config) - set(entry.config_keys))
            if unknown:  # fail fast here, not inside a worker build
                raise ConfigurationError(
                    f"method {name!r} does not accept config keys {unknown}; "
                    f"allowed: {sorted(entry.config_keys)}"
                )
            self._mounts[name] = (name, config)
        if self._default is None:
            self._default = next(iter(self._mounts))
        elif self._default not in self._mounts:
            raise ConfigurationError(
                f"default_method {self._default!r} is not among "
                f"{sorted(self._mounts)}"
            )

        self._epoch = 0
        self._graph_stale = False
        self._closed = False
        self._single_rr = 0  # round-robin cursor for lone single_source calls
        self._histories: list[list[tuple[str, str, int, int | None]]] = [
            [] for _ in range(self.workers)
        ]
        self._shm: SharedCSRGraph | None = None
        self._csr: CSRGraph | None = None
        self._workers: list = []
        try:
            csr = as_csr(graph)
            self._num_nodes = csr.num_nodes
            if executor == "process":
                self._shm = SharedCSRGraph.create(csr)
                self._epoch = self._shm.current_epoch()
            else:
                self._csr = csr
            if start_method is None:
                available = multiprocessing.get_all_start_methods()
                start_method = "fork" if "fork" in available else "spawn"
            self._ctx = multiprocessing.get_context(start_method)
            for index in range(self.workers):
                self._workers.append(self._spawn(index))
            for index in range(self.workers):
                self._build_worker(index)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------ #
    # pool plumbing
    # ------------------------------------------------------------------ #

    def _method_keys(self) -> Iterable[str]:
        return self._mounts

    def _spawn(self, index: int):
        if self.executor == "sequential":
            return _InlineWorker(index)
        return _ProcessWorker(self._ctx, index)

    def _worker_source(self):
        """What workers build against: a descriptor (process) or the CSR."""
        if self._shm is not None:
            return self._shm.descriptor
        return self._csr

    def _worker_mounts(self, index: int) -> list[tuple[str, str, dict]]:
        return [
            (key, name, derive_replica_config(get_entry(name), config, index))
            for key, (name, config) in self._mounts.items()
        ]

    def _build_worker(self, index: int) -> None:
        worker = self._workers[index]
        worker.send(("build", (self._worker_source(), self._worker_mounts(index))))
        self._expect_ok(worker.recv(self.rpc_timeout))

    def _revive(self, index: int) -> None:
        """Respawn a dead worker and fast-forward it to the live RNG state.

        The replay re-runs (and discards) every query the worker served
        since the current epoch began; replica RNG restarts at each epoch,
        so afterwards the replacement's streams match the dead worker's
        exactly and determinism survives the crash.
        """
        self._workers[index].close(force=True)
        self._workers[index] = self._spawn(index)
        self._build_worker(index)
        worker = self._workers[index]
        for kind, key, node, k in self._histories[index]:
            worker.send(("query", (key, kind, k, [(0, node)])))
            self._expect_ok(worker.recv(self.rpc_timeout))
        with self._stats_lock:
            self.stats.worker_restarts += 1

    def _rebarrier(self) -> None:
        """Rebuild every worker against the current source, clearing the
        replay histories (replica RNG streams restart deterministically)."""
        self._histories = [[] for _ in range(self.workers)]
        source = self._worker_source()
        self._rpc_all({w: ("epoch", source) for w in range(self.workers)})

    def _maybe_rollover(self) -> None:
        """Bound the crash-replay history on update-free workloads.

        Once any worker has served ``history_limit`` queries since the last
        rebuild, the pool is rebuilt in place: same graph generation, fresh
        per-worker RNG streams, empty histories.  The trigger is a pure
        function of the call sequence, so results stay bit-reproducible;
        cached answers stay valid because the graph epoch is unchanged.
        """
        if max(map(len, self._histories), default=0) >= self.history_limit:
            self._rebarrier()

    def _expect_ok(self, reply):
        status, payload = reply
        if status == "ok":
            return payload
        name, message, trace = payload
        raise QueryError(
            f"worker raised {name}: {message}\n--- worker traceback ---\n{trace}"
        )

    def _record_history(self, index: int, message) -> None:
        """Append a successful query message's ops to the worker's history.

        Recording happens the moment the worker's reply is confirmed — not
        after the whole batch — so the replay log stays accurate even when
        a batch-mate errors or crashes mid-dispatch.
        """
        command, payload = message
        if command != "query":
            return
        key, kind, k, ops = payload
        self._histories[index].extend((kind, key, node, k) for _, node in ops)

    def _rpc_all(self, assignments: dict[int, tuple]) -> dict[int, object]:
        """Send one message per worker, gather replies, healing crashes.

        ``assignments`` maps worker index → message.  Crashed (or hung —
        ``rpc_timeout`` is the liveness backstop) workers are revived and
        their message re-sent.  Estimator-level errors raise only after
        every in-flight reply has been drained, so the request/reply pipes
        can never desynchronise.
        """
        pending = dict(assignments)
        replies: dict[int, object] = {}
        errors: list[BaseException] = []
        attempts = 0
        while pending:
            attempts += 1
            if attempts > 3 * max(len(assignments), 1):
                raise QueryError("workers keep crashing; giving up dispatch")
            sent = []
            crashed = []
            for index, message in pending.items():
                try:
                    self._workers[index].send(message)
                    sent.append(index)
                except WorkerCrashed:
                    crashed.append(index)
            for index in sent:
                try:
                    reply = self._workers[index].recv(self.rpc_timeout)
                except (WorkerCrashed, TimeoutError):
                    # a hung worker is indistinguishable from a dead one,
                    # and its late reply would poison the pipe: replace it
                    crashed.append(index)
                    continue
                del pending[index]
                try:
                    replies[index] = self._expect_ok(reply)
                    self._record_history(index, assignments[index])
                except QueryError as exc:
                    errors.append(exc)  # drain the rest before raising
            for index in crashed:
                try:
                    self._revive(index)
                except (WorkerCrashed, TimeoutError):
                    # the replacement died during build/replay too; its
                    # message is still pending, so the next attempt retries
                    # (and eventually trips the attempts cap above) instead
                    # of leaking the internal crash signal to callers
                    continue
        if errors:
            raise errors[0]
        return replies

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def single_source(self, query: int, method: str | None = None):
        """One single-source query (cache-probed, one worker round-trip)."""
        key = self._resolve_method(method)
        node = self._check_query_node(query)
        self._maybe_rollover()
        with self._stats_lock:
            self.stats.queries += 1
        cached = self.cache.get(key, node, self._epoch)
        if cached is not None:
            return cached
        index = self._single_rr % self.workers
        self._single_rr += 1
        records = self._rpc_all(
            {index: ("query", (key, "single_source", None, [(0, node)]))}
        )[index]
        result = records[0][1]
        self.cache.put(key, node, self._epoch, result)
        return result

    def topk(self, query: int, k: int, method: str | None = None):
        """One top-k query via the estimator's native top-k path.

        Dispatching ``topk`` (rather than slicing a cached single-source
        answer) preserves estimator-specific top-k behaviour such as
        adaptive early stopping; it therefore bypasses the result cache.
        """
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        key = self._resolve_method(method)
        node = self._check_query_node(query)
        self._maybe_rollover()
        with self._stats_lock:
            self.stats.queries += 1
        index = self._single_rr % self.workers
        self._single_rr += 1
        records = self._rpc_all(
            {index: ("query", (key, "topk", int(k), [(0, node)]))}
        )[index]
        return records[0][1]

    def single_source_many(
        self, queries: Sequence[int], method: str | None = None
    ) -> list:
        """A deduplicated batch, fanned out positionally across the pool.

        Distinct cache-missing queries are split ``misses[w::workers]``;
        worker ``w`` answers its share in order and the results merge back
        deterministically.  Duplicates and cache hits share answers.
        """
        key = self._resolve_method(method)
        batch = [self._check_query_node(query) for query in queries]
        self._maybe_rollover()
        distinct = list(dict.fromkeys(batch))
        by_query: dict[int, object] = {}
        misses = []
        for node in distinct:
            cached = self.cache.get(key, node, self._epoch)
            if cached is not None:
                by_query[node] = cached
            else:
                misses.append(node)
        ops = list(enumerate(misses))
        assignments = {
            w: ("query", (key, "single_source", None, ops[w :: self.workers]))
            for w in range(self.workers)
            if ops[w :: self.workers]
        }
        replies = self._rpc_all(assignments)
        merged = sorted(
            (op_id, result) for records in replies.values()
            for op_id, result in records
        )
        for op_id, result in merged:
            node = misses[op_id]
            by_query[node] = result
            self.cache.put(key, node, self._epoch, result)
        with self._stats_lock:
            self.stats.queries += len(batch)
            self.stats.batches += 1
            self.stats.batched_queries += len(batch)
            self.stats.batched_unique += len(distinct)
        return [by_query[node] for node in batch]

    # topk_many comes from QueryServiceBase: top-k views of the batched
    # single-source path, exactly like the sequential service.

    def capabilities(self, method: str | None = None):
        """Registry-declared capability descriptor of one served method."""
        name, _ = self._mounts[self._resolve_method(method)]
        return get_entry(name).capabilities

    # ------------------------------------------------------------------ #
    # dynamic maintenance
    # ------------------------------------------------------------------ #

    @property
    def epoch(self) -> int:
        """The graph generation queries are currently answered against."""
        return self._epoch

    def apply_edges(
        self,
        added: Iterable[tuple[int, int]] = (),
        removed: Iterable[tuple[int, int]] = (),
    ) -> int:
        """Apply edge insertions then deletions; maintain via :meth:`sync`."""
        updates = [EdgeUpdate("insert", int(s), int(t)) for s, t in added]
        updates += [EdgeUpdate("delete", int(s), int(t)) for s, t in removed]
        return self.apply_update_stream(updates)

    def apply_update_stream(self, updates: Iterable[EdgeUpdate]) -> int:
        """Apply an ordered update stream to the coordinator's graph.

        Workers keep serving the previous epoch until :meth:`sync`
        publishes the new one (immediately under ``auto_sync``).  Unlike
        the sequential service there is no per-update incremental path —
        worker processes cannot observe coordinator-side mutations, so
        every mounted method is maintained by the epoch rebuild.
        """
        if self._digraph is None:
            raise ConfigurationError(
                "apply_edges needs a mutable DiGraph; this service owns a "
                "frozen snapshot"
            )
        count = 0
        try:
            for update in updates:
                apply_update(self._digraph, update)
                self._graph_stale = True
                count += 1
        finally:
            self.stats.updates_applied += count
            if count and self.auto_sync:
                self.sync()
        return count

    def sync(self) -> None:
        """Publish the mutated graph as a new epoch and rebarrier the pool.

        Snapshots the coordinator graph, publishes it (new shared-memory
        generation for the process executor), rebuilds every worker's
        replicas against it, invalidates superseded cache entries, and only
        then unlinks the previous generation.  Idempotent when nothing
        changed.  Wall-clock is charged to ``stats.maintenance_seconds``
        split evenly across the mounted methods.
        """
        if not self._graph_stale:
            return
        started = time.perf_counter()
        csr = CSRGraph.from_digraph(self._digraph)
        self._num_nodes = csr.num_nodes
        old_epoch = self._epoch
        if self._shm is not None:
            self._epoch = self._shm.publish(csr)
        else:
            self._csr = csr
            self._epoch = old_epoch + 1
        self._rebarrier()
        if self._shm is not None:
            self._shm.release_epoch(old_epoch)
        self.cache.invalidate_older(self._epoch)
        self._graph_stale = False
        elapsed = time.perf_counter() - started
        with self._stats_lock:
            self.stats.syncs += 1
            self.stats.epochs += 1
            for key in self._mounts:
                self.stats.charge_maintenance(key, elapsed / len(self._mounts))

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def _check_query_node(self, query) -> int:
        node = self._check_query_id(query)
        if not 0 <= node < self._num_nodes:
            raise QueryError(
                f"query node {node} out of range [0, {self._num_nodes})"
            )
        return node

    def close(self) -> None:
        """Shut the pool down and unlink every shared-memory segment."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.send(("exit", None))
                worker.recv(5.0)
            except (WorkerCrashed, TimeoutError):
                pass
            worker.close(force=True)
        self._workers = []
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    def __enter__(self) -> "ParallelSimRankService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ParallelSimRankService(methods={self.methods}, "
            f"workers={self.workers}, executor={self.executor!r}, "
            f"epoch={self._epoch}, queries={self.stats.queries})"
        )
