"""Process-parallel SimRank serving over a shared-memory graph.

:class:`ParallelSimRankService` is the multi-core sibling of
:class:`~repro.api.service.SimRankService`: the same query/maintenance
surface (``single_source`` / ``topk`` / ``single_source_many`` /
``topk_many`` / ``apply_edges`` / ``sync``), but queries execute on a
persistent pool of **worker processes**, so sustained throughput scales
with cores instead of being GIL-bound.  The design separates shared data
from per-worker compute:

Shared graph
    The coordinator owns one :class:`~repro.parallel.shm.SharedCSRGraph`;
    every worker maps the adjacency arrays zero-copy
    (:mod:`repro.parallel.shm`).  Graph mutations stay coordinator-side;
    :meth:`ParallelSimRankService.sync` publishes a new graph *epoch* and
    barriers every worker onto it before the old generation is unlinked, so
    readers never see a half-applied update batch.

Worker replicas
    Each worker builds its own estimator replica per mounted method, seeded
    ``base_seed + worker_index`` (the same replica-derivation rule as the
    thread-pool workload driver), and rebuilds them at every epoch — RNG
    streams restart per epoch, which is what makes crash recovery exact.

Deterministic dispatch
    Batches are deduplicated, probed against the result cache, and the
    misses split positionally (``misses[w::workers]``) across workers; every
    worker consumes its share in order and results merge back in global
    batch order.  Replica results are therefore a pure function of
    ``(graph, configs, workers, call sequence)`` — bit-identical across
    runs, and bit-identical to ``executor="sequential"``, which replays the
    exact same partition/replay/rebuild schedule in-process (the oracle the
    correctness suite compares against).

Crash recovery
    A worker that dies mid-flight is respawned, rebuilt against the live
    epoch, and fast-forwarded by replaying the query sequence it had served
    since the last pool rebuild (recorded coordinator-side); the pending
    share is then re-dispatched.  Because replica RNG restarts at each
    rebuild, the replay reproduces the dead worker's stream exactly — a
    crash changes no answer, only latency.  The replay log is bounded: after
    ``history_limit`` queries on any worker the pool is proactively rebuilt
    in place (same graph, fresh deterministic streams), so update-free
    serving never accumulates unbounded history or unbounded recovery cost.

Result caching
    An update-aware LRU (:mod:`repro.parallel.cache`) keyed
    ``(method, query, epoch)`` answers repeat hot-key queries without
    touching a worker; full rebuilds invalidate whole generations, delta
    syncs invalidate only the touched neighborhood.  Note the cache returns
    the *first* computed estimate for a key — for randomized estimators any
    sample within the ``eps_a`` guarantee is a valid answer, so hits stay
    inside the paper's accuracy contract.

Delta maintenance (O(Δ) instead of O(m) per update burst)
    When every mounted method advertises
    ``capabilities().incremental_updates`` (TSF's one-way-graph patching,
    the walk cache's fine-grained eviction), :meth:`~ParallelSimRankService.sync`
    does not republish the graph at all.  The burst is appended to the
    shared graph's bounded edge-delta log
    (:meth:`~repro.parallel.shm.SharedCSRGraph.append_deltas`) and a
    ``("delta", …)`` RPC tells each worker to read the new entries, apply
    them in place to its local graph mirror, and notify its replicas via
    ``apply_updates`` — replica RNG streams *continue* instead of
    restarting, exactly like the sequential service's incremental path.
    The graph epoch stays put, so cached answers for untouched query nodes
    stay warm (:meth:`~repro.parallel.cache.ResultCache.invalidate_nodes`
    drops only the updated edges' 1-hop neighborhood).  Crash-replay
    histories record the delta stream interleaved with the queries, so a
    revived worker replays both in order and stays bit-exact.  When the
    bounded log cannot hold a burst the service *compacts*: one ordinary
    epoch rebuild folds every logged delta into a fresh CSR generation and
    empties the log.  The ``maintenance`` knob selects the path —
    ``"rebuild"`` forces epochs, ``"delta"`` requires incremental-capable
    mounts, ``"auto"`` (default) picks delta exactly when every mount
    supports it.

Methods whose registry capabilities set ``parallel_safe=False``
(rebuild-heavy static indexes) are rejected at mount time unless
``allow_unsafe=True``.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from typing import Iterable, Sequence

from repro.api.registry import get_entry
from repro.api.service import QueryServiceBase
from repro.errors import ConfigurationError, QueryError
from repro.graph.csr import CSRGraph, as_csr
from repro.graph.digraph import DiGraph
from repro.graph.dynamic import EdgeUpdate, apply_update, touched_neighborhood
from repro.parallel.cache import ResultCache
from repro.parallel.shm import SharedCSRGraph
from repro.storage.snapshot import MappedSnapshot, attach_snapshot
from repro.utils.validation import check_positive_int

__all__ = ["ParallelSimRankService", "WorkerCrashed", "derive_replica_config"]

#: executors the service can run its workers on.
EXECUTORS = ("process", "sequential")

#: maintenance paths the service can run updates through.
MAINTENANCE_MODES = ("auto", "delta", "rebuild")


class WorkerCrashed(RuntimeError):
    """Internal signal: a worker process died; the dispatcher will revive it."""


def derive_replica_config(entry, config: dict, worker: int) -> dict:
    """Per-replica method configuration: offset the seed by ``worker``.

    Replica ``i`` of any run draws the same RNG stream — the single rule
    both the thread-pool workload driver and this service's workers use, so
    the two executors agree query-for-query wherever their schedules match.
    """
    config = dict(config)
    if "seed" in entry.config_keys:
        base = config.get("seed", 0) or 0
        config["seed"] = int(base) + worker
    return config


# --------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------- #


class _WorkerCore:
    """One worker's estimator replicas; the logic shared by both executors.

    ``source`` is either a :class:`~repro.parallel.shm.ShmGraphDescriptor`
    (process executor — the core attaches the shared segment) or a
    :class:`CSRGraph` (sequential executor — used directly).  Everything
    downstream of that choice is identical, which is what makes the
    sequential executor a bit-exact oracle for the process one.
    """

    def __init__(self, worker_index: int) -> None:
        self.worker_index = worker_index
        self.shared: SharedCSRGraph | None = None
        self.csr: CSRGraph | None = None
        self.mirror: DiGraph | None = None
        self.delta_mode = False
        self.estimators: dict[str, object] = {}
        self.mounts: list[tuple[str, str, dict]] = []

    def _graph_from(self, source) -> CSRGraph:
        if isinstance(source, CSRGraph):
            return source
        if self.shared is None:
            self.shared = SharedCSRGraph.attach(source)
        else:
            self.shared.reattach(source)
        return self.shared.graph

    def build(
        self,
        source,
        mounts: list[tuple[str, str, dict]],
        delta_mode: bool = False,
    ) -> None:
        """Mount every replica against ``source`` (fresh RNG streams).

        Under ``delta_mode`` the replicas are built on a worker-local
        *mutable mirror* of the snapshot (``CSRGraph.to_digraph``) instead
        of the frozen arrays: incremental estimators read the live graph
        when notified, so the mirror is what :meth:`apply_delta` mutates in
        place.  The mirror's adjacency is in canonical CSR order, which is
        what makes replicas agree bit-for-bit across executors.
        """
        self.mounts = list(mounts)
        self.delta_mode = bool(delta_mode)
        # drop old replicas AND the old graph before reattaching: the old
        # segment is unmapped underneath any view that survives this point
        self.estimators = {}
        self.csr = None
        self.mirror = None
        self.csr = self._graph_from(source)
        target = self.csr
        if self.delta_mode:
            self.mirror = self.csr.to_digraph()
            target = self.mirror
        for key, name, config in self.mounts:
            self.estimators[key] = get_entry(name).build(target, **config)

    def rebuild(self, source) -> None:
        """Epoch bump: reattach the new generation and rebuild replicas."""
        self.build(source, self.mounts, self.delta_mode)

    def resolve_delta(self, payload) -> tuple[EdgeUpdate, ...]:
        """Materialise one delta RPC payload into its update sequence.

        ``("log", start, stop)`` reads the triples zero-copy from the
        shared delta log (process executor); ``("inline", updates)``
        carries them in the message (sequential executor — it has no shared
        segment).  Both forms denote the same updates, so either replays
        identically during crash recovery.
        """
        tag, *rest = payload
        if tag == "log":
            start, stop = rest
            return self.shared.read_deltas(start, stop)
        return tuple(rest[0])

    def apply_delta(self, updates: Sequence[EdgeUpdate]) -> None:
        """Absorb an update burst in place: O(Δ), no replica rebuild.

        Mirrors the sequential service's incremental dispatch exactly:
        each update first mutates the local graph mirror, then every
        replica is notified with that single update (estimators read the
        post-update graph, and replica RNG streams continue).
        """
        if self.mirror is None:
            raise QueryError(
                "delta RPC on a worker built without delta maintenance"
            )
        for update in updates:
            apply_update(self.mirror, update)
            for key, _, _ in self.mounts:
                self.estimators[key].apply_updates([update])

    def query(self, key: str, kind: str, k: int | None, ops):
        """Answer ``(op_id, node)`` ops in order with the ``key`` replica."""
        estimator = self.estimators[key]
        if kind == "topk":
            return [(op_id, estimator.topk(node, k)) for op_id, node in ops]
        return [(op_id, estimator.single_source(node)) for op_id, node in ops]

    def shutdown(self) -> None:
        self.estimators = {}
        self.csr = None
        if self.shared is not None:
            self.shared.close()
            self.shared = None


def _worker_main(conn, worker_index: int) -> None:  # pragma: no cover
    """Process-executor entry point: serve RPCs until ``exit`` or EOF.

    Estimator-level exceptions are caught and shipped back as ``("error",
    …)`` replies — the worker survives them; only interpreter-level faults
    (or ``kill -9``) take it down, and those the coordinator heals.

    (Excluded from coverage: this body runs inside worker processes, out of
    the tracer's sight; the multiprocess suite exercises it end to end and
    the sequential executor keeps the shared `_WorkerCore` logic measured.)
    """
    core = _WorkerCore(worker_index)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            command, payload = message
            try:
                if command == "build":
                    core.build(*payload)
                    reply = ("ok", None)
                elif command == "epoch":
                    core.rebuild(payload)
                    reply = ("ok", None)
                elif command == "delta":
                    core.apply_delta(core.resolve_delta(payload))
                    reply = ("ok", None)
                elif command == "query":
                    reply = ("ok", core.query(*payload))
                elif command == "ping":
                    reply = ("ok", worker_index)
                elif command == "exit":
                    conn.send(("ok", None))
                    break
                else:  # pragma: no cover - protocol misuse
                    reply = ("error", ("ValueError", f"unknown command {command!r}", ""))
            except BaseException as exc:  # noqa: BLE001 - shipped to coordinator
                reply = ("error", (type(exc).__name__, str(exc), traceback.format_exc()))
            conn.send(reply)
    finally:
        core.shutdown()
        conn.close()


class _ProcessWorker:
    """Coordinator-side handle for one worker process (pipe + liveness)."""

    def __init__(self, ctx, index: int) -> None:
        self.index = index
        self.conn, child = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main, args=(child, index), daemon=True,
            name=f"repro-parallel-w{index}",
        )
        self.process.start()
        child.close()  # coordinator keeps only its end; EOF propagates cleanly

    def send(self, message) -> None:
        try:
            self.conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashed(f"worker {self.index} pipe closed") from exc

    def recv(self, timeout: float):
        deadline = time.monotonic() + timeout
        while not self.conn.poll(0.02):
            if not self.process.is_alive():
                raise WorkerCrashed(f"worker {self.index} died")
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"worker {self.index} did not reply within {timeout}s"
                )
        try:
            return self.conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerCrashed(f"worker {self.index} died mid-reply") from exc

    def close(self, force: bool = False) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if force and self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.kill()
            self.process.join(timeout=5.0)


class _InlineWorker:
    """Sequential-executor handle: same RPC surface, runs in-process."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.core = _WorkerCore(index)
        self._reply = None

    def send(self, message) -> None:
        command, payload = message
        try:
            if command == "build":
                self.core.build(*payload)
                self._reply = ("ok", None)
            elif command == "epoch":
                self.core.rebuild(payload)
                self._reply = ("ok", None)
            elif command == "delta":
                self.core.apply_delta(self.core.resolve_delta(payload))
                self._reply = ("ok", None)
            elif command == "query":
                self._reply = ("ok", self.core.query(*payload))
            elif command in ("ping", "exit"):
                self._reply = ("ok", None)
            else:  # pragma: no cover - protocol misuse
                self._reply = ("error", ("ValueError", f"unknown {command!r}", ""))
        except Exception as exc:
            self._reply = ("error", (type(exc).__name__, str(exc), traceback.format_exc()))

    def recv(self, timeout: float):
        del timeout
        reply, self._reply = self._reply, None
        return reply

    def close(self, force: bool = False) -> None:
        del force
        self.core.shutdown()


# --------------------------------------------------------------------- #
# coordinator side
# --------------------------------------------------------------------- #


class ParallelSimRankService(QueryServiceBase):
    """Multiprocess SimRank serving: shared graph, worker pool, result cache.

    >>> from repro.graph import DiGraph
    >>> g = DiGraph.from_edges([(0, 1), (1, 0), (2, 0), (2, 1)])
    >>> with ParallelSimRankService(
    ...     g, methods=("probesim",), workers=2, executor="sequential",
    ...     configs={"probesim": {"eps_a": 0.2, "seed": 7}},
    ... ) as service:
    ...     service.single_source(0).score(0)
    1.0

    Parameters
    ----------
    graph:
        A mutable :class:`DiGraph` (enables :meth:`apply_edges`) or a frozen
        :class:`CSRGraph` (read-only service).  May be ``None`` when the
        graph comes from ``snapshot`` or ``store`` instead.
    snapshot:
        Path to a :mod:`repro.storage.snapshot` file to serve *read-only*.
        The coordinator never rebuilds the CSR: the process executor
        publishes the snapshot path as epoch 0 and every worker ``mmap``\\ s
        the file (one page-cache copy machine-wide); the sequential
        executor maps it in-process.  Mutually exclusive with ``graph`` and
        ``store``.
    store:
        An open :class:`~repro.storage.store.PersistentGraphStore` making
        this service *durable*: the graph is recovered from the store
        (``graph`` must be ``None``), every update burst is written ahead
        to the store's WAL before any worker sees it, and each rebuild sync
        (compaction) checkpoints a fresh snapshot generation.  After a
        crash, :func:`repro.storage.store.recover` lands exactly on the
        pre- or post-burst graph — never between.  The caller keeps
        ownership of the store handle (:meth:`close` does not close it).
    methods:
        Registry names to mount; each worker builds one replica per method.
        Methods whose capabilities declare ``parallel_safe=False`` are
        rejected unless ``allow_unsafe=True``.
    configs / default_method:
        As on :class:`~repro.api.service.SimRankService`.
    workers:
        Pool width (positive).  Throughput scales with cores for the
        ``process`` executor; ``sequential`` ignores parallelism but keeps
        the identical dispatch schedule (the determinism oracle).
    cache_size:
        Capacity of the coordinator-side update-aware result cache
        (``0`` disables it).
    auto_sync:
        When True (default) :meth:`apply_edges` immediately publishes a new
        epoch; when False the caller flushes with :meth:`sync`.
    maintenance:
        Update-maintenance path: ``"rebuild"`` (every sync publishes a new
        graph epoch and rebuilds all replicas — O(m) per burst),
        ``"delta"`` (syncs ship the edge deltas and replicas absorb them in
        place via ``apply_updates`` — O(Δ); requires every mounted method
        to advertise ``capabilities().incremental_updates`` and a mutable
        :class:`DiGraph`), or ``"auto"`` (default: delta exactly when every
        mount supports it).  See the module docstring for the full model.
    delta_log_capacity:
        Bound of the shared edge-delta log (entries).  A sync whose
        accumulated deltas would overflow the log *compacts* instead: one
        full epoch rebuild folds the log into a fresh CSR generation.
    executor:
        ``"process"`` (default) or ``"sequential"``.
    start_method:
        ``multiprocessing`` start method for the process executor
        (default: ``fork`` where available, else ``spawn``).
    rpc_timeout:
        Seconds to wait on a worker reply before the worker is treated as
        hung and replaced (a liveness backstop, not a latency budget).
    history_limit:
        Queries any one worker may serve before the pool is proactively
        rebuilt in place, bounding crash-recovery replay cost and the
        coordinator-side history memory.  The trigger depends only on the
        call sequence, so rollovers preserve bit-reproducibility.

    Always :meth:`close` the service (or use it as a context manager):
    that tears down the pool and unlinks the shared-memory segments.  A
    finalizer on the shared graph unlinks the segments even if ``close`` is
    never called, so crashes cannot leak ``/dev/shm`` entries.
    """

    def __init__(
        self,
        graph=None,
        methods: Sequence[str] = ("probesim",),
        configs: dict[str, dict] | None = None,
        default_method: str | None = None,
        workers: int = 2,
        cache_size: int = 0,
        auto_sync: bool = True,
        maintenance: str = "auto",
        delta_log_capacity: int = 256,
        executor: str = "process",
        start_method: str | None = None,
        allow_unsafe: bool = False,
        rpc_timeout: float = 300.0,
        history_limit: int = 10_000,
        snapshot=None,
        store=None,
    ) -> None:
        check_positive_int("workers", workers)
        check_positive_int("history_limit", history_limit)
        check_positive_int("delta_log_capacity", delta_log_capacity)
        if executor not in EXECUTORS:
            raise ConfigurationError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        if snapshot is not None and (graph is not None or store is not None):
            raise ConfigurationError(
                "snapshot= serves a frozen file; pass it without graph/store"
            )
        if store is not None and graph is not None:
            raise ConfigurationError(
                "pass either graph or store=, not both — a durable service "
                "recovers its graph from the store"
            )
        if graph is None and snapshot is None and store is None:
            raise ConfigurationError("need one of graph, snapshot=, or store=")
        if store is not None:
            graph = store.materialize()
        if maintenance not in MAINTENANCE_MODES:
            raise ConfigurationError(
                f"maintenance must be one of {MAINTENANCE_MODES}, "
                f"got {maintenance!r}"
            )
        if not methods:
            raise ConfigurationError("need at least one method to serve")
        super().__init__(graph, default_method=default_method)
        self.workers = int(workers)
        self.executor = executor
        self.auto_sync = auto_sync
        self.rpc_timeout = float(rpc_timeout)
        self.history_limit = int(history_limit)
        self.cache = ResultCache(cache_size)
        self._digraph = graph if isinstance(graph, DiGraph) else None
        self._mounts: dict[str, tuple[str, dict]] = {}
        configs = self._validate_configs(configs, methods)
        for name in methods:
            entry = get_entry(name)
            caps = entry.capabilities
            if caps is not None and not caps.parallel_safe and not allow_unsafe:
                raise ConfigurationError(
                    f"method {name!r} is not parallel_safe (its per-worker "
                    "epoch rebuild is impractical); pass allow_unsafe=True "
                    "to mount it anyway"
                )
            config = dict(configs.get(name, {}))
            unknown = sorted(set(config) - set(entry.config_keys))
            if unknown:  # fail fast here, not inside a worker build
                raise ConfigurationError(
                    f"method {name!r} does not accept config keys {unknown}; "
                    f"allowed: {sorted(entry.config_keys)}"
                )
            self._mounts[name] = (name, config)
        if self._default is None:
            self._default = next(iter(self._mounts))
        elif self._default not in self._mounts:
            raise ConfigurationError(
                f"default_method {self._default!r} is not among "
                f"{sorted(self._mounts)}"
            )
        self.delta_log_capacity = int(delta_log_capacity)
        self._maintenance = self._resolve_maintenance(maintenance)

        self._epoch = 0
        self._graph_stale = False
        self._closed = False
        self._single_rr = 0  # round-robin cursor for lone single_source calls
        #: per-worker crash-replay log: replayable RPC messages in order
        #: (single-op "query" messages interleaved with "delta" messages)
        self._histories: list[list[tuple[str, tuple]]] = [
            [] for _ in range(self.workers)
        ]
        #: per-worker count of *query* messages in the history — the
        #: rollover trigger.  Kept separately so the epoch's delta stream
        #: (bounded by the log capacity, and re-shipped by every rollover)
        #: can never re-trip the bound on its own.
        self._history_queries: list[int] = [0] * self.workers
        #: delta payloads shipped since the live epoch was published — the
        #: stream a rollover re-ships after its in-place rebuild
        self._delta_payloads: list[tuple] = []
        self._deltas_since_epoch = 0
        self._pending_updates: list[EdgeUpdate] = []
        self._touched_pending: set[int] = set()
        self._store = store
        self._store_logged = 0  # pending updates already in the store's WAL
        self._snapshot_handle: MappedSnapshot | None = None
        self._shm: SharedCSRGraph | None = None
        self._csr: CSRGraph | None = None
        self._workers: list = []
        try:
            if snapshot is not None:
                # warm attach: the CSR is never rebuilt, the snapshot file
                # itself backs every mapping (coordinator and workers alike)
                if executor == "process":
                    self._shm = SharedCSRGraph.from_snapshot(snapshot)
                    self._epoch = self._shm.current_epoch()
                    self._num_nodes = self._shm.descriptor.num_nodes
                    self._graph = self._shm.graph
                else:
                    self._snapshot_handle = attach_snapshot(snapshot)
                    self._csr = self._snapshot_handle.graph()
                    self._num_nodes = self._csr.num_nodes
                    self._graph = self._csr
            else:
                csr = as_csr(graph)
                self._num_nodes = csr.num_nodes
                if executor == "process":
                    self._shm = SharedCSRGraph.create(
                        csr,
                        delta_capacity=(
                            self.delta_log_capacity
                            if self._maintenance == "delta" else 0
                        ),
                    )
                    self._epoch = self._shm.current_epoch()
                else:
                    self._csr = csr
            if start_method is None:
                available = multiprocessing.get_all_start_methods()
                start_method = "fork" if "fork" in available else "spawn"
            self._ctx = multiprocessing.get_context(start_method)
            for index in range(self.workers):
                self._workers.append(self._spawn(index))
            for index in range(self.workers):
                self._build_worker(index)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------ #
    # pool plumbing
    # ------------------------------------------------------------------ #

    def _method_keys(self) -> Iterable[str]:
        return self._mounts

    def _resolve_maintenance(self, requested: str) -> str:
        """Resolve the ``maintenance`` knob to ``"delta"`` or ``"rebuild"``.

        Delta maintenance is sound only when every replica can absorb an
        update in place — i.e. every mounted method declares
        ``incremental_updates`` — and when there is a mutable graph to
        produce updates at all.  ``"auto"`` degrades to ``"rebuild"``
        quietly; an explicit ``"delta"`` request that cannot be honoured is
        a configuration error, not a silent downgrade.
        """
        non_incremental = sorted(
            key for key, (name, _) in self._mounts.items()
            if get_entry(name).capabilities is None
            or not get_entry(name).capabilities.incremental_updates
        )
        if requested == "rebuild":
            return "rebuild"
        if requested == "delta":
            if non_incremental:
                raise ConfigurationError(
                    "maintenance='delta' needs every mounted method to "
                    "support incremental_updates; these do not: "
                    f"{non_incremental}"
                )
            if self._digraph is None:
                raise ConfigurationError(
                    "maintenance='delta' needs a mutable DiGraph; this "
                    "service owns a frozen snapshot"
                )
            return "delta"
        return (
            "delta" if not non_incremental and self._digraph is not None
            else "rebuild"
        )

    @property
    def maintenance(self) -> str:
        """The resolved maintenance path: ``"delta"`` or ``"rebuild"``."""
        return self._maintenance

    def _spawn(self, index: int):
        if self.executor == "sequential":
            return _InlineWorker(index)
        return _ProcessWorker(self._ctx, index)

    def _worker_source(self):
        """What workers build against: a descriptor (process) or the CSR."""
        if self._shm is not None:
            return self._shm.descriptor
        return self._csr

    def _worker_mounts(self, index: int) -> list[tuple[str, str, dict]]:
        return [
            (key, name, derive_replica_config(get_entry(name), config, index))
            for key, (name, config) in self._mounts.items()
        ]

    def _build_worker(self, index: int) -> None:
        worker = self._workers[index]
        worker.send((
            "build",
            (
                self._worker_source(),
                self._worker_mounts(index),
                self._maintenance == "delta",
            ),
        ))
        self._expect_ok(worker.recv(self.rpc_timeout))

    def _revive(self, index: int) -> None:
        """Respawn a dead worker and fast-forward it to the live RNG state.

        The replay re-runs every message the worker served since the
        current epoch began — queries (results discarded) *and* delta
        bursts, in their original interleaving; replica RNG restarts at
        each epoch, so afterwards the replacement's graph mirror and RNG
        streams match the dead worker's exactly and determinism survives
        the crash.
        """
        self._workers[index].close(force=True)
        self._workers[index] = self._spawn(index)
        self._build_worker(index)
        worker = self._workers[index]
        for message in self._histories[index]:
            worker.send(message)
            self._expect_ok(worker.recv(self.rpc_timeout))
        with self._stats_lock:
            self.stats.worker_restarts += 1

    def _rebarrier(self, replay_deltas: bool = False) -> None:
        """Rebuild every worker against the current source, clearing the
        replay histories (replica RNG streams restart deterministically).

        Under delta maintenance the live epoch's graph generation predates
        the shipped deltas, so an in-place rebuild (``replay_deltas=True``
        — the history-bounding rollover) must re-ship the epoch's delta
        stream to bring the fresh mirrors back to the served graph state;
        after a *publish* the new generation already folds the deltas in
        and the stream is dropped instead.
        """
        self._histories = [[] for _ in range(self.workers)]
        self._history_queries = [0] * self.workers
        source = self._worker_source()
        self._rpc_all({w: ("epoch", source) for w in range(self.workers)})
        if replay_deltas:
            for payload in self._delta_payloads:
                self._rpc_all(
                    {w: ("delta", payload) for w in range(self.workers)}
                )
        else:
            self._delta_payloads = []
            self._deltas_since_epoch = 0

    def _maybe_rollover(self) -> None:
        """Bound the crash-replay history on long-serving epochs.

        Once any worker has served ``history_limit`` *queries* since the
        last rebuild, the pool is rebuilt in place: same graph generation,
        fresh per-worker RNG streams, histories reduced to the epoch's
        delta stream (re-shipped so the fresh mirrors match the served
        graph — its length is bounded by the log capacity, and it does not
        count toward the trigger, so a delta-heavy epoch cannot make every
        query roll the pool over).  The trigger is a pure function of the
        call sequence, so results stay bit-reproducible; cached answers
        stay valid because the graph epoch is unchanged.
        """
        if max(self._history_queries, default=0) >= self.history_limit:
            self._rebarrier(replay_deltas=True)

    def _expect_ok(self, reply):
        status, payload = reply
        if status == "ok":
            return payload
        name, message, trace = payload
        raise QueryError(
            f"worker raised {name}: {message}\n--- worker traceback ---\n{trace}"
        )

    def _record_history(self, index: int, message) -> None:
        """Append a successful message to the worker's replay history.

        Query messages are split into single-op messages (the rollover
        bound counts ops, and replay re-sends them one at a time); delta
        messages are recorded whole, in their position between the queries
        — the interleaving is what makes a crash replay reproduce the dead
        worker's graph mirror and RNG streams exactly.  Recording happens
        the moment the worker's reply is confirmed — not after the whole
        batch — so the replay log stays accurate even when a batch-mate
        errors or crashes mid-dispatch.
        """
        command, payload = message
        if command == "query":
            key, kind, k, ops = payload
            self._histories[index].extend(
                ("query", (key, kind, k, [(0, node)])) for _, node in ops
            )
            self._history_queries[index] += len(ops)
        elif command == "delta":
            self._histories[index].append(message)

    def _rpc_all(self, assignments: dict[int, tuple]) -> dict[int, object]:
        """Send one message per worker, gather replies, healing crashes.

        ``assignments`` maps worker index → message.  Crashed (or hung —
        ``rpc_timeout`` is the liveness backstop) workers are revived and
        their message re-sent.  Estimator-level errors raise only after
        every in-flight reply has been drained, so the request/reply pipes
        can never desynchronise.
        """
        pending = dict(assignments)
        replies: dict[int, object] = {}
        errors: list[BaseException] = []
        attempts = 0
        while pending:
            attempts += 1
            if attempts > 3 * max(len(assignments), 1):
                raise QueryError("workers keep crashing; giving up dispatch")
            sent = []
            crashed = []
            for index, message in pending.items():
                try:
                    self._workers[index].send(message)
                    sent.append(index)
                except WorkerCrashed:
                    crashed.append(index)
            for index in sent:
                try:
                    reply = self._workers[index].recv(self.rpc_timeout)
                except (WorkerCrashed, TimeoutError):
                    # a hung worker is indistinguishable from a dead one,
                    # and its late reply would poison the pipe: replace it
                    crashed.append(index)
                    continue
                del pending[index]
                try:
                    replies[index] = self._expect_ok(reply)
                    self._record_history(index, assignments[index])
                except QueryError as exc:
                    errors.append(exc)  # drain the rest before raising
            for index in crashed:
                try:
                    self._revive(index)
                except (WorkerCrashed, TimeoutError):
                    # the replacement died during build/replay too; its
                    # message is still pending, so the next attempt retries
                    # (and eventually trips the attempts cap above) instead
                    # of leaking the internal crash signal to callers
                    continue
        if errors:
            raise errors[0]
        return replies

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def single_source(self, query: int, method: str | None = None):
        """One single-source query (cache-probed, one worker round-trip)."""
        key = self._resolve_method(method)
        node = self._check_query_node(query)
        self._maybe_rollover()
        with self._stats_lock:
            self.stats.queries += 1
        cached = self.cache.get(key, node, self._epoch)
        if cached is not None:
            return cached
        index = self._single_rr % self.workers
        self._single_rr += 1
        records = self._rpc_all(
            {index: ("query", (key, "single_source", None, [(0, node)]))}
        )[index]
        result = records[0][1]
        self.cache.put(key, node, self._epoch, result)
        return result

    def topk(self, query: int, k: int, method: str | None = None):
        """One top-k query via the estimator's native top-k path.

        Dispatching ``topk`` (rather than slicing a cached single-source
        answer) preserves estimator-specific top-k behaviour such as
        adaptive early stopping; it therefore bypasses the result cache.
        """
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        key = self._resolve_method(method)
        node = self._check_query_node(query)
        self._maybe_rollover()
        with self._stats_lock:
            self.stats.queries += 1
        index = self._single_rr % self.workers
        self._single_rr += 1
        records = self._rpc_all(
            {index: ("query", (key, "topk", int(k), [(0, node)]))}
        )[index]
        return records[0][1]

    def single_source_many(
        self, queries: Sequence[int], method: str | None = None
    ) -> list:
        """A deduplicated batch, fanned out positionally across the pool.

        Distinct cache-missing queries are split ``misses[w::workers]``;
        worker ``w`` answers its share in order and the results merge back
        deterministically.  Duplicates and cache hits share answers.
        """
        key = self._resolve_method(method)
        batch = [self._check_query_node(query) for query in queries]
        self._maybe_rollover()
        distinct = list(dict.fromkeys(batch))
        by_query: dict[int, object] = {}
        misses = []
        for node in distinct:
            cached = self.cache.get(key, node, self._epoch)
            if cached is not None:
                by_query[node] = cached
            else:
                misses.append(node)
        ops = list(enumerate(misses))
        assignments = {
            w: ("query", (key, "single_source", None, ops[w :: self.workers]))
            for w in range(self.workers)
            if ops[w :: self.workers]
        }
        replies = self._rpc_all(assignments)
        merged = sorted(
            (op_id, result) for records in replies.values()
            for op_id, result in records
        )
        for op_id, result in merged:
            node = misses[op_id]
            by_query[node] = result
            self.cache.put(key, node, self._epoch, result)
        with self._stats_lock:
            self.stats.queries += len(batch)
            self.stats.batches += 1
            self.stats.batched_queries += len(batch)
            self.stats.batched_unique += len(distinct)
        return [by_query[node] for node in batch]

    # topk_many comes from QueryServiceBase: top-k views of the batched
    # single-source path, exactly like the sequential service.

    def capabilities(self, method: str | None = None):
        """Registry-declared capability descriptor of one served method."""
        name, _ = self._mounts[self._resolve_method(method)]
        return get_entry(name).capabilities

    # ------------------------------------------------------------------ #
    # dynamic maintenance
    # ------------------------------------------------------------------ #

    @property
    def epoch(self) -> int:
        """The graph generation queries are currently answered against."""
        return self._epoch

    def apply_edges(
        self,
        added: Iterable[tuple[int, int]] = (),
        removed: Iterable[tuple[int, int]] = (),
    ) -> int:
        """Apply edge insertions then deletions; maintain via :meth:`sync`."""
        updates = [EdgeUpdate("insert", int(s), int(t)) for s, t in added]
        updates += [EdgeUpdate("delete", int(s), int(t)) for s, t in removed]
        return self.apply_update_stream(updates)

    def apply_update_stream(self, updates: Iterable[EdgeUpdate]) -> int:
        """Apply an ordered update stream to the coordinator's graph.

        Workers keep serving the previous state until :meth:`sync` ships
        it (immediately under ``auto_sync``): as an O(Δ) delta burst when
        the resolved ``maintenance`` path is ``"delta"``, as an O(m) epoch
        rebuild otherwise.  The updates (and the neighborhood they touch —
        read *before* each update lands, see
        :func:`~repro.graph.dynamic.touched_neighborhood`) are accumulated
        here so a later deferred sync ships exactly this stream.
        """
        if self._digraph is None:
            raise ConfigurationError(
                "apply_edges needs a mutable DiGraph; this service owns a "
                "frozen snapshot"
            )
        count = 0
        track_deltas = self._maintenance == "delta"
        try:
            for update in updates:
                # neighborhood read before the edge flips (see the helper's
                # pre/post equivalence note), but recorded — like the
                # update itself — only once the mutation succeeded: a
                # rejected update must never reach a worker mirror
                touched = (
                    touched_neighborhood(self._digraph, (update,))
                    if track_deltas else None
                )
                apply_update(self._digraph, update)
                if track_deltas:  # rebuild syncs never read the accumulators
                    self._touched_pending |= touched
                    self._pending_updates.append(update)
                self._graph_stale = True
                count += 1
        finally:
            with self._stats_lock:
                self.stats.updates_applied += count
            if count and self.auto_sync:
                self.sync()
        return count

    def sync(self) -> None:
        """Ship the accumulated graph mutations to the worker pool.

        Delta path (resolved ``maintenance == "delta"``, and the bounded
        log can hold the burst): append the pending updates to the shared
        edge-delta log, RPC every worker to absorb them in place
        (``apply_updates`` on each replica — RNG streams continue), and
        invalidate only the cache entries whose query node falls in the
        touched neighborhood.  O(Δ); the graph epoch does not move.

        Rebuild path (``maintenance == "rebuild"``, or the log overflowed
        — *compaction*): snapshot the coordinator graph, publish it as a
        fresh shared-memory generation, rebuild every worker's replicas
        against it, invalidate every superseded cache entry, and only then
        unlink the previous generation.  O(m); empties the delta log.

        Idempotent when nothing changed.  Wall-clock is charged to
        ``stats.maintenance_seconds`` split evenly across the mounted
        methods; ``stats.delta_syncs`` / ``stats.epochs`` count which path
        each sync took.
        """
        if not self._graph_stale:
            return
        started = time.perf_counter()
        pending = tuple(self._pending_updates)
        if self._store is not None and len(pending) > self._store_logged:
            # write-ahead: the burst is durable before any worker serves it,
            # so crash recovery lands on the pre- or post-burst graph, never
            # between.  Only the not-yet-logged suffix is appended — a sync
            # retried after a failed dispatch must not duplicate records
            # (replaying a duplicate insert would not apply).
            self._store.log(pending[self._store_logged:])
            self._store_logged = len(pending)
        # the burst must be non-empty for the delta path: a stale graph
        # with nothing pending only occurs while recovering from an earlier
        # failed sync, and recovery is exactly what the rebuild provides
        use_delta = (
            self._maintenance == "delta"
            and bool(pending)
            and self._deltas_since_epoch + len(pending)
            <= self.delta_log_capacity
        )
        delta_error: BaseException | None = None
        if use_delta:
            try:
                self._sync_delta(pending)
            except Exception as exc:
                # a mid-burst failure (an estimator raising in
                # apply_updates, a worker crash storm) can leave some
                # mirrors updated and others not, with the burst already in
                # the shared log: fall through to a healing compaction.
                # The fresh generation rebuilds every replica from the
                # coordinator graph and empties the log, so the service is
                # consistent again when the error surfaces — mirroring the
                # sequential service's "synced over the applied prefix"
                # guarantee.
                delta_error = exc
        if not use_delta or delta_error is not None:
            # if the rebuild itself raises, every accumulator (and
            # _graph_stale) is left intact, so a later sync() retries with
            # the full record instead of silently shipping nothing
            self._sync_rebuild()
        # only a completed path — delta absorbed in place, or a rebuild
        # that folded everything into the fresh generation — spends the
        # pending record and the staleness flag
        self._pending_updates = []
        self._touched_pending = set()
        self._store_logged = 0
        self._graph_stale = False
        elapsed = time.perf_counter() - started
        with self._stats_lock:
            self.stats.syncs += 1
            for key in self._mounts:
                self.stats.charge_maintenance(key, elapsed / len(self._mounts))
        if delta_error is not None:
            raise delta_error

    def _sync_delta(self, pending: tuple[EdgeUpdate, ...]) -> None:
        """O(Δ) maintenance: ship ``pending`` for in-place absorption."""
        if self._shm is not None:
            start, stop = self._shm.append_deltas(pending)
            payload = ("log", start, stop)
        else:
            payload = ("inline", pending)
        self._rpc_all({w: ("delta", payload) for w in range(self.workers)})
        self._delta_payloads.append(payload)
        self._deltas_since_epoch += len(pending)
        self.cache.invalidate_nodes(self._touched_pending)
        with self._stats_lock:
            self.stats.delta_syncs += 1
            self.stats.delta_updates += len(pending)
            self.stats.incremental_notifications += (
                len(pending) * len(self._mounts)
            )

    def _sync_rebuild(self) -> None:
        """O(m) maintenance: publish a fresh epoch and rebarrier the pool.

        Under delta maintenance this is *compaction* — the new generation
        folds every logged delta (plus the burst that overflowed the log)
        into its CSR arrays, and the log resets to empty.
        """
        csr = CSRGraph.from_digraph(self._digraph)
        self._num_nodes = csr.num_nodes
        old_epoch = self._epoch
        if self._shm is not None:
            self._epoch = self._shm.publish(csr)
        else:
            self._csr = csr
            self._epoch = old_epoch + 1
        self._rebarrier(replay_deltas=False)
        if self._shm is not None:
            self._shm.release_epoch(old_epoch)
        self.cache.invalidate_older(self._epoch)
        if self._store is not None:
            # compaction checkpoints: the fresh snapshot folds the WAL in
            # and the store rotates to an empty next-generation log.  Either
            # side of a crash here recovers to this same graph — the old
            # snapshot + full WAL before the rename, the new snapshot after.
            self._store.checkpoint(csr)
        with self._stats_lock:
            self.stats.epochs += 1

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def _check_query_node(self, query) -> int:
        node = self._check_query_id(query)
        if not 0 <= node < self._num_nodes:
            raise QueryError(
                f"query node {node} out of range [0, {self._num_nodes})"
            )
        return node

    def close(self) -> None:
        """Shut the pool down and unlink every shared-memory segment."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.send(("exit", None))
                worker.recv(5.0)
            except (WorkerCrashed, TimeoutError):
                pass
            worker.close(force=True)
        self._workers = []
        if self._shm is not None:
            self._shm.close()
            self._shm = None
        if self._snapshot_handle is not None:
            self._graph = None
            self._csr = None
            try:
                self._snapshot_handle.close()
            except BufferError:  # a caller still holds graph views
                pass
            self._snapshot_handle = None

    # __enter__/__exit__ come from QueryServiceBase: `with` guarantees close().

    def __repr__(self) -> str:
        return (
            f"ParallelSimRankService(methods={self.methods}, "
            f"workers={self.workers}, executor={self.executor!r}, "
            f"epoch={self._epoch}, queries={self.stats.queries})"
        )
