"""Sharded SimRank serving: a router over per-shard worker groups.

:class:`ShardedSimRankService` lifts the shared-memory parallel service
past its one-pool ceiling: the graph is partitioned into ``P`` shards
(:mod:`repro.parallel.partition`), each shard owns one
:class:`~repro.parallel.pool.ParallelSimRankService` — its own
:class:`~repro.parallel.shm.SharedCSRGraph` segment, worker group, delta
log, and result cache — and this router speaks the usual
:class:`~repro.api.service.QueryServiceBase` surface on top:

Routing
    A single-source or top-k query goes to the shard *owning* the query
    node.  A ``*_many`` batch is split by owner (relative order within
    each shard preserved), the per-shard sub-batches fan out
    shard-parallel, and the answers merge back in the caller's order.
    Each shard then applies the unsharded service's deterministic
    schedule — dedup, cache probe, positional split — to its own
    sub-batch, so the full dispatch is a pure function of
    ``(graph, partition, configs, workers, call sequence)``.

Shard-scoped updates
    Shard ``s`` serves the subgraph of edges incident to its owned nodes,
    so an edge update ``(u, v)`` is routed to ``owner(u)`` and
    ``owner(v)`` only: the burst rides each owning shard's delta log and
    invalidates each owning shard's cache neighborhood, and every other
    shard — whose graph does not contain the edge — keeps serving
    untouched, caches warm.  A spanning update (endpoints in two shards)
    lands on both.

Determinism contract
    ``executor="sequential"`` replays the identical per-shard schedule
    in-process and is the bit-exactness oracle at every ``P``.  With
    ``P=1`` the single shard's subgraph *is* the input graph
    (adjacency order included), so the service is bit-identical to an
    unsharded :class:`~repro.parallel.pool.ParallelSimRankService` with
    the same knobs — the anchor the correctness suite pins.

Answers at ``P>1`` are computed against the shard-local subgraph: walks
never cross into edges not incident to the owning shard, which is the
locality approximation that buys O(m/P)-ish per-shard memory and
shard-parallel throughput.  Each shard count is therefore its *own*
estimator configuration with its own sequential oracle, exactly like a
different ``eps_a``: deterministic and reproducible per ``P``, not
bit-comparable across ``P``.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.api.service import QueryServiceBase, ServiceStats
from repro.errors import ConfigurationError, QueryError
from repro.graph.csr import CSRGraph, as_csr
from repro.graph.digraph import DiGraph
from repro.graph.dynamic import EdgeUpdate, apply_update
from repro.parallel.partition import (
    Partition,
    make_partition,
    shard_subgraph,
)
from repro.parallel.pool import ParallelSimRankService
from repro.storage.snapshot import (
    SnapshotError,
    fsync_directory,
    read_snapshot_header,
    write_snapshot,
)
from repro.utils.validation import check_positive_int

__all__ = [
    "ShardedCacheView",
    "ShardedSimRankService",
    "load_shard_partition",
    "shard_snapshot_path",
    "write_shard_snapshots",
]

#: routing manifest file inside a shard-snapshot directory.
SHARD_MANIFEST = "shards.json"
#: node-ownership array file inside a shard-snapshot directory.
SHARD_OWNER_FILE = "partition.npy"


def shard_snapshot_path(directory: str | Path, shard: int) -> Path:
    """The snapshot file of one shard inside a shard-snapshot directory."""
    return Path(directory) / f"shard-{shard:02d}.csr"


def write_shard_snapshots(
    graph,
    directory: str | Path,
    shards: int,
    partition: "str | Partition" = "hash",
) -> Partition:
    """Cut ``graph`` into per-shard snapshot files plus a routing manifest.

    Writes one :mod:`repro.storage.snapshot` file per shard (the subgraph of
    edges incident to the shard's owned nodes — exactly what
    :class:`ShardedSimRankService` serves), the node-ownership array, and a
    ``shards.json`` manifest.  The manifest is written last, so a directory
    that has one is complete.  A sharded service then warm-attaches the
    whole tier with ``snapshot=directory`` — no partitioning and no
    per-shard CSR cuts at startup.  Returns the partition used.
    """
    check_positive_int("shards", shards)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if isinstance(partition, Partition):
        if partition.num_shards != shards:
            raise ConfigurationError(
                f"partition has {partition.num_shards} shards but "
                f"{shards} were requested"
            )
    else:
        partition = make_partition(graph, shards, partition)
    if partition.num_nodes != graph.num_nodes:
        raise ConfigurationError(
            f"partition covers {partition.num_nodes} nodes but the graph "
            f"has {graph.num_nodes}"
        )
    for shard in range(partition.num_shards):
        sub = CSRGraph.from_digraph(shard_subgraph(graph, partition, shard))
        write_snapshot(sub, shard_snapshot_path(directory, shard))
    np.save(directory / SHARD_OWNER_FILE, np.asarray(partition.owner))
    manifest = {
        "shards": partition.num_shards,
        "strategy": partition.strategy,
        "num_nodes": partition.num_nodes,
        "graph_digest": as_csr(graph).digest(),
    }
    tmp = directory / f".{SHARD_MANIFEST}.tmp-{os.getpid()}"
    try:
        tmp.write_text(json.dumps(manifest, indent=2) + "\n")
        os.replace(tmp, directory / SHARD_MANIFEST)
        fsync_directory(directory)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return partition


def load_shard_partition(directory: str | Path) -> Partition:
    """Read the routing partition of a shard-snapshot directory.

    Validates the manifest against the ownership array and checks every
    shard's snapshot header (cheap — payloads are not read), so a torn or
    partially written directory is rejected before any service spins up.
    """
    directory = Path(directory)
    manifest_file = directory / SHARD_MANIFEST
    if not manifest_file.is_file():
        raise SnapshotError(
            f"{directory}: not a shard-snapshot directory (no {SHARD_MANIFEST})"
        )
    manifest = json.loads(manifest_file.read_text())
    owner = np.load(directory / SHARD_OWNER_FILE)
    partition = Partition(owner, int(manifest["shards"]), str(manifest["strategy"]))
    if partition.num_nodes != int(manifest["num_nodes"]):
        raise SnapshotError(
            f"{directory}: ownership array covers {partition.num_nodes} "
            f"nodes, manifest says {manifest['num_nodes']}"
        )
    for shard in range(partition.num_shards):
        header = read_snapshot_header(shard_snapshot_path(directory, shard))
        if header.num_nodes != partition.num_nodes:
            raise SnapshotError(
                f"{shard_snapshot_path(directory, shard)}: shard snapshot "
                f"has {header.num_nodes} nodes, partition covers "
                f"{partition.num_nodes}"
            )
    return partition


class ShardedCacheView:
    """A read-side merge of every shard's result cache.

    Exposes the surface the workload driver and the HTTP ``/metrics``
    endpoint read (``enabled``, ``snapshot()``); mutation stays with the
    per-shard caches, which the shards' own sync paths invalidate.
    """

    def __init__(self, caches: Sequence) -> None:
        self._caches = tuple(caches)

    @property
    def enabled(self) -> bool:
        """True when any shard's cache is enabled."""
        return any(cache.enabled for cache in self._caches)

    @property
    def capacity(self) -> int:
        """Total capacity across shards."""
        return sum(cache.capacity for cache in self._caches)

    def __len__(self) -> int:
        return sum(len(cache) for cache in self._caches)

    def snapshot(self) -> dict[str, object]:
        """Summed counter snapshot across shards (per-shard locked reads)."""
        merged = {
            "hits": 0, "misses": 0, "evictions": 0, "invalidations": 0,
            "size": 0,
        }
        for cache in self._caches:
            snap = cache.snapshot()
            for key in merged:
                merged[key] += snap[key]
        lookups = merged["hits"] + merged["misses"]
        merged["hit_rate"] = merged["hits"] / lookups if lookups else 0.0
        return merged

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (
            f"ShardedCacheView(shards={len(self._caches)}, "
            f"size={snap['size']}, hit_rate={snap['hit_rate']:.2f})"
        )


class ShardedSimRankService(QueryServiceBase):
    """Route queries and updates across per-shard parallel services.

    >>> from repro.graph import DiGraph
    >>> g = DiGraph.from_edges([(0, 1), (1, 0), (2, 0), (2, 1)])
    >>> with ShardedSimRankService(
    ...     g, methods=("probesim",), shards=2, workers=1,
    ...     executor="sequential",
    ...     configs={"probesim": {"eps_a": 0.2, "seed": 7}},
    ... ) as service:
    ...     service.single_source(0).score(0)
    1.0

    Parameters
    ----------
    graph:
        A mutable :class:`DiGraph` (enables :meth:`apply_edges`) or a
        frozen :class:`CSRGraph` (read-only service).  Each shard serves
        its own subgraph copy; a mutable input graph is kept current as
        the router applies updates, so ``service.graph`` always shows the
        global state.  May be ``None`` when ``snapshot`` is given.
    snapshot:
        Path to a directory written by :func:`write_shard_snapshots`.  The
        routing partition and every shard's subgraph come from the
        directory's files — shard services ``mmap`` their snapshot instead
        of re-cutting CSR subgraphs — and the tier is read-only.  Mutually
        exclusive with ``graph``; ``shards`` / ``partition`` default to
        the directory's manifest (a conflicting explicit value is an
        error).
    shards:
        Number of shards ``P`` (positive; default 2, or the manifest's
        count when serving from ``snapshot``).  Each shard owns one shared
        graph segment and one worker group, so the total worker count is
        ``shards * workers``.
    partition:
        ``"hash"`` (default), ``"degree"``, or a prebuilt
        :class:`~repro.parallel.partition.Partition` covering the graph.
    workers:
        Worker-group width *per shard*.
    cache_size:
        Result-cache capacity *per shard* (``0`` disables caching).
    methods / configs / default_method / auto_sync / maintenance /
    delta_log_capacity / executor / start_method / allow_unsafe /
    rpc_timeout / history_limit:
        As on :class:`~repro.parallel.pool.ParallelSimRankService`; every
        shard gets the same configuration, so replica seeds depend on the
        worker index only and ``P=1`` reproduces the unsharded service
        exactly.

    Always :meth:`close` the service (or use it as a context manager) —
    it tears down every shard's pool and shared-memory segments.
    """

    def __init__(
        self,
        graph=None,
        methods: Sequence[str] = ("probesim",),
        configs: dict[str, dict] | None = None,
        default_method: str | None = None,
        shards: int | None = None,
        partition: "str | Partition" = "hash",
        workers: int = 2,
        cache_size: int = 0,
        auto_sync: bool = True,
        maintenance: str = "auto",
        delta_log_capacity: int = 256,
        executor: str = "process",
        start_method: str | None = None,
        allow_unsafe: bool = False,
        rpc_timeout: float = 300.0,
        history_limit: int = 10_000,
        snapshot=None,
    ) -> None:
        snapshot_dir = Path(snapshot) if snapshot is not None else None
        if snapshot_dir is not None:
            if graph is not None:
                raise ConfigurationError(
                    "snapshot= serves frozen shard files; pass it without graph"
                )
            if isinstance(partition, Partition):
                raise ConfigurationError(
                    "snapshot= directories carry their own partition; do not "
                    "pass a Partition object too"
                )
            stored = load_shard_partition(snapshot_dir)
            if shards is not None and int(shards) != stored.num_shards:
                raise ConfigurationError(
                    f"snapshot directory holds {stored.num_shards} shards "
                    f"but {shards} were requested"
                )
            shards = stored.num_shards
            partition = stored
        elif graph is None:
            raise ConfigurationError("need one of graph or snapshot=")
        elif shards is None:
            shards = 2
        check_positive_int("shards", shards)
        super().__init__(graph, default_method=default_method)
        self.shards = int(shards)
        self.workers = int(workers)
        self.executor = executor
        self.auto_sync = auto_sync
        self._digraph = graph if isinstance(graph, DiGraph) else None
        if isinstance(partition, Partition):
            if partition.num_shards != self.shards:
                raise ConfigurationError(
                    f"partition has {partition.num_shards} shards but the "
                    f"service was asked for {self.shards}"
                )
            self.partition = partition
        else:
            self.partition = make_partition(graph, self.shards, partition)
        self._num_nodes = (
            graph.num_nodes if graph is not None else self.partition.num_nodes
        )
        if self.partition.num_nodes != self._num_nodes:
            raise ConfigurationError(
                f"partition covers {self.partition.num_nodes} nodes but "
                f"the graph has {self._num_nodes}"
            )
        self._closed = False
        self._stale = False  # guarded-by: _stats_lock
        self._updates_applied = 0  # guarded-by: _stats_lock
        self._syncs = 0  # guarded-by: _stats_lock
        self._services: list[ParallelSimRankService] = []
        self._fanout: ThreadPoolExecutor | None = None
        try:
            for shard in range(self.shards):
                if snapshot_dir is not None:
                    sub = None
                    shard_snapshot = shard_snapshot_path(snapshot_dir, shard)
                else:
                    shard_snapshot = None
                    sub = shard_subgraph(graph, self.partition, shard)
                    if self._digraph is None:
                        # frozen input: shards must be read-only too
                        sub = CSRGraph.from_digraph(sub)
                self._services.append(ParallelSimRankService(
                    sub,
                    methods=methods,
                    configs=configs,
                    default_method=default_method,
                    workers=workers,
                    cache_size=cache_size,
                    auto_sync=False,  # the router owns the sync cadence
                    maintenance=maintenance,
                    delta_log_capacity=delta_log_capacity,
                    executor=executor,
                    start_method=start_method,
                    allow_unsafe=allow_unsafe,
                    rpc_timeout=rpc_timeout,
                    history_limit=history_limit,
                    snapshot=shard_snapshot,
                ))
            self._default = self._services[0]._default
            if executor == "process" and self.shards > 1:
                self._fanout = ThreadPoolExecutor(
                    max_workers=self.shards,
                    thread_name_prefix="repro-shard",
                )
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------ #
    # protocol surface
    # ------------------------------------------------------------------ #

    def _method_keys(self) -> Iterable[str]:
        return self._services[0]._mounts

    @property
    def shard_services(self) -> tuple[ParallelSimRankService, ...]:
        """The per-shard services, in shard order (read-only tuple)."""
        return tuple(self._services)

    @property
    def maintenance(self) -> str:
        """The resolved maintenance path (identical on every shard)."""
        return self._services[0].maintenance

    @property
    def epoch(self) -> int:
        """Summed shard epochs: moves exactly when any shard republishes."""
        return sum(service.epoch for service in self._services)

    @property
    def cache(self) -> ShardedCacheView:
        """Merged read view over the per-shard result caches."""
        return ShardedCacheView([s.cache for s in self._services])

    @property
    def stats(self) -> ServiceStats:
        """Merged operational counters across shards.

        Query-side counters sum over shards (ownership sets are disjoint,
        so the sums carry their global meaning); maintenance events that
        are genuinely per-shard (epochs, delta syncs, notifications,
        restarts) sum too.  ``updates_applied`` and ``syncs`` report the
        *router-level* counts — a spanning update lands on two shards but
        is one logical update, and one :meth:`sync` flushes every shard.
        """
        merged = ServiceStats()
        for service in self._services:
            stats = service.stats
            merged.queries += stats.queries
            merged.batches += stats.batches
            merged.batched_queries += stats.batched_queries
            merged.batched_unique += stats.batched_unique
            merged.epochs += stats.epochs
            merged.delta_syncs += stats.delta_syncs
            merged.delta_updates += stats.delta_updates
            merged.incremental_notifications += stats.incremental_notifications
            merged.worker_restarts += stats.worker_restarts
            for method, seconds in stats.maintenance_seconds.items():
                merged.charge_maintenance(method, seconds)
        merged.updates_applied = self._updates_applied
        merged.syncs = self._syncs
        return merged

    @stats.setter
    def stats(self, value: ServiceStats) -> None:
        # QueryServiceBase.__init__ assigns a fresh ServiceStats; the
        # router's stats are a computed merge, so the assignment is
        # accepted and discarded (per-shard counters are authoritative).
        del value

    def capabilities(self, method: str | None = None):
        """Registry-declared capability descriptor of one served method."""
        return self._services[0].capabilities(method)

    def _check_query_node(self, query) -> int:
        node = self._check_query_id(query)
        if not 0 <= node < self._num_nodes:
            raise QueryError(
                f"query node {node} out of range [0, {self._num_nodes})"
            )
        return node

    def _owner_of(self, node: int) -> int:
        return int(self.partition.owner[node])

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def single_source(self, query: int, method: str | None = None):
        """One single-source query, answered by the owning shard."""
        key = self._resolve_method(method)
        node = self._check_query_node(query)
        return self._services[self._owner_of(node)].single_source(node, key)

    def topk(self, query: int, k: int, method: str | None = None):
        """One top-k query, answered by the owning shard."""
        key = self._resolve_method(method)
        node = self._check_query_node(query)
        return self._services[self._owner_of(node)].topk(node, k, key)

    def single_source_many(
        self, queries: Sequence[int], method: str | None = None
    ) -> list:
        """A batch split by owning shard, fanned out shard-parallel.

        Every shard receives its members in the caller's relative order
        and runs the unsharded dedup/cache-probe/positional-split schedule
        on them; the per-shard answers merge back in global batch order.
        Shards execute concurrently under the process executor (each shard
        is its own worker pool), serially in shard order under the
        sequential oracle — either way each shard's answers depend only on
        its own sub-batch, so the merged batch is deterministic.
        """
        key = self._resolve_method(method)
        batch = [self._check_query_node(query) for query in queries]
        per_shard: dict[int, list[int]] = {}
        for node in batch:
            per_shard.setdefault(self._owner_of(node), []).append(node)
        answered: dict[int, list] = {}
        items = sorted(per_shard.items())
        if self._fanout is not None and len(items) > 1:
            futures = [
                (shard, self._fanout.submit(
                    self._services[shard].single_source_many, nodes, key
                ))
                for shard, nodes in items
            ]
            answered = {shard: future.result() for shard, future in futures}
        else:
            answered = {
                shard: self._services[shard].single_source_many(nodes, key)
                for shard, nodes in items
            }
        cursors = {shard: iter(results) for shard, results in answered.items()}
        return [next(cursors[self._owner_of(node)]) for node in batch]

    # topk_many comes from QueryServiceBase: top-k views of the batched
    # single-source path, exactly like both unsharded services.

    # ------------------------------------------------------------------ #
    # dynamic maintenance
    # ------------------------------------------------------------------ #

    def apply_edges(
        self,
        added: Iterable[tuple[int, int]] = (),
        removed: Iterable[tuple[int, int]] = (),
    ) -> int:
        """Apply edge insertions then deletions; maintain via :meth:`sync`."""
        updates = [EdgeUpdate("insert", int(s), int(t)) for s, t in added]
        updates += [EdgeUpdate("delete", int(s), int(t)) for s, t in removed]
        return self.apply_update_stream(updates)

    def apply_update_stream(self, updates: Iterable[EdgeUpdate]) -> int:
        """Route an ordered update stream to each update's owning shards.

        Every update first mutates the router's global graph (validating
        it — an invalid update never reaches a shard), then lands on the
        subgraphs of ``owner(source)`` and ``owner(target)`` in shard
        order.  Non-owning shards are untouched: their graphs do not
        contain the edge.  Shards buffer the updates (their
        ``auto_sync`` is off); :meth:`sync` ships them — immediately when
        the router's ``auto_sync`` is on.
        """
        if self._digraph is None:
            raise ConfigurationError(
                "apply_edges needs a mutable DiGraph; this service owns a "
                "frozen snapshot"
            )
        count = 0
        try:
            for update in updates:
                owners = sorted({
                    self._owner_of(self._check_query_node(update.source)),
                    self._owner_of(self._check_query_node(update.target)),
                })
                apply_update(self._digraph, update)
                for shard in owners:
                    self._services[shard].apply_update_stream([update])
                count += 1
        finally:
            # narrow scope: the lock is released before sync() fans out to
            # the shard services (which take their own _stats_lock)
            with self._stats_lock:
                self._updates_applied += count
                if count:
                    self._stale = True
            if count and self.auto_sync:
                self.sync()
        return count

    def sync(self) -> None:
        """Flush every shard's buffered maintenance, in shard order.

        Each shard independently takes its delta or rebuild path exactly
        as the unsharded service would for the updates it owns; shards
        with nothing pending no-op.  Idempotent.
        """
        for service in self._services:
            service.sync()
        with self._stats_lock:
            if self._stale:
                self._syncs += 1
                self._stale = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Close every shard service and the fan-out pool.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for service in self._services:
            service.close()
        if self._fanout is not None:
            self._fanout.shutdown(wait=True)
            self._fanout = None

    # __enter__/__exit__ come from QueryServiceBase: `with` guarantees close().

    def __repr__(self) -> str:
        return (
            f"ShardedSimRankService(methods={self.methods}, "
            f"shards={self.shards}, workers={self.workers}, "
            f"partition={self.partition.strategy!r}, "
            f"executor={self.executor!r}, epoch={self.epoch})"
        )
