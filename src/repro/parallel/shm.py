"""Zero-copy CSR graph snapshots in POSIX shared memory.

The process-parallel serving layer (:mod:`repro.parallel.pool`) separates
compute from data the way shared-data HTAP systems do: every worker process
answers queries against the *same* physical adjacency arrays, mapped
read-only into its address space, instead of each worker pickling and
copying the graph.  :class:`SharedCSRGraph` is that shared-data half:

Creator side (the service coordinator)
    :meth:`SharedCSRGraph.create` packs a :class:`~repro.graph.csr.CSRGraph`
    snapshot's adjacency payload (``SHM_LAYOUT`` order) into one
    ``multiprocessing.shared_memory`` segment per graph *generation*, plus a
    tiny control segment holding the current generation counter (the
    *epoch*).  After graph mutations, :meth:`SharedCSRGraph.publish` writes
    the new snapshot into a fresh segment and bumps the epoch; the old
    segment stays mapped until every worker has moved over
    (:meth:`SharedCSRGraph.release_epoch`), so readers never observe a
    half-written graph.

Worker side
    :meth:`SharedCSRGraph.attach` maps the segment named by a (picklable)
    :class:`ShmGraphDescriptor` and rebuilds a :class:`CSRGraph` whose
    arrays are views straight into the shared buffer — no copy, O(1)
    regardless of graph size.  :meth:`SharedCSRGraph.stale` compares the
    attached epoch against the control segment's live counter, so workers
    detect graph epochs without any message traffic;
    :meth:`SharedCSRGraph.reattach` moves an attachment to a newer
    generation.

Edge-delta log (the O(Δ) maintenance path)
    Publishing a fresh generation costs O(m) — the right price for a bulk
    replacement, the wrong one for a handful of edge updates.  A
    ``SharedCSRGraph`` created with ``delta_capacity > 0`` therefore also
    carries one *delta log* segment (``{base_name}-dlog``): a bounded
    append-only array of ``(kind, source, target)`` triples shared by every
    generation.  The owner :meth:`append_deltas` small update bursts and
    readers :meth:`read_deltas` them zero-copy, applying the deltas to
    worker-local state in place instead of remapping a whole new CSR
    generation.  The published entry count lives in the control segment and
    is bumped only *after* the triples are written, so readers never see a
    torn entry.  :meth:`publish` (compaction: the log overflowed, or a bulk
    change arrived) folds everything into a fresh CSR generation and resets
    the log to empty.

Lifecycle discipline
    Segments are named (they outlive processes), so leak hygiene matters:
    the creator owns unlinking, does it in :meth:`close`, and carries a
    ``weakref.finalize`` safety net so dropping the last reference — or a
    crashing coordinator unwinding the interpreter — still removes every
    segment.  Attachments never unlink.  Python's ``resource_tracker`` (one
    process shared by the whole tree, set-keyed) is left alone: the owner's
    ``unlink`` unregisters each name exactly once, and if the coordinator is
    killed outright the tracker unlinks the leftovers — a second safety net.
"""

from __future__ import annotations

import gc
import os
import secrets
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph, as_csr, payload_layout
from repro.graph.dynamic import EdgeUpdate
from repro.storage.snapshot import MappedSnapshot

__all__ = ["ShmGraphDescriptor", "SharedCSRGraph"]

#: control segment payload: int64 epoch counter + int64 delta-log count.
_CONTROL_BYTES = 16

#: delta-log entry: (kind, source, target) int64 triples; kind codes below.
_DELTA_FIELDS = 3
_DELTA_KINDS = ("insert", "delete")


def _segment_layout(num_nodes: int, num_edges: int):
    """``[(field, dtype, offset, count)]`` for one generation's data segment.

    Identical to the on-disk snapshot payload by construction — both sides
    delegate to :func:`repro.graph.csr.payload_layout`, which is what lets a
    :class:`~repro.storage.snapshot.MappedSnapshot` stand in for a
    shared-memory segment byte for byte.
    """
    return payload_layout(num_nodes, num_edges)


def _close_segment(segment: shared_memory.SharedMemory) -> None:
    """Close one mapping, tolerating still-exported numpy views.

    ``SharedMemory.close`` raises :class:`BufferError` while any numpy view
    into the buffer is alive; dropping the graph normally releases them, but
    an estimator held elsewhere may pin one.  The mapping then stays open
    until process exit — harmless, and crucially independent of *unlinking*,
    which the owner can always do.
    """
    try:
        segment.close()
    except BufferError:
        gc.collect()
        try:
            segment.close()
        except BufferError:
            pass


@dataclass(frozen=True)
class ShmGraphDescriptor:
    """Everything a worker needs to map one graph generation (picklable).

    The data segment's name is derived — ``{base_name}-g{epoch}`` — so a
    worker that learns a newer epoch (from the control counter) can attach
    the matching segment without any further coordination.
    ``delta_capacity > 0`` tells the worker to also map the (per-base,
    generation-independent) edge-delta log segment.  A non-``None``
    ``snapshot_path`` means this generation's payload lives in an on-disk
    snapshot file rather than a shared-memory segment: workers ``mmap`` the
    file instead of attaching ``data_name`` (the kernel page cache then
    plays the role of the shm segment — one physical copy machine-wide).
    """

    base_name: str
    epoch: int
    num_nodes: int
    num_edges: int
    delta_capacity: int = 0
    snapshot_path: str | None = None

    @property
    def data_name(self) -> str:
        """Name of this generation's data segment."""
        return f"{self.base_name}-g{self.epoch}"

    @property
    def delta_name(self) -> str:
        """Name of the shared edge-delta log segment."""
        return f"{self.base_name}-dlog"


class SharedCSRGraph:
    """One CSR graph in shared memory, versioned by a generation counter.

    Construct with :meth:`create` (owner / coordinator side) or
    :meth:`attach` (worker side); never directly.  Both sides expose
    :attr:`graph` (a zero-copy :class:`CSRGraph`), :meth:`current_epoch`,
    and :meth:`close`; see the module docstring for the full protocol.
    """

    def __init__(self, base_name: str, control, owner: bool) -> None:
        self.base_name = base_name
        self._control = control
        self._owner = owner
        self._control_view: np.ndarray | None = np.ndarray(
            (2,), dtype=np.int64, buffer=control.buf
        )
        self._graph: CSRGraph | None = None
        self._descriptor: ShmGraphDescriptor | None = None
        # owner: every still-linked generation (plus the "dlog" segment);
        # attachment: current data seg
        self._segments: dict[int | str, shared_memory.SharedMemory] = {}
        self._data: shared_memory.SharedMemory | None = None
        self._dlog: shared_memory.SharedMemory | None = None
        self._delta_view: np.ndarray | None = None
        self.delta_capacity = 0
        self._finalizer = weakref.finalize(
            self, SharedCSRGraph._cleanup, base_name, control,
            self._segments, owner,
        )

    # ------------------------------------------------------------------ #
    # creator side
    # ------------------------------------------------------------------ #

    @classmethod
    def create(
        cls, graph, base_name: str | None = None, delta_capacity: int = 0
    ) -> "SharedCSRGraph":
        """Place ``graph``'s CSR snapshot in shared memory as epoch 0.

        ``base_name`` defaults to a collision-resistant ``psim-…`` name; it
        must be unique machine-wide (shared-memory names are global).
        ``delta_capacity > 0`` additionally allocates the bounded edge-delta
        log segment (that many ``(kind, source, target)`` entries).
        """
        base_name = base_name or f"psim-{os.getpid()}-{secrets.token_hex(4)}"
        control = shared_memory.SharedMemory(
            name=base_name, create=True, size=_CONTROL_BYTES
        )
        shared = cls(base_name, control, owner=True)
        try:
            shared._control_view[:] = (-1, 0)
            if delta_capacity < 0:
                raise GraphError(
                    f"delta_capacity must be >= 0, got {delta_capacity}"
                )
            if delta_capacity:
                shared.delta_capacity = int(delta_capacity)
                dlog = shared_memory.SharedMemory(
                    name=f"{base_name}-dlog", create=True,
                    size=delta_capacity * _DELTA_FIELDS * 8,
                )
                shared._segments["dlog"] = dlog
                shared._map_delta_log(dlog)
            shared.publish(graph)
        except BaseException:
            shared.close()
            raise
        return shared

    @classmethod
    def from_snapshot(
        cls,
        path,
        base_name: str | None = None,
        delta_capacity: int = 0,
    ) -> "SharedCSRGraph":
        """Serve a graph straight from an on-disk snapshot file as epoch 0.

        The warm-attach path of the storage tier: instead of copying the CSR
        payload into a fresh shared-memory segment (O(m) writes before the
        first query), the coordinator ``mmap``\\ s the snapshot and publishes
        a descriptor carrying its path — workers map the same file, and the
        OS page cache keeps one physical copy no matter how many processes
        serve from it, surviving service restarts.  Mutations still work:
        the first :meth:`publish` (compaction) writes a regular shm
        generation and retires the mapping, and ``delta_capacity`` carries
        small bursts exactly as with :meth:`create`.
        """
        base_name = base_name or f"psim-{os.getpid()}-{secrets.token_hex(4)}"
        control = shared_memory.SharedMemory(
            name=base_name, create=True, size=_CONTROL_BYTES
        )
        shared = cls(base_name, control, owner=True)
        try:
            shared._control_view[:] = (-1, 0)
            if delta_capacity < 0:
                raise GraphError(
                    f"delta_capacity must be >= 0, got {delta_capacity}"
                )
            if delta_capacity:
                shared.delta_capacity = int(delta_capacity)
                dlog = shared_memory.SharedMemory(
                    name=f"{base_name}-dlog", create=True,
                    size=delta_capacity * _DELTA_FIELDS * 8,
                )
                shared._segments["dlog"] = dlog
                shared._map_delta_log(dlog)
            mapped = MappedSnapshot.open(path)
            shared._segments[0] = mapped
            shared._descriptor = ShmGraphDescriptor(
                base_name, 0, mapped.header.num_nodes, mapped.header.num_edges,
                shared.delta_capacity, snapshot_path=str(path),
            )
            shared._control_view[0] = 0
        except BaseException:
            shared.close()
            raise
        return shared

    def publish(self, graph) -> int:
        """Write a new graph generation and bump the epoch counter.

        Allocates a fresh data segment (sizes may change between epochs),
        copies the snapshot's payload in, and only then publishes the new
        epoch in the control segment — workers polling :meth:`stale` can
        never land on a partially written generation.  The previous
        generation's segment remains valid until :meth:`release_epoch`.
        Returns the new epoch.
        """
        if not self._owner:
            raise GraphError("only the creating SharedCSRGraph can publish")
        csr = as_csr(graph)
        epoch = self.current_epoch() + 1
        descriptor = ShmGraphDescriptor(
            self.base_name, epoch, csr.num_nodes, csr.num_edges,
            self.delta_capacity,
        )
        layout, size = _segment_layout(csr.num_nodes, csr.num_edges)
        segment = shared_memory.SharedMemory(
            name=descriptor.data_name, create=True, size=size
        )
        try:
            payload = csr.shm_payload()
            for field, dtype, offset, count in layout:
                view = np.ndarray(
                    (count,), dtype=dtype, buffer=segment.buf, offset=offset
                )
                view[:] = payload[field]
                del view  # release the buffer export before anyone closes
        except BaseException:
            # a failed payload write must not strand a *named* segment on
            # /dev/shm: nothing references it yet, so close and unlink here
            segment.close()
            segment.unlink()
            raise
        self._segments[epoch] = segment
        self._descriptor = descriptor
        self._graph = None  # rebuilt lazily against the new generation
        # the fresh generation subsumes every logged delta: empty the log
        # first so no reader can pair the new epoch with stale entries
        self._control_view[1] = 0
        self._control_view[0] = epoch
        return epoch

    def release_epoch(self, epoch: int) -> None:
        """Unlink one superseded generation (all workers have moved on)."""
        if not self._owner:
            raise GraphError("only the creating SharedCSRGraph can unlink")
        if epoch == self.current_epoch():
            raise GraphError(f"refusing to release the live epoch {epoch}")
        segment = self._segments.pop(epoch, None)
        if segment is not None:
            _close_segment(segment)
            segment.unlink()

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #

    @classmethod
    def attach(cls, descriptor: ShmGraphDescriptor) -> "SharedCSRGraph":
        """Map the generation named by ``descriptor`` (zero-copy, read-only)."""
        control = shared_memory.SharedMemory(name=descriptor.base_name)
        shared = cls(descriptor.base_name, control, owner=False)
        try:
            shared._map_data(descriptor)
            if descriptor.delta_capacity:
                shared.delta_capacity = int(descriptor.delta_capacity)
                shared._map_delta_log(
                    shared_memory.SharedMemory(name=descriptor.delta_name)
                )
        except BaseException:
            shared.close()
            raise
        return shared

    def reattach(self, descriptor: ShmGraphDescriptor) -> None:
        """Move this attachment to a newer generation.

        The caller must have dropped every reference into the old graph
        (estimators, result views) first; the old mapping is closed, never
        unlinked.
        """
        if self._owner:
            raise GraphError("the creating side never reattaches; use publish")
        old = self._data
        self._graph = None
        self._data = None
        if old is not None:
            _close_segment(old)
        self._map_data(descriptor)

    def _map_data(self, descriptor: ShmGraphDescriptor) -> None:
        if descriptor.snapshot_path is not None:
            segment = MappedSnapshot.open(descriptor.snapshot_path)
        else:
            segment = shared_memory.SharedMemory(name=descriptor.data_name)
        self._data = segment
        self._descriptor = descriptor
        self._graph = self._view_graph(segment, descriptor)

    # ------------------------------------------------------------------ #
    # edge-delta log
    # ------------------------------------------------------------------ #

    def _map_delta_log(self, segment: shared_memory.SharedMemory) -> None:
        self._dlog = segment
        self._delta_view = np.ndarray(
            (self.delta_capacity, _DELTA_FIELDS), dtype=np.int64,
            buffer=segment.buf,
        )

    def delta_count(self) -> int:
        """Published entries currently in the shared edge-delta log."""
        if self._control_view is None:
            raise GraphError("SharedCSRGraph is closed")
        return int(self._control_view[1])

    def append_deltas(self, updates) -> tuple[int, int]:
        """Append ``updates`` to the shared log; returns their ``[start, stop)``.

        Owner-only.  The triples are written before the published count is
        bumped, so a concurrent :meth:`read_deltas` can never observe a
        half-written entry.  Raises :class:`GraphError` when the bounded log
        cannot hold the burst — the caller's cue to compact via
        :meth:`publish` instead.
        """
        if not self._owner:
            raise GraphError("only the creating SharedCSRGraph can append deltas")
        if self._delta_view is None:
            raise GraphError("this SharedCSRGraph carries no delta log")
        updates = list(updates)
        start = self.delta_count()
        stop = start + len(updates)
        if stop > self.delta_capacity:
            raise GraphError(
                f"delta log overflow: {len(updates)} updates do not fit in "
                f"{self.delta_capacity - start} free entries — compact by "
                "publishing a fresh generation"
            )
        for row, update in enumerate(updates, start=start):
            self._delta_view[row] = (
                _DELTA_KINDS.index(update.kind), update.source, update.target
            )
        self._control_view[1] = stop
        return start, stop

    def read_deltas(self, start: int, stop: int) -> tuple[EdgeUpdate, ...]:
        """The logged updates in ``[start, stop)``, as :class:`EdgeUpdate`\\ s."""
        if self._delta_view is None:
            raise GraphError("this SharedCSRGraph carries no delta log")
        if not 0 <= start <= stop <= self.delta_count():
            raise GraphError(
                f"delta range [{start}, {stop}) outside the published log "
                f"[0, {self.delta_count()})"
            )
        return tuple(
            EdgeUpdate(_DELTA_KINDS[int(kind)], int(source), int(target))
            for kind, source, target in self._delta_view[start:stop]
        )

    # ------------------------------------------------------------------ #
    # both sides
    # ------------------------------------------------------------------ #

    @staticmethod
    def _view_graph(segment, descriptor: ShmGraphDescriptor) -> CSRGraph:
        """A :class:`CSRGraph` whose arrays are views into ``segment``."""
        layout, _ = _segment_layout(descriptor.num_nodes, descriptor.num_edges)
        views = {
            field: np.ndarray(
                (count,), dtype=dtype, buffer=segment.buf, offset=offset
            )
            for field, dtype, offset, count in layout
        }
        return CSRGraph(
            descriptor.num_nodes,
            views["out_indptr"],
            views["out_indices"],
            views["in_indptr"],
            views["in_indices"],
        )

    @property
    def graph(self) -> CSRGraph:
        """Zero-copy CSR snapshot of the generation this handle is on."""
        if self._graph is None:
            if self._owner:
                epoch = self.current_epoch()
                self._graph = self._view_graph(
                    self._segments[epoch], self._descriptor
                )
            else:
                raise GraphError("attachment is closed")
        return self._graph

    @property
    def descriptor(self) -> ShmGraphDescriptor:
        """Descriptor of the generation this handle is mapped to."""
        if self._descriptor is None:
            raise GraphError("SharedCSRGraph is closed")
        return self._descriptor

    def current_epoch(self) -> int:
        """The live generation counter (read from the control segment)."""
        if self._control_view is None:
            raise GraphError("SharedCSRGraph is closed")
        return int(self._control_view[0])

    def stale(self) -> bool:
        """True when a newer generation has been published than is mapped."""
        return self.current_epoch() != self.descriptor.epoch

    def payload_bytes(self) -> int:
        """Bytes of shared adjacency payload in the live generation."""
        _, size = _segment_layout(
            self.descriptor.num_nodes, self.descriptor.num_edges
        )
        return size

    def close(self) -> None:
        """Release this side's mappings; the owner also unlinks everything.

        Idempotent.  Unlinking is unconditional for the owner — even if a
        pinned numpy view keeps a *mapping* alive, the named segments are
        removed from the system so nothing leaks past the service.
        """
        self._graph = None
        self._control_view = None
        self._delta_view = None
        self._descriptor = None
        self._finalizer.detach()
        if self._owner:
            self._cleanup(self.base_name, self._control, self._segments, True)
            self._segments = {}
            self._dlog = None
        else:
            if self._data is not None:
                _close_segment(self._data)
                self._data = None
            if self._dlog is not None:
                _close_segment(self._dlog)
                self._dlog = None
            _close_segment(self._control)

    @staticmethod
    def _cleanup(base_name, control, segments, owner) -> None:
        """Finalizer body: shared with :meth:`close` (must not touch self)."""
        if not owner:  # pragma: no cover - attachments clean up in close()
            return
        for segment in segments.values():
            _close_segment(segment)
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        _close_segment(control)
        try:
            control.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "SharedCSRGraph":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._control_view is None else f"epoch={self.current_epoch()}"
        role = "owner" if self._owner else "attachment"
        return f"SharedCSRGraph({self.base_name!r}, {role}, {state})"
