"""The asyncio HTTP front door for SimRank serving.

This package turns the in-process serving layers
(:class:`~repro.api.service.SimRankService`,
:class:`~repro.parallel.pool.ParallelSimRankService`) into a network
service — the "heavy traffic from millions of users" shape the paper's
index-free argument is about.  It is pure standard library (asyncio + a
minimal HTTP/1.1 layer in :mod:`repro.server.http`); no web framework is
required.

- :mod:`repro.server.app` — routes, request lifecycle, lifespan
  (:class:`~repro.server.app.SimRankHTTPApp`);
- :mod:`repro.server.coalesce` — micro-batching of concurrent
  single-query requests into deduplicated batch dispatches;
- :mod:`repro.server.admission` — bounded per-lane admission, 503 load
  shedding with ``Retry-After``, per-request deadlines;
- :mod:`repro.server.loadgen` — the open-loop load generator that
  replays workload traces against a running server.

Start one from the CLI (``repro serve``) or programmatically::

    app = SimRankHTTPApp(service, ServerConfig(port=0))
    await app.start()
    ...
    await app.aclose()
"""

from repro.server.admission import AdmissionController, Deadline, LaneStats
from repro.server.app import ServerConfig, SimRankHTTPApp, serialize_result, serialize_topk
from repro.server.coalesce import Coalescer, CoalesceStats
from repro.server.loadgen import LoadReport, requests_from_trace, run_load

__all__ = [
    "AdmissionController",
    "Coalescer",
    "CoalesceStats",
    "Deadline",
    "LaneStats",
    "LoadReport",
    "ServerConfig",
    "SimRankHTTPApp",
    "requests_from_trace",
    "run_load",
    "serialize_result",
    "serialize_topk",
]
