"""Admission control for the HTTP tier: bounded lanes, shedding, deadlines.

The serving stack behind the front door is a fixed pool of estimator
replicas; queueing more work than the pool can drain only converts
overload into unbounded latency.  This module makes overload explicit
instead:

- every request class (``single_source``, ``topk``, ``batch``,
  ``update``) gets a **lane** with a bounded in-flight count — the bound
  covers both queued and executing requests, so the lane *is* the queue;
- a request arriving at a full lane is **shed immediately** — the caller
  maps :class:`repro.errors.AdmissionError` to ``503`` with a
  ``Retry-After`` header, and crucially the shed happens before the
  request touches the worker pool or a coalescing bucket (load shedding
  must be the cheap path);
- every admitted request carries a :class:`Deadline`; the app wraps
  dispatch in ``asyncio.wait_for(..., deadline.remaining())`` so an
  expired request is cancelled without disturbing batch-mates.

Lanes are plain counters, not ``asyncio.Queue`` objects: admission
decisions are synchronous (admit or shed, never wait), which keeps the
shed path allocation-free and makes the "503 before the pool is touched"
property trivially testable.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from dataclasses import dataclass

from repro.errors import AdmissionError, ConfigurationError

__all__ = [
    "AdmissionController",
    "AdmissionPermit",
    "Deadline",
    "LANES",
    "LaneStats",
]


def _pick_clock():
    """The event-loop clock inside a running loop, ``time.monotonic`` outside."""
    try:
        return asyncio.get_running_loop().time
    except RuntimeError:
        return time.monotonic

#: request classes with independent bounds (reads never starve behind
#: updates and vice versa — the HTAP-style isolation the ROADMAP aims at).
LANES = ("single_source", "topk", "batch", "update")


class Deadline:
    """A per-request time budget pinned to one monotonic clock.

    The clock is chosen **once at construction** — the event-loop clock
    when a loop is running, ``time.monotonic`` otherwise — and every
    ``remaining()`` call reads that same clock.  Choosing per call would
    compare timestamps from two different epochs for a ``Deadline``
    built before the loop starts (the CLI/serve startup path) and make it
    expire never or immediately, depending on which clock runs ahead.

    ``None`` seconds means "no deadline" (``remaining()`` is ``None``,
    which ``asyncio.wait_for`` treats as wait-forever).
    """

    def __init__(self, seconds: float | None) -> None:
        if seconds is not None and seconds <= 0:
            raise ConfigurationError(f"deadline must be positive, got {seconds!r}")
        self.seconds = seconds
        self._clock = _pick_clock()
        self._expires = None if seconds is None else self._clock() + seconds

    def remaining(self) -> float | None:
        """Seconds left (clamped at 0), or ``None`` for no deadline."""
        if self._expires is None:
            return None
        return max(0.0, self._expires - self._clock())

    @property
    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0


@dataclass
class LaneStats:
    """Counters of one admission lane (exposed through ``/metrics``).

    Every admitted request ends in exactly one of ``completed`` or
    ``timeouts``, so ``admitted == completed + timeouts + in_flight``
    holds at every instant — the invariant dashboards difference against.
    """

    capacity: int
    in_flight: int = 0
    peak_in_flight: int = 0
    admitted: int = 0
    shed: int = 0
    completed: int = 0
    timeouts: int = 0


class AdmissionPermit:
    """One admitted request's hold on a lane, yielded by ``admit``.

    Call :meth:`record_timeout` before the ``with`` block exits to settle
    the request as expired; otherwise it settles as completed.  Exactly
    one of the two counters moves per admission.
    """

    __slots__ = ("lane", "timed_out")

    def __init__(self, lane: LaneStats) -> None:
        self.lane = lane
        self.timed_out = False

    def record_timeout(self) -> None:
        """Mark this request deadline-expired (idempotent)."""
        self.timed_out = True


class AdmissionController:
    """Bounded per-lane admission with immediate load shedding.

    Parameters
    ----------
    capacity:
        In-flight bound per lane — one int for every lane, or a
        ``{lane: int}`` dict (unnamed lanes fall back to the default 64).
    retry_after:
        Seconds advertised in ``Retry-After`` when shedding.
    """

    DEFAULT_CAPACITY = 64

    def __init__(
        self,
        capacity: int | dict[str, int] | None = None,
        retry_after: float = 1.0,
    ) -> None:
        if retry_after <= 0:
            raise ConfigurationError(
                f"retry_after must be positive, got {retry_after!r}"
            )
        if capacity is None:
            capacity = self.DEFAULT_CAPACITY
        if isinstance(capacity, int):
            limits = {lane: capacity for lane in LANES}
        else:
            unknown = sorted(set(capacity) - set(LANES))
            if unknown:
                raise ConfigurationError(
                    f"unknown admission lanes {unknown}; lanes are {list(LANES)}"
                )
            limits = {
                lane: capacity.get(lane, self.DEFAULT_CAPACITY) for lane in LANES
            }
        for lane, limit in limits.items():
            if limit <= 0:
                raise ConfigurationError(
                    f"lane {lane!r} capacity must be positive, got {limit!r}"
                )
        self.retry_after = retry_after
        self.lanes: dict[str, LaneStats] = {
            lane: LaneStats(capacity=limit) for lane, limit in limits.items()
        }

    def _lane(self, name: str) -> LaneStats:
        try:
            return self.lanes[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown admission lane {name!r}; lanes are {list(LANES)}"
            ) from None

    @contextlib.contextmanager
    def admit(self, lane_name: str):
        """Admit one request into ``lane_name`` for the duration of a block.

        Raises :class:`AdmissionError` *synchronously* when the lane is at
        capacity — admission never waits, so the shed path stays cheap and
        a full lane cannot build hidden queueing.

        Yields an :class:`AdmissionPermit`; on block exit the request
        settles as ``completed`` unless ``permit.record_timeout()`` was
        called, in which case it settles as ``timeouts``.  A request that
        is admitted and then cancelled by deadline expiry therefore never
        leaks out of the ``admitted == completed + timeouts + in_flight``
        balance.
        """
        lane = self._lane(lane_name)
        if lane.in_flight >= lane.capacity:
            lane.shed += 1
            raise AdmissionError(lane_name, lane.capacity, self.retry_after)
        lane.in_flight += 1
        lane.peak_in_flight = max(lane.peak_in_flight, lane.in_flight)
        lane.admitted += 1
        permit = AdmissionPermit(lane)
        try:
            yield permit
        finally:
            lane.in_flight -= 1
            if permit.timed_out:
                lane.timeouts += 1
            else:
                lane.completed += 1

    def record_timeout(self, lane_name: str) -> None:
        """Settle one already-completed request as a timeout instead.

        Back-compat path for callers that detect expiry only after the
        ``admit`` block has exited: the request was counted ``completed``
        on exit, so this moves it over rather than double-counting.
        Inside the block, prefer ``permit.record_timeout()``.
        """
        lane = self._lane(lane_name)
        lane.timeouts += 1
        if lane.completed > 0:
            lane.completed -= 1

    def metrics(self) -> dict[str, float]:
        """Flat counters for the metrics exposition, one set per lane."""
        flat: dict[str, float] = {}
        for name, lane in self.lanes.items():
            flat[f"admission_{name}_capacity"] = lane.capacity
            flat[f"admission_{name}_in_flight"] = lane.in_flight
            flat[f"admission_{name}_peak_in_flight"] = lane.peak_in_flight
            flat[f"admission_{name}_admitted"] = lane.admitted
            flat[f"admission_{name}_shed"] = lane.shed
            flat[f"admission_{name}_completed"] = lane.completed
            flat[f"admission_{name}_timeouts"] = lane.timeouts
        return flat
