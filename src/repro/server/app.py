"""The asyncio HTTP application fronting a SimRank query service.

:class:`SimRankHTTPApp` glues the tier together: the wire format from
:mod:`repro.server.http`, bounded lanes from
:mod:`repro.server.admission`, micro-batching from
:mod:`repro.server.coalesce`, and the shared Prometheus formatter from
:mod:`repro.eval.metrics_export`.  It serves any object speaking the
:class:`repro.api.service.QueryServiceBase` surface — the in-process
:class:`~repro.api.service.SimRankService`, the process-parallel
:class:`~repro.parallel.pool.ParallelSimRankService`, or a test stub.

Endpoints (all JSON)::

    GET  /healthz                liveness + mounted methods
    GET  /metrics                Prometheus text exposition
    POST /v1/single_source       {"query": 3, "method"?: ..., "limit"?: 10}
    POST /v1/topk                {"query": 3, "k"?: 10, "method"?: ...}
    POST /v1/single_source_many  {"queries": [...], "method"?, "limit"?}
    POST /v1/topk_many           {"queries": [...], "k"?, "method"?}
    POST /v1/apply_edges         {"added": [[s, t], ...], "removed": [...]}

The query API is versioned under ``/v1``; the ops probes (``/healthz``,
``/metrics``) are unversioned.  The pre-2.0 bare paths
(``/single_source`` etc.) remain as aliases that answer **byte-identically**
to their ``/v1`` twin, plus two response headers announcing the move:
``Deprecation: true`` and ``Link: </v1/...>; rel="successor-version"``.

Every 4xx/5xx answers a uniform machine-readable envelope::

    {"error": {"code": "<stable-slug>", "message": "...", "retry_after"?: s}}

with one stable slug per status — ``bad_request`` (400), ``not_found``
(404), ``method_not_allowed`` (405), ``payload_too_large`` (413),
``internal`` (500), ``overloaded`` (503, carries ``retry_after``), and
``deadline_exceeded`` (504) — so clients branch on ``error.code``, never
on message prose.

Request handling order is deliberate: parse → route → **admission** →
coalesce/dispatch.  A request shed by a full lane is answered ``503``
with ``Retry-After`` *before* it reaches a coalescing bucket or the
service — overload handling must be the cheap path.  Admitted requests
run under their deadline via ``asyncio.wait_for``; expiry answers
``504`` and, mid-coalesce, removes only the expired waiter from its
bucket.

Service calls execute on a dedicated single-thread executor: the
services allow concurrent queries only when each estimator is driven by
one thread at a time, and a single dispatch thread both satisfies that
contract and serializes batches in submission order.

Response bodies are deterministic — query, method, walk count, and the
score pairs, never wall-clock — so a response can be compared **byte for
byte** against an oracle's answer for the same query.  The serving tests
and :mod:`benchmarks.bench_http_serving` hold coalesced responses to
exactly that standard (with ``query_seeded`` engine configs; see
:mod:`repro.server.coalesce`).
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial

from repro.errors import (
    AdmissionError,
    ConfigurationError,
    GraphError,
    ProtocolError,
    QueryError,
)
from repro.eval.metrics_export import render_prometheus, service_metrics
from repro.server.admission import AdmissionController, Deadline
from repro.server.coalesce import Coalescer
from repro.server.http import read_request, render_response

__all__ = ["ServerConfig", "SimRankHTTPApp", "serialize_result", "serialize_topk"]


def _json_bytes(payload: object) -> bytes:
    """Canonical JSON encoding: sorted keys, no whitespace, ascii-safe.

    One encoder for responses *and* oracles — byte-level comparability of
    the two is the bit-exactness contract of the coalescing tier.
    """
    return json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("ascii")


def serialize_result(result, limit: int) -> bytes:
    """Deterministic body for one single-source answer.

    ``scores`` carries the top-``limit`` ``[node, estimate]`` pairs under
    the result's deterministic tie-break (full score vectors are O(n) per
    response; the pairs are what a ranking consumer reads).  Timing never
    enters the body.
    """
    return _json_bytes({
        "query": int(result.query),
        "method": result.method,
        "num_walks": int(result.num_walks),
        "limit": int(limit),
        "scores": result.topk(limit).as_pairs(),
    })


def serialize_topk(result) -> bytes:
    """Deterministic body for one top-k answer."""
    return _json_bytes({
        "query": int(result.query),
        "method": result.method,
        "k": int(result.k),
        "scores": result.as_pairs(),
    })


@dataclass(frozen=True)
class ServerConfig:
    """Knobs of the HTTP front door.

    Parameters
    ----------
    host / port:
        Bind address; port ``0`` asks the OS for a free port (tests and
        the in-process benchmark use this).
    coalesce:
        Micro-batch concurrent ``/single_source`` and ``/topk`` requests
        (see :mod:`repro.server.coalesce`).  Off, every request
        dispatches individually.
    coalesce_window:
        Collection window in seconds from a bucket's first request.
    coalesce_max_batch:
        Distinct-query cap per bucket (full buckets dispatch early).
    admission_capacity:
        Per-lane in-flight bound (int for all lanes, or ``{lane: int}``).
    retry_after:
        Seconds advertised in ``Retry-After`` on a 503 shed.
    deadline_s:
        Default per-request deadline; a request body may lower (not
        raise) it with ``"deadline_s"``.  ``None`` disables deadlines.
    scores_limit:
        Default number of ``[node, score]`` pairs in single-source
        bodies (bodies stay O(limit), not O(n)).
    max_body:
        Request-body byte cap (oversized requests answer 413).
    """

    host: str = "127.0.0.1"
    port: int = 8080
    coalesce: bool = True
    coalesce_window: float = 0.002
    coalesce_max_batch: int = 64
    admission_capacity: int | dict[str, int] | None = None
    retry_after: float = 1.0
    deadline_s: float | None = 30.0
    scores_limit: int = 10
    max_body: int = 1_048_576

    def __post_init__(self) -> None:
        if self.scores_limit <= 0:
            raise ConfigurationError(
                f"scores_limit must be positive, got {self.scores_limit!r}"
            )
        if self.max_body <= 0:
            raise ConfigurationError(
                f"max_body must be positive, got {self.max_body!r}"
            )


class SimRankHTTPApp:
    """Route table + lifecycle for serving one query service over HTTP."""

    def __init__(self, service, config: ServerConfig | None = None) -> None:
        self.service = service
        self.config = config or ServerConfig()
        self.admission = AdmissionController(
            self.config.admission_capacity, retry_after=self.config.retry_after
        )
        self.coalescer = Coalescer(
            self._dispatch_batch,
            window=self.config.coalesce_window,
            max_batch=self.config.coalesce_max_batch,
        ) if self.config.coalesce else None
        # One dispatch thread: the services' thread model allows concurrent
        # queries only with one driving thread per estimator replica.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()
        self._requests_total = 0  # guarded-by: event-loop
        self._responses_by_status: dict[int, int] = {}  # guarded-by: event-loop

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind and start accepting connections (idempotent)."""
        if self._server is None:
            self._server = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port
            )

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the OS-assigned one)."""
        if self._server is None:
            raise ConfigurationError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        await self.start()
        await self._server.serve_forever()

    async def aclose(self, close_service: bool = True) -> None:
        """Stop accepting, flush coalescing buckets, tear down the executor.

        ``close_service`` also closes the underlying service (the CLI owns
        its service; tests that inject one may want to keep it).
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # parked keep-alive connections are blocked in read_request; unpark
        # them so shutdown is clean rather than relying on loop teardown
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*list(self._connections), return_exceptions=True)
        if self.coalescer is not None:
            await self.coalescer.flush()
        self._executor.shutdown(wait=True)
        if close_service:
            self.service.close()

    # ------------------------------------------------------------------ #
    # dispatch plumbing
    # ------------------------------------------------------------------ #

    async def _run_blocking(self, fn, *args, **kwargs):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, partial(fn, *args, **kwargs)
        )

    async def _dispatch_batch(self, key, queries):
        """Coalescer dispatch target: one batched service call per bucket."""
        route, method, k = key
        if route == "topk":
            return await self._run_blocking(
                self.service.topk_many, queries, k, method=method
            )
        return await self._run_blocking(
            self.service.single_source_many, queries, method=method
        )

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader, self.config.max_body)
                except ProtocolError as exc:
                    status = 413 if "exceeds cap" in str(exc) else 400
                    writer.write(self._error_response(status, str(exc),
                                                      keep_alive=False))
                    await writer.drain()
                    return
                if request is None:
                    return
                self._requests_total += 1
                payload = await self._respond(request)
                writer.write(payload)
                await writer.drain()
                if not request.keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass  # client went away (or shutdown); nothing to answer
        finally:
            if task is not None:
                self._connections.discard(task)
            # close() alone: awaiting wait_closed() in a finally re-raises
            # CancelledError during shutdown; the transport closes regardless
            writer.close()

    def _count(self, status: int) -> None:
        self._responses_by_status[status] = (
            self._responses_by_status.get(status, 0) + 1
        )

    def _error_response(self, status: int, message: str,
                        keep_alive: bool = True,
                        extra: tuple[tuple[str, str], ...] = (),
                        retry_after: float | None = None) -> bytes:
        """Uniform error envelope: ``{"error": {"code", "message", ...}}``.

        ``code`` is the stable slug clients branch on (:data:`_ERROR_CODES`);
        ``retry_after`` mirrors the ``Retry-After`` header into the body so
        JSON-only clients need not parse headers to back off.
        """
        self._count(status)
        error: dict[str, object] = {
            "code": _ERROR_CODES[status], "message": message,
        }
        if retry_after is not None:
            error["retry_after"] = retry_after
        return render_response(
            status, _json_bytes({"error": error}),
            extra_headers=extra, keep_alive=keep_alive,
        )

    def _ok(self, body: bytes, content_type: str = "application/json",
            keep_alive: bool = True,
            extra: tuple[tuple[str, str], ...] = ()) -> bytes:
        self._count(200)
        return render_response(200, body, content_type=content_type,
                               extra_headers=extra, keep_alive=keep_alive)

    async def _respond(self, request) -> bytes:
        """Route one request to its handler and map errors to statuses."""
        keep_alive = request.keep_alive
        # Deprecated bare aliases answer byte-identical bodies; only these
        # two headers distinguish them from their /v1 successor.
        alias = _alias_headers(request.path)
        route = _ROUTES.get(request.path)
        if route is None:
            return self._error_response(404, f"no route {request.path!r}",
                                        keep_alive=keep_alive)
        verb, handler_name, lane = route
        if request.method != verb:
            return self._error_response(
                405, f"{request.path} expects {verb}", keep_alive=keep_alive,
                extra=(("Allow", verb), *alias),
            )
        handler = getattr(self, handler_name)
        try:
            if lane is None:
                body, content_type = await handler(request)
                return self._ok(body, content_type, keep_alive=keep_alive,
                                extra=alias)
            with self.admission.admit(lane) as permit:
                deadline = self._deadline(request)
                try:
                    body, content_type = await asyncio.wait_for(
                        handler(request), timeout=deadline.remaining()
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    permit.record_timeout()
                    return self._error_response(
                        504, f"deadline of {deadline.seconds:g}s expired",
                        keep_alive=keep_alive, extra=alias,
                    )
            return self._ok(body, content_type, keep_alive=keep_alive,
                            extra=alias)
        except AdmissionError as exc:
            return self._error_response(
                503, str(exc), keep_alive=keep_alive,
                extra=(("Retry-After", f"{exc.retry_after:g}"), *alias),
                retry_after=exc.retry_after,
            )
        except (ProtocolError, QueryError, ConfigurationError, GraphError) as exc:
            return self._error_response(400, str(exc), keep_alive=keep_alive,
                                        extra=alias)
        except Exception as exc:  # noqa: BLE001 — a handler bug must not kill the loop
            return self._error_response(
                500, f"{type(exc).__name__}: {exc}", keep_alive=keep_alive,
                extra=alias,
            )

    def _deadline(self, request) -> Deadline:
        payload = request.json()
        seconds = self.config.deadline_s
        if isinstance(payload, dict) and payload.get("deadline_s") is not None:
            requested = payload["deadline_s"]
            if not isinstance(requested, (int, float)) or requested <= 0:
                raise ProtocolError(
                    f"deadline_s must be a positive number, got {requested!r}"
                )
            # clients may tighten the budget, never widen the server's
            seconds = (
                float(requested) if seconds is None
                else min(float(requested), seconds)
            )
        return Deadline(seconds)

    # ------------------------------------------------------------------ #
    # request-body helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _body_dict(request) -> dict:
        payload = request.json()
        if not isinstance(payload, dict):
            raise ProtocolError(
                f"request body must be a JSON object, got {type(payload).__name__}"
            )
        return payload

    @staticmethod
    def _get_query(payload: dict) -> int:
        query = payload.get("query")
        if isinstance(query, bool) or not isinstance(query, int):
            raise ProtocolError(f"'query' must be an integer, got {query!r}")
        return query

    @staticmethod
    def _get_queries(payload: dict) -> list[int]:
        queries = payload.get("queries")
        if not isinstance(queries, list) or not queries or any(
            isinstance(q, bool) or not isinstance(q, int) for q in queries
        ):
            raise ProtocolError(
                "'queries' must be a non-empty list of integers"
            )
        return queries

    def _get_k(self, payload: dict) -> int:
        k = payload.get("k", self.config.scores_limit)
        if isinstance(k, bool) or not isinstance(k, int) or k <= 0:
            raise ProtocolError(f"'k' must be a positive integer, got {k!r}")
        return k

    def _get_limit(self, payload: dict) -> int:
        limit = payload.get("limit", self.config.scores_limit)
        if isinstance(limit, bool) or not isinstance(limit, int) or limit <= 0:
            raise ProtocolError(
                f"'limit' must be a positive integer, got {limit!r}"
            )
        return limit

    @staticmethod
    def _get_method(payload: dict) -> str | None:
        method = payload.get("method")
        if method is not None and not isinstance(method, str):
            raise ProtocolError(f"'method' must be a string, got {method!r}")
        return method

    @staticmethod
    def _get_edges(payload: dict, field: str) -> list[tuple[int, int]]:
        edges = payload.get(field, [])
        if not isinstance(edges, list):
            raise ProtocolError(f"{field!r} must be a list of [source, target]")
        pairs = []
        for edge in edges:
            if (not isinstance(edge, (list, tuple)) or len(edge) != 2 or any(
                    isinstance(v, bool) or not isinstance(v, int) for v in edge)):
                raise ProtocolError(
                    f"{field!r} entries must be [source, target] ints, "
                    f"got {edge!r}"
                )
            pairs.append((edge[0], edge[1]))
        return pairs

    # ------------------------------------------------------------------ #
    # handlers (each returns (body, content_type))
    # ------------------------------------------------------------------ #

    async def _handle_healthz(self, request) -> tuple[bytes, str]:
        payload: dict[str, object] = {
            "status": "ok",
            "methods": self.service.methods,
            "coalesce": self.coalescer is not None,
        }
        epoch = getattr(self.service, "epoch", None)
        if isinstance(epoch, int):
            payload["epoch"] = epoch
        return _json_bytes(payload), "application/json"

    async def _handle_metrics(self, request) -> tuple[bytes, str]:
        extra = {
            "http_requests_total": self._requests_total,
            **{
                f"http_responses_{status}": count
                for status, count in self._responses_by_status.items()
            },
            **self.admission.metrics(),
        }
        if self.coalescer is not None:
            extra.update(self.coalescer.stats.metrics())
        cache = getattr(self.service, "cache", None)
        snapshot = (
            cache.snapshot() if cache is not None and cache.enabled else None
        )
        text = render_prometheus(
            service_metrics(self.service.stats, cache=snapshot, extra=extra)
        )
        return text.encode("utf-8"), "text/plain; version=0.0.4"

    async def _handle_single_source(self, request) -> tuple[bytes, str]:
        payload = self._body_dict(request)
        query = self._get_query(payload)
        method = self._get_method(payload)
        limit = self._get_limit(payload)
        if self.coalescer is not None:
            result = await self.coalescer.submit(
                ("single_source", method, None), query
            )
        else:
            result = await self._run_blocking(
                self.service.single_source, query, method=method
            )
        return serialize_result(result, limit), "application/json"

    async def _handle_topk(self, request) -> tuple[bytes, str]:
        payload = self._body_dict(request)
        query = self._get_query(payload)
        method = self._get_method(payload)
        k = self._get_k(payload)
        if self.coalescer is not None:
            result = await self.coalescer.submit(("topk", method, k), query)
        else:
            result = await self._run_blocking(
                self.service.topk, query, k, method=method
            )
        return serialize_topk(result), "application/json"

    async def _handle_single_source_many(self, request) -> tuple[bytes, str]:
        payload = self._body_dict(request)
        queries = self._get_queries(payload)
        method = self._get_method(payload)
        limit = self._get_limit(payload)
        results = await self._run_blocking(
            self.service.single_source_many, queries, method=method
        )
        body = b'{"results":[' + b",".join(
            serialize_result(result, limit) for result in results
        ) + b"]}"
        return body, "application/json"

    async def _handle_topk_many(self, request) -> tuple[bytes, str]:
        payload = self._body_dict(request)
        queries = self._get_queries(payload)
        method = self._get_method(payload)
        k = self._get_k(payload)
        results = await self._run_blocking(
            self.service.topk_many, queries, k, method=method
        )
        body = b'{"results":[' + b",".join(
            serialize_topk(result) for result in results
        ) + b"]}"
        return body, "application/json"

    async def _handle_apply_edges(self, request) -> tuple[bytes, str]:
        payload = self._body_dict(request)
        added = self._get_edges(payload, "added")
        removed = self._get_edges(payload, "removed")
        if not added and not removed:
            raise ProtocolError("apply_edges needs 'added' and/or 'removed'")
        applied = await self._run_blocking(
            self.service.apply_edges, added=added, removed=removed
        )
        return _json_bytes({"applied": int(applied)}), "application/json"


#: stable machine-readable slugs of the error envelope, keyed by status.
#: Slugs are API surface: clients branch on them, so renaming one is a
#: breaking change even though the human-readable message may evolve freely.
_ERROR_CODES = {
    400: "bad_request",
    404: "not_found",
    405: "method_not_allowed",
    413: "payload_too_large",
    500: "internal",
    503: "overloaded",
    504: "deadline_exceeded",
}

#: the versioned query API: bare path -> (verb, handler attribute, admission
#: lane).  Canonical routes live under ``/v1``; the bare paths stay mounted
#: as deprecated aliases (same handler, same lane, byte-identical bodies).
_API_ROUTES = {
    "/single_source": ("POST", "_handle_single_source", "single_source"),
    "/topk": ("POST", "_handle_topk", "topk"),
    "/single_source_many": ("POST", "_handle_single_source_many", "batch"),
    "/topk_many": ("POST", "_handle_topk_many", "batch"),
    "/apply_edges": ("POST", "_handle_apply_edges", "update"),
}

#: path -> (verb, handler attribute, admission lane or None for ops routes).
#: Ops probes are unversioned — scrapers and orchestrators address them by
#: convention, not through the API's compatibility contract.
_ROUTES = {
    "/healthz": ("GET", "_handle_healthz", None),
    "/metrics": ("GET", "_handle_metrics", None),
}
for _path, _spec in _API_ROUTES.items():
    _ROUTES["/v1" + _path] = _spec
    _ROUTES[_path] = _spec
del _path, _spec


def _alias_headers(path: str) -> tuple[tuple[str, str], ...]:
    """Deprecation headers for a bare (unversioned) API path, else ``()``.

    RFC 8594 ``Deprecation: true`` plus a ``Link`` naming the successor —
    the alias contract is "same bytes, plus a forwarding address".
    """
    if path in _API_ROUTES:
        return (
            ("Deprecation", "true"),
            ("Link", f'</v1{path}>; rel="successor-version"'),
        )
    return ()
