"""Micro-batching: coalesce concurrent single-query requests into batches.

The engines behind the service answer a *batch* of queries far cheaper
than the same queries one by one — the batched trie-sharing engine runs
every query in a batch through shared level-synchronous sweeps, and the
service deduplicates repeated hot keys within a batch.  Individual HTTP
requests arrive one query at a time, so the front door re-creates the
batch shape here: the first request for a bucket opens a collection
window (``window`` seconds); every concurrent request that lands inside
the window joins the batch; when the window closes (or ``max_batch``
distinct queries accumulate first) the whole bucket is dispatched as one
``single_source_many``/``topk_many`` call and each waiter receives its
own query's result.

Buckets are keyed by whatever the caller passes (the app uses
``(route, method, k)``), so results can never cross between
incompatible request shapes.  Duplicate queries within a bucket share
one slot — the dedup the service would do anyway happens before
dispatch, and ``dedup_saved`` counts it.

Correctness relies on a property of the engine, not of this module:
with ``ProbeSimConfig.query_seeded`` every answer is a pure function of
``(config, graph, query)``, so *any* grouping of requests into batches
yields bit-identical per-query results (asserted end-to-end by the
serving tests and the HTTP benchmark).  Without ``query_seeded`` the
engine's shared RNG stream makes answers depend on batch composition —
coalescing then still returns valid Theorem-2 estimates, just not
bit-equal to a different grouping of the same queries.

Batches additionally **adapt to load**: at most one dispatch per key is
in flight at a time, and a bucket whose window closes while its key's
previous batch is still executing keeps collecting until that dispatch
returns (then flushes immediately).  Idle traffic therefore pays at most
``window`` of added latency, while a saturated service sees batch sizes
grow to match its drain rate — which is exactly when deduplication and
amortized dispatch pay.  Under this backpressure a parked bucket may
exceed ``max_batch`` waiters; its *distinct-query* count stays bounded
by the admission lane capacity, since every waiter holds a lane slot.

A waiter cancelled while its bucket is still collecting (deadline
expiry, client disconnect) is dropped at flush time: its query leaves
the batch if no other waiter wants it, and the remaining batch-mates
are dispatched undisturbed.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from functools import partial
from typing import Awaitable, Callable, Hashable, Sequence

from repro.errors import ConfigurationError

__all__ = ["Coalescer", "CoalesceStats"]


@dataclass
class CoalesceStats:
    """Counters of one :class:`Coalescer` (exposed through ``/metrics``)."""

    requests: int = 0
    batches: int = 0
    batched_queries: int = 0
    dedup_saved: int = 0
    max_batch: int = 0
    dropped_cancelled: int = 0

    def metrics(self) -> dict[str, float]:
        """Flat counters for the metrics exposition."""
        return {
            "coalesce_requests": self.requests,
            "coalesce_batches": self.batches,
            "coalesce_batched_queries": self.batched_queries,
            "coalesce_dedup_saved": self.dedup_saved,
            "coalesce_max_batch": self.max_batch,
            "coalesce_dropped_cancelled": self.dropped_cancelled,
        }


class _Bucket:
    """One in-progress collection window for a single key."""

    __slots__ = ("waiters", "timer", "ready")

    def __init__(self) -> None:
        # query -> list of waiter futures (dict preserves arrival order,
        # which makes dispatched batches deterministic for a given arrival
        # sequence — handy when diffing dispatch logs in tests)
        self.waiters: dict[int, list[asyncio.Future]] = {}
        self.timer: asyncio.TimerHandle | None = None
        #: window closed (or bucket filled) while the key's previous batch
        #: was still dispatching: flush as soon as that dispatch returns
        self.ready = False


class Coalescer:
    """Collect concurrent ``submit`` calls into deduplicated batch dispatches.

    Parameters
    ----------
    dispatch:
        ``async (key, queries) -> sequence of results``, one result per
        query, in order.  The app points this at the service's batched
        entry points (through its executor).
    window:
        Collection window in seconds, measured from the first request of
        a bucket.  ``0`` still coalesces whatever lands in the same event
        loop tick.
    max_batch:
        Distinct-query count that triggers an early dispatch instead of
        waiting out the window.  A bucket parked behind an in-flight
        dispatch for its key may grow past this while it waits.
    """

    def __init__(
        self,
        dispatch: Callable[[Hashable, list[int]], Awaitable[Sequence[object]]],
        window: float = 0.002,
        max_batch: int = 64,
    ) -> None:
        if window < 0:
            raise ConfigurationError(f"window must be non-negative, got {window!r}")
        if max_batch <= 0:
            raise ConfigurationError(f"max_batch must be positive, got {max_batch!r}")
        self._dispatch = dispatch
        self.window = window
        self.max_batch = max_batch
        self._buckets: dict[Hashable, _Bucket] = {}  # guarded-by: event-loop
        self.stats = CoalesceStats()  # guarded-by: event-loop
        #: every dispatched (key, queries) pair, for tests and debugging.
        self.dispatch_log: list[tuple[Hashable, tuple[int, ...]]] = []  # guarded-by: event-loop
        self._flushes: set[asyncio.Task] = set()  # guarded-by: event-loop
        # at most one dispatch in flight per key: batches serialize in
        # submission order and grow under load instead of racing the engine
        self._in_flight: dict[Hashable, asyncio.Task] = {}  # guarded-by: event-loop

    async def submit(self, key: Hashable, query: int):
        """Join the bucket for ``key`` and await this query's result."""
        loop = asyncio.get_running_loop()
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = _Bucket()
            bucket.timer = loop.call_later(
                self.window, self._flush_from_timer, key
            )
        future: asyncio.Future = loop.create_future()
        bucket.waiters.setdefault(query, []).append(future)
        self.stats.requests += 1
        if len(bucket.waiters) >= self.max_batch:
            self._begin_flush(key)
        return await future

    async def flush(self) -> None:
        """Drain the coalescer: dispatch every open bucket, wait for every
        in-flight dispatch (shutdown path: no request may be left parked on
        a timer or behind another key's dispatch).

        In-flight work is awaited *first*: a bucket parked behind its
        key's running dispatch cannot be flushed until that dispatch's
        done-callback releases the key, so beginning flushes earlier only
        re-marks parked buckets ready and spins.  Once nothing is in
        flight (the done-callbacks of awaited tasks have run by the time
        ``gather`` returns), every remaining bucket flushes exactly once —
        each round either retires dispatches or starts them, so the drain
        makes progress every iteration instead of hot-looping.
        """
        while self._buckets or self._flushes:
            if self._flushes:
                await asyncio.gather(
                    *list(self._flushes), return_exceptions=True
                )
                continue
            for key in list(self._buckets):
                self._begin_flush(key)
        assert not self._in_flight, "coalescer drain left a dispatch in flight"

    def _flush_from_timer(self, key: Hashable) -> None:
        self._begin_flush(key)

    def _begin_flush(self, key: Hashable) -> None:
        """Detach the bucket and run its dispatch as a task.

        With a dispatch for the same key still in flight, the bucket is
        only *marked* ready and keeps collecting — it flushes the moment
        the running dispatch completes (adaptive batching under load).
        """
        bucket = self._buckets.get(key)
        if bucket is None:
            return  # already flushed (window fired after a full-bucket flush)
        if bucket.timer is not None:
            bucket.timer.cancel()
            bucket.timer = None
        if key in self._in_flight:
            bucket.ready = True
            return
        del self._buckets[key]
        task = asyncio.ensure_future(self._run_dispatch(key, bucket))
        self._in_flight[key] = task
        self._flushes.add(task)
        task.add_done_callback(partial(self._dispatch_done, key))

    def _dispatch_done(self, key: Hashable, task: asyncio.Task) -> None:
        self._flushes.discard(task)
        if self._in_flight.get(key) is task:
            del self._in_flight[key]
        parked = self._buckets.get(key)
        if parked is not None and (
            parked.ready or len(parked.waiters) >= self.max_batch
        ):
            self._begin_flush(key)

    async def _run_dispatch(self, key: Hashable, bucket: _Bucket) -> None:
        # Drop queries whose every waiter is already cancelled (deadline
        # expiry mid-coalesce): the expired request must not cost a slot in
        # the batch, and its batch-mates must not be disturbed.
        live: dict[int, list[asyncio.Future]] = {}
        for query, waiters in bucket.waiters.items():
            alive = [f for f in waiters if not f.cancelled()]
            self.stats.dropped_cancelled += len(waiters) - len(alive)
            if alive:
                live[query] = alive
        if not live:
            return
        queries = list(live)
        self.stats.batches += 1
        self.stats.batched_queries += sum(len(ws) for ws in live.values())
        self.stats.dedup_saved += sum(len(ws) - 1 for ws in live.values())
        self.stats.max_batch = max(self.stats.max_batch, len(queries))
        self.dispatch_log.append((key, tuple(queries)))
        try:
            results = await self._dispatch(key, queries)
        except asyncio.CancelledError:
            for waiters in live.values():
                for future in waiters:
                    if not future.done():
                        future.cancel()
            raise
        except Exception as exc:
            for waiters in live.values():
                for future in waiters:
                    if not future.done():
                        future.set_exception(exc)
            return
        if len(results) != len(queries):
            mismatch = ConfigurationError(
                f"coalesce dispatch returned {len(results)} results "
                f"for {len(queries)} queries"
            )
            for waiters in live.values():
                for future in waiters:
                    if not future.done():
                        future.set_exception(mismatch)
            return
        for query, result in zip(queries, results):
            for future in live[query]:
                if not future.done():
                    future.set_result(result)
