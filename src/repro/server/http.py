"""A minimal HTTP/1.1 layer over asyncio streams.

The serving tier deliberately speaks plain HTTP/1.1 through the standard
library instead of depending on a framework: the container this repo
targets ships no asgi server, and the endpoint surface
(:mod:`repro.server.app`) is five JSON routes — small enough that a
framework would mostly add a dependency.  This module owns the wire
format only: request parsing (:func:`read_request`), response rendering
(:func:`render_response`), and the response-side parser the load
generator uses (:func:`read_response`).  Routing, admission, and
dispatch live in :mod:`repro.server.app`.

Limits are explicit and conservative: header blocks are capped at
:data:`MAX_HEADER_BYTES` and bodies at the caller-chosen maximum, so a
misbehaving client cannot balloon server memory.  Violations raise
:class:`repro.errors.ProtocolError`, which the app maps to a 4xx.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

from repro.errors import ProtocolError

__all__ = [
    "HTTPRequest",
    "HTTPResponse",
    "MAX_HEADER_BYTES",
    "STATUS_REASONS",
    "read_request",
    "read_response",
    "render_response",
]

#: hard cap on the request line + header block, in bytes.
MAX_HEADER_BYTES = 16_384

#: the status codes this tier emits.
STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class HTTPRequest:
    """One parsed request: verb, path, lower-cased headers, raw body."""

    method: str
    path: str
    version: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 defaults to keep-alive unless the client opts out."""
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    def json(self) -> object:
        """Decode the body as JSON (empty body decodes to ``{}``).

        Raises :class:`ProtocolError` on undecodable payloads, so route
        handlers can treat "bad JSON" and "bad HTTP" uniformly as 400s.
        """
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from None


@dataclass
class HTTPResponse:
    """One parsed response (client side; used by the load generator)."""

    status: int
    reason: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""


def _parse_headers(block: bytes) -> dict[str, str]:
    """Parse ``Name: value`` lines into a lower-cased-key dict."""
    headers: dict[str, str] = {}
    for raw in block.split(b"\r\n"):
        if not raw:
            continue
        name, sep, value = raw.partition(b":")
        if not sep:
            raise ProtocolError(f"malformed header line {raw[:80]!r}")
        try:
            headers[name.decode("ascii").strip().lower()] = (
                value.decode("latin-1").strip()
            )
        except UnicodeDecodeError:
            raise ProtocolError(f"non-ascii header name {name[:80]!r}") from None
    return headers


async def _read_head(reader: asyncio.StreamReader) -> bytes | None:
    """Read up to the blank line ending the header block; None on clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # connection closed between requests: clean EOF
        raise ProtocolError("connection closed mid-request") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError(
            f"header block exceeds {MAX_HEADER_BYTES} bytes"
        ) from None
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError(f"header block exceeds {MAX_HEADER_BYTES} bytes")
    return head


def _content_length(headers: dict[str, str], limit: int) -> int:
    if "transfer-encoding" in headers:
        raise ProtocolError("chunked transfer encoding is not supported")
    raw = headers.get("content-length", "0")
    try:
        length = int(raw)
    except ValueError:
        raise ProtocolError(f"invalid Content-Length {raw!r}") from None
    if length < 0:
        raise ProtocolError(f"invalid Content-Length {raw!r}")
    if length > limit:
        raise ProtocolError(f"request body of {length} bytes exceeds cap {limit}")
    return length


async def read_request(
    reader: asyncio.StreamReader, max_body: int = 1_048_576
) -> HTTPRequest | None:
    """Parse one request off ``reader``.

    Returns ``None`` on a clean EOF between requests (the client hung up a
    keep-alive connection); raises :class:`ProtocolError` for anything
    malformed, oversized, or truncated mid-message.
    """
    head = await _read_head(reader)
    if head is None:
        return None
    request_line, _, header_block = head[:-4].partition(b"\r\n")
    parts = request_line.split(b" ")
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line {request_line[:80]!r}")
    try:
        method, path, version = (p.decode("ascii") for p in parts)
    except UnicodeDecodeError:
        raise ProtocolError("non-ascii request line") from None
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise ProtocolError(f"unsupported HTTP version {version!r}")
    headers = _parse_headers(header_block)
    length = _content_length(headers, max_body)
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError("connection closed mid-body") from None
    return HTTPRequest(method=method, path=path, version=version,
                       headers=headers, body=body)


async def read_response(
    reader: asyncio.StreamReader, max_body: int = 16_777_216
) -> HTTPResponse | None:
    """Parse one response off ``reader`` (the load generator's client side)."""
    head = await _read_head(reader)
    if head is None:
        return None
    status_line, _, header_block = head[:-4].partition(b"\r\n")
    parts = status_line.split(b" ", 2)
    if len(parts) < 2 or not parts[0].startswith(b"HTTP/"):
        raise ProtocolError(f"malformed status line {status_line[:80]!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise ProtocolError(f"malformed status code {parts[1][:20]!r}") from None
    reason = parts[2].decode("latin-1") if len(parts) == 3 else ""
    headers = _parse_headers(header_block)
    length = _content_length(headers, max_body)
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError("connection closed mid-body") from None
    return HTTPResponse(status=status, reason=reason, headers=headers, body=body)


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: tuple[tuple[str, str], ...] = (),
    keep_alive: bool = True,
) -> bytes:
    """Serialize one response, Content-Length framed (no chunking)."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines += [f"{name}: {value}" for name, value in extra_headers]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body
