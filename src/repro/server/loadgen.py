"""Open-loop socket-level load generation against the HTTP front door.

A closed-loop client (issue, wait, issue) can never observe saturation:
its own waiting throttles the offered load to whatever the server
sustains.  This generator is **open-loop**: request ``i`` of a run at
``rate`` requests/second is *scheduled* at ``t0 + i/rate`` and fired at
its scheduled time whether or not earlier requests have completed — so
offered load is held constant and queueing delay shows up where it
belongs, in the measured latency.  Latency is accordingly measured from
the request's **scheduled arrival**, not from when the socket write
happened: at saturation the gap between the two *is* the queueing the
operator's users would feel.

Requests replay a :class:`~repro.workloads.generator.WorkloadTrace`'s
query stream (:func:`requests_from_trace`), so the offered key skew is
the generator's Zipf shape and results are comparable across runs from
the trace signature.  Connections come from a keep-alive pool that
grows on demand — concurrency adapts to whatever the open-loop schedule
requires.

The report (:class:`LoadReport`) carries the serving-SLO surface:
p50/p95/p99 latency, achieved QPS, shed rate (503s from admission
control), deadline expiries (504s), and error counts.  With
``collect_bodies=True`` every response body is kept in request order —
the bit-exactness harness diffs them byte-for-byte against an oracle.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError, ProtocolError, ServerError
from repro.server.http import read_response
from repro.workloads.generator import WorkloadTrace

__all__ = ["LoadReport", "requests_from_trace", "run_load"]


def _render_request(host: str, path: str, body: bytes) -> bytes:
    head = (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: keep-alive\r\n\r\n"
    )
    return head.encode("ascii") + body


def requests_from_trace(
    trace: WorkloadTrace,
    kind: str = "single_source",
    k: int | None = None,
    method: str | None = None,
    limit: int | None = None,
) -> list[tuple[str, bytes]]:
    """``(path, body)`` pairs replaying a trace's query stream in op order.

    ``kind`` picks the endpoint (``"single_source"`` or ``"topk"``);
    update batches in the trace are ignored (the load generator offers
    read traffic — updates go through the service owner).
    """
    if kind not in ("single_source", "topk"):
        raise ConfigurationError(
            f"kind must be 'single_source' or 'topk', got {kind!r}"
        )
    path = f"/v1/{kind}"
    requests = []
    for query in trace.query_nodes():
        payload: dict[str, object] = {"query": int(query)}
        if method is not None:
            payload["method"] = method
        if kind == "topk" and k is not None:
            payload["k"] = int(k)
        if kind == "single_source" and limit is not None:
            payload["limit"] = int(limit)
        requests.append((path, json.dumps(payload, sort_keys=True).encode()))
    return requests


@dataclass
class LoadReport:
    """Everything one open-loop run measured."""

    offered_rate: float
    num_requests: int
    completed: int = 0
    errors: int = 0
    status_counts: dict[int, int] = field(default_factory=dict)
    #: seconds from *scheduled arrival* to full response, per completed
    #: request (queueing included — the open-loop latency definition).
    latencies: list[float] = field(default_factory=list)
    wall_seconds: float = 0.0
    connections: int = 0
    #: response bodies in request order (``collect_bodies=True`` runs only);
    #: ``None`` entries mark failed requests.
    bodies: list[bytes | None] | None = None

    def percentile(self, q: float) -> float:
        """Latency percentile in seconds (0 with no completed requests)."""
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), q))

    @property
    def achieved_qps(self) -> float:
        """Completed 200s per second of wall clock."""
        ok = self.status_counts.get(200, 0)
        return ok / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def shed_rate(self) -> float:
        """Fraction of requests answered 503 (admission shed)."""
        shed = self.status_counts.get(503, 0)
        return shed / self.num_requests if self.num_requests else 0.0

    @property
    def timeout_count(self) -> int:
        """Requests answered 504 (deadline expiry)."""
        return self.status_counts.get(504, 0)

    def as_row(self) -> dict[str, object]:
        """Flat dict row for table rendering (latencies in ms)."""
        return {
            "rate": self.offered_rate,
            "requests": self.num_requests,
            "qps": self.achieved_qps,
            "p50_ms": self.percentile(50) * 1e3,
            "p95_ms": self.percentile(95) * 1e3,
            "p99_ms": self.percentile(99) * 1e3,
            "shed_rate": self.shed_rate,
            "timeouts": self.timeout_count,
            "errors": self.errors,
        }

    def to_dict(self) -> dict[str, object]:
        """JSON-ready dict (bodies excluded — they are a test artifact)."""
        return {
            "offered_rate": self.offered_rate,
            "num_requests": self.num_requests,
            "completed": self.completed,
            "errors": self.errors,
            "status_counts": {str(k): v for k, v in sorted(self.status_counts.items())},
            "wall_seconds": self.wall_seconds,
            "achieved_qps": self.achieved_qps,
            "shed_rate": self.shed_rate,
            "timeouts": self.timeout_count,
            "connections": self.connections,
            "p50_ms": self.percentile(50) * 1e3,
            "p95_ms": self.percentile(95) * 1e3,
            "p99_ms": self.percentile(99) * 1e3,
        }


class _ConnectionPool:
    """Keep-alive connections to one host:port, growing on demand."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._free: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        self.opened = 0

    async def acquire(self):
        while self._free:
            reader, writer = self._free.pop()
            if not writer.is_closing():
                return reader, writer
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self.opened += 1
        return reader, writer

    def release(self, reader, writer) -> None:
        if not writer.is_closing():
            self._free.append((reader, writer))

    async def close(self) -> None:
        for _, writer in self._free:
            writer.close()
        for _, writer in self._free:
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        self._free.clear()


async def run_load(
    host: str,
    port: int,
    requests: Sequence[tuple[str, bytes]],
    rate: float,
    timeout: float = 30.0,
    collect_bodies: bool = False,
) -> LoadReport:
    """Fire ``requests`` open-loop at ``rate``/s and measure the responses.

    Parameters
    ----------
    host / port:
        The running front door.
    requests:
        ``(path, body)`` pairs (see :func:`requests_from_trace`).
    rate:
        Offered arrival rate, requests/second; request ``i`` is scheduled
        at ``t0 + i/rate`` regardless of earlier completions.
    timeout:
        Per-request socket budget; expiry counts as an error (distinct
        from a served 504).
    collect_bodies:
        Keep every response body in request order for bitwise comparison.
    """
    if rate <= 0:
        raise ConfigurationError(f"rate must be positive, got {rate!r}")
    if not requests:
        raise ConfigurationError("no requests to send")
    report = LoadReport(offered_rate=rate, num_requests=len(requests))
    bodies: list[bytes | None] = [None] * len(requests)
    pool = _ConnectionPool(host, port)
    loop = asyncio.get_running_loop()
    started = loop.time()

    async def fire(index: int, scheduled: float) -> None:
        delay = scheduled - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        path, body = requests[index]
        try:
            reader, writer = await pool.acquire()
            try:
                writer.write(_render_request(pool.host, path, body))
                await writer.drain()
                response = await asyncio.wait_for(
                    read_response(reader), timeout=timeout
                )
                if response is None:
                    raise ProtocolError("server closed the connection")
            except BaseException:
                writer.close()
                raise
            pool.release(reader, writer)
        except (OSError, ServerError, asyncio.TimeoutError, TimeoutError):
            report.errors += 1
            return
        report.completed += 1
        report.status_counts[response.status] = (
            report.status_counts.get(response.status, 0) + 1
        )
        # open-loop latency: measured from the scheduled arrival, so time
        # spent queueing behind a saturated server counts against it
        report.latencies.append(loop.time() - scheduled)
        bodies[index] = response.body

    tasks = [
        asyncio.create_task(fire(i, started + i / rate))
        for i in range(len(requests))
    ]
    await asyncio.gather(*tasks)
    report.wall_seconds = loop.time() - started
    report.connections = pool.opened
    await pool.close()
    if collect_bodies:
        report.bodies = bodies
    return report
