"""Persistent storage tier: out-of-core ingest, mmap serving, crash recovery.

Every other layer serves from RAM rebuilt at startup; this package is the
disk story underneath them, log-structured the way LogBase lays it out —
snapshot periodically, log mutations, recover by snapshot + log replay:

:mod:`~repro.storage.snapshot`
    Versioned CSR snapshot files whose payload bytes match the
    shared-memory layout, so serving attaches them zero-copy via ``mmap``
    (:func:`attach_snapshot`) instead of rebuilding arrays.
:mod:`~repro.storage.ingest`
    :func:`ingest_edge_list` — a streaming SNAP-format ingester that
    builds the snapshot out of core in bounded memory (two-pass counting
    sort spilled through fixed-size chunks), bit-identical to the
    in-memory ``read_edge_list`` path.
:mod:`~repro.storage.wal`
    :class:`WriteAheadLog` — CRC-framed append-only edge-update records;
    torn tails from a killed writer are detected and dropped, never
    replayed.
:mod:`~repro.storage.store`
    :class:`PersistentGraphStore` (write-ahead logging + checkpoint
    rotation) and :func:`recover` (newest valid snapshot + WAL-tail
    replay, digest-verified).
:mod:`~repro.storage.sidecar`
    Walk-cache sidecar files that warm-start the
    :class:`~repro.extensions.WalkIndex` so a restart skips re-sampling.

Entry points: ``repro ingest`` / ``repro recover`` / ``repro serve
--snapshot`` on the CLI, ``snapshot=`` / ``store=`` on the parallel
services, and ``benchmarks/bench_storage.py`` in the harness.
"""

from repro.storage.ingest import IngestStats, ingest_edge_list
from repro.storage.sidecar import SidecarError, load_walk_cache, save_walk_cache
from repro.storage.snapshot import (
    MappedSnapshot,
    SnapshotError,
    SnapshotHeader,
    attach_snapshot,
    read_snapshot_header,
    write_snapshot,
)
from repro.storage.store import (
    PersistentGraphStore,
    RecoveredGraph,
    StoreError,
    recover,
)
from repro.storage.wal import WalError, WalTail, WriteAheadLog

__all__ = [
    "IngestStats",
    "MappedSnapshot",
    "PersistentGraphStore",
    "RecoveredGraph",
    "SidecarError",
    "SnapshotError",
    "SnapshotHeader",
    "StoreError",
    "WalError",
    "WalTail",
    "WriteAheadLog",
    "attach_snapshot",
    "ingest_edge_list",
    "load_walk_cache",
    "read_snapshot_header",
    "recover",
    "save_walk_cache",
    "write_snapshot",
]
