"""Streaming SNAP edge-list ingestion: text file → snapshot, out of core.

:func:`repro.graph.io.read_edge_list` materialises the whole graph as Python
objects — the right tool up to a few million edges, the wrong one for the
paper's billion-edge regime.  :func:`ingest_edge_list` builds the *same* CSR
snapshot in bounded memory instead:

Pass 1 (parse + count + spill)
    The text file is streamed line by line exactly as ``read_edge_list``
    parses it (same comment handling, relabelling order, self-loop policy,
    error messages); surviving edges are spilled to a temporary binary file
    through a fixed-size chunk buffer while per-node in/out degree counters
    grow.  Memory: O(nodes + chunk).

Pass 2 (counting-sort fill)
    Degree counts become raw CSR offsets; the spill file is re-read chunk by
    chunk and each edge is scattered into out/in index arrays backed by a
    scratch ``np.memmap`` — a classic out-of-core counting sort that
    preserves file order within every adjacency row, which is exactly the
    insertion order ``DiGraph`` would have produced.

Pass 3 (per-row dedup + snapshot write)
    Duplicate edges are dropped per adjacency row, keeping first
    occurrences (equivalent to ``read_edge_list``'s global first-occurrence
    rule, since duplicates of ``(s, t)`` all land in row ``s``).  The final
    arrays stream row by row into a snapshot file laid out by
    :mod:`repro.storage.snapshot`, the digest is computed over the written
    payload, and the file is atomically renamed into place.

The result is bit-identical to
``write_snapshot(read_edge_list(path), out)`` — the property suite round-trips
random edge lists through both paths and compares CSR bytes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from hashlib import blake2b
from pathlib import Path

import numpy as np

from repro.errors import DatasetError
from repro.graph.csr import payload_layout
from repro.graph.io import _open_text
from repro.storage.snapshot import (
    HEADER_BYTES,
    SnapshotHeader,
    _pack_header,
    fsync_directory,
)

__all__ = ["IngestStats", "ingest_edge_list"]

#: spill/read granularity: edges per chunk buffer (each edge is 16 bytes).
DEFAULT_CHUNK_EDGES = 1 << 18


@dataclass(frozen=True)
class IngestStats:
    """What one :func:`ingest_edge_list` run read, dropped, and wrote."""

    path: str
    nodes: int
    edges: int
    lines: int
    duplicates: int
    self_loops: int
    chunk_edges: int
    spill_bytes: int
    digest: str

    @property
    def header(self) -> SnapshotHeader:
        """The written snapshot's header equivalent."""
        return SnapshotHeader(self.nodes, self.edges, self.digest)


def _grow(counts: np.ndarray, size: int) -> np.ndarray:
    """Zero-extended copy of ``counts`` covering at least ``size`` entries."""
    if size <= counts.size:
        return counts
    grown = np.zeros(max(size, 2 * counts.size, 1024), dtype=np.int64)
    grown[: counts.size] = counts
    return grown


def _dedup_row(row: np.ndarray) -> np.ndarray:
    """Drop repeated values keeping first occurrences (file order)."""
    _, first = np.unique(row, return_index=True)
    if first.size == row.size:
        return row
    return row[np.sort(first)]


def ingest_edge_list(
    path: str | Path,
    out: str | Path,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    comments: str = "#",
    relabel: bool = True,
    deduplicate: bool = True,
    drop_self_loops: bool = True,
    workdir: str | Path | None = None,
) -> IngestStats:
    """Build a CSR snapshot file from a SNAP edge list, out of core.

    Parameters mirror :func:`repro.graph.io.read_edge_list` (gzip-transparent,
    same relabel/dedup/self-loop semantics); ``chunk_edges`` bounds the spill
    buffer (any positive value, down to 1, produces identical output) and
    ``workdir`` hosts the temporary spill/scratch files (defaults to the
    output's directory so the final rename stays on one filesystem).
    """
    path = Path(path)
    out = Path(out)
    if chunk_edges < 1:
        raise DatasetError(f"chunk_edges must be >= 1, got {chunk_edges}")
    if not path.exists():
        raise DatasetError(f"edge list not found: {path}")
    out.parent.mkdir(parents=True, exist_ok=True)
    workdir = Path(workdir) if workdir is not None else out.parent
    workdir.mkdir(parents=True, exist_ok=True)
    tag = f"{out.name}.{os.getpid()}"
    spill_path = workdir / f".ingest-spill-{tag}"
    scratch_path = workdir / f".ingest-scratch-{tag}"
    tmp_path = out.parent / f".{out.name}.tmp-{os.getpid()}"
    try:
        return _ingest(
            path, out, tmp_path, spill_path, scratch_path,
            int(chunk_edges), comments, relabel, deduplicate, drop_self_loops,
        )
    finally:
        spill_path.unlink(missing_ok=True)
        scratch_path.unlink(missing_ok=True)
        tmp_path.unlink(missing_ok=True)


def _ingest(
    path: Path,
    out: Path,
    tmp_path: Path,
    spill_path: Path,
    scratch_path: Path,
    chunk_edges: int,
    comments: str,
    relabel: bool,
    deduplicate: bool,
    drop_self_loops: bool,
) -> IngestStats:
    label_of: dict[int, int] = {}

    def intern(raw: int) -> int:
        node = label_of.get(raw)
        if node is None:
            node = len(label_of)
            label_of[raw] = node
        return node

    out_counts = np.zeros(0, dtype=np.int64)
    in_counts = np.zeros(0, dtype=np.int64)
    buffer = np.empty((chunk_edges, 2), dtype=np.int64)
    filled = 0
    kept = 0
    lines = 0
    self_loops = 0
    max_id = -1
    spill_bytes = 0

    # ---- pass 1: parse, relabel, count degrees, spill fixed-size chunks ----
    with _open_text(path, "r") as handle, open(spill_path, "wb") as spill:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(comments):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise DatasetError(
                    f"{path}:{lineno}: expected 'source target', got {line!r}"
                )
            try:
                raw_s, raw_t = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise DatasetError(
                    f"{path}:{lineno}: non-integer node id in {line!r}"
                ) from exc
            lines += 1
            # interning order matches read_edge_list: ids register before
            # the self-loop check, so dropped lines still claim labels
            if relabel:
                source, target = intern(raw_s), intern(raw_t)
            else:
                if raw_s < 0 or raw_t < 0:
                    raise DatasetError(
                        f"{path}:{lineno}: negative node id with relabel=False"
                    )
                source, target = raw_s, raw_t
            if source == target:
                if drop_self_loops:
                    self_loops += 1
                    continue
                raise DatasetError(f"{path}:{lineno}: self-loop on node {raw_s}")
            top = max(source, target)
            if top > max_id:
                max_id = top
            if top >= out_counts.size:
                out_counts = _grow(out_counts, top + 1)
                in_counts = _grow(in_counts, top + 1)
            out_counts[source] += 1
            in_counts[target] += 1
            buffer[filled] = (source, target)
            filled += 1
            kept += 1
            if filled == chunk_edges:
                chunk = buffer[:filled].tobytes()
                spill.write(chunk)
                spill_bytes += len(chunk)
                filled = 0
        if filled:
            chunk = buffer[:filled].tobytes()
            spill.write(chunk)
            spill_bytes += len(chunk)

    num_nodes = len(label_of) if relabel else max_id + 1
    raw_edges = kept
    # nodes interned on dropped lines (self-loops) may sit past the last
    # kept edge's id, so the counters can be shorter than num_nodes
    out_counts = _grow(out_counts, num_nodes)[:num_nodes]
    in_counts = _grow(in_counts, num_nodes)[:num_nodes]

    # ---- pass 2: counting-sort the spill into raw (dup-including) CSR ----
    raw_out_indptr = np.concatenate(([0], np.cumsum(out_counts)))
    raw_in_indptr = np.concatenate(([0], np.cumsum(in_counts)))
    if raw_edges:
        with open(scratch_path, "wb") as handle:
            handle.truncate(2 * raw_edges * 4)
        scratch = np.memmap(
            scratch_path, dtype=np.int32, mode="r+", shape=(2, raw_edges)
        )
        raw_out, raw_in = scratch[0], scratch[1]
        out_cursor = raw_out_indptr[:-1].copy()
        in_cursor = raw_in_indptr[:-1].copy()
        with open(spill_path, "rb") as spill:
            while True:
                blob = spill.read(chunk_edges * 16)
                if not blob:
                    break
                pairs = np.frombuffer(blob, dtype=np.int64).reshape(-1, 2)
                for source, target in pairs.tolist():
                    raw_out[out_cursor[source]] = target
                    out_cursor[source] += 1
                    raw_in[in_cursor[target]] = source
                    in_cursor[target] += 1
    else:
        raw_out = raw_in = np.empty(0, dtype=np.int32)

    # ---- pass 3: per-row first-occurrence dedup, streamed snapshot write ----
    out_unique = np.empty(num_nodes, dtype=np.int64)
    in_unique = np.empty(num_nodes, dtype=np.int64)
    for node in range(num_nodes):
        row = raw_out[raw_out_indptr[node] : raw_out_indptr[node + 1]]
        out_unique[node] = np.unique(row).size
        row = raw_in[raw_in_indptr[node] : raw_in_indptr[node + 1]]
        in_unique[node] = np.unique(row).size
    num_edges = int(out_unique.sum())
    if not deduplicate and num_edges != raw_edges:
        raise DatasetError(
            f"{path}: {raw_edges - num_edges} duplicate edges with "
            "deduplicate=False"
        )

    layout, payload_size = payload_layout(num_nodes, num_edges)
    file_bytes = HEADER_BYTES + payload_size
    with open(tmp_path, "wb") as handle:
        handle.truncate(file_bytes)
    mapped = np.memmap(tmp_path, dtype=np.uint8, mode="r+", shape=(file_bytes,))
    views = {
        field: np.ndarray(
            (count,), dtype=dtype, buffer=mapped, offset=HEADER_BYTES + offset
        )
        for field, dtype, offset, count in layout
    }
    views["out_indptr"][0] = 0
    np.cumsum(out_unique, out=views["out_indptr"][1:])
    views["in_indptr"][0] = 0
    np.cumsum(in_unique, out=views["in_indptr"][1:])
    for field, raw, indptr in (
        ("out_indices", raw_out, raw_out_indptr),
        ("in_indices", raw_in, raw_in_indptr),
    ):
        cursor = 0
        target_view = views[field]
        for node in range(num_nodes):
            row = _dedup_row(raw[indptr[node] : indptr[node + 1]])
            target_view[cursor : cursor + row.size] = row
            cursor += row.size
    del views
    mapped.flush()

    # hash the written payload in bounded blocks (matches CSRGraph.digest:
    # the packed fields are gapless, so the payload region IS their bytes)
    hasher = blake2b(digest_size=16)
    hasher.update(np.array([num_nodes, num_edges], dtype=np.int64).tobytes())
    with open(tmp_path, "rb") as handle:
        handle.seek(HEADER_BYTES)
        remaining = sum(
            int(np.dtype(dtype).itemsize) * count for _, dtype, _, count in layout
        )
        while remaining:
            block = handle.read(min(remaining, 1 << 20))
            hasher.update(block)
            remaining -= len(block)
    digest = hasher.hexdigest()
    mapped[:HEADER_BYTES] = np.frombuffer(
        _pack_header(num_nodes, num_edges, digest), dtype=np.uint8
    )
    mapped.flush()
    del mapped
    with open(tmp_path, "rb") as handle:
        os.fsync(handle.fileno())
    os.replace(tmp_path, out)
    fsync_directory(out.parent)
    return IngestStats(
        path=str(out),
        nodes=num_nodes,
        edges=num_edges,
        lines=lines,
        duplicates=raw_edges - num_edges,
        self_loops=self_loops,
        chunk_edges=chunk_edges,
        spill_bytes=spill_bytes,
        digest=digest,
    )
