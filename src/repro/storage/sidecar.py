"""Walk-cache sidecar files: warm-start the WalkIndex across restarts.

The :class:`~repro.extensions.walk_index.WalkIndex` pays its cost up front —
sampling ``nr`` √c-walks per hot query node and folding them into
reachability trees.  After a restart that cache is gone and every hot query
re-pays the build.  A *sidecar* file freezes the cache next to the graph
snapshot it was sampled against, so a restarted service restores the trees
in O(cache size) and serves its first hot query as a cache hit.

The file is framed like every other storage artifact (magic, version,
CRC32 over the payload) and additionally pins **two digests**: the CSR
digest of the graph the walks were sampled on, and a signature of the
ProbeSim configuration.  :func:`load_walk_cache` refuses a sidecar whose
digests do not match the index it is warming — a stale cache is silently
worthless at best and wrong at worst, so mismatch is an error, not a
degraded load.  Payload serialisation is :mod:`pickle` of plain ints /
tuples / dicts only (the export format of
:meth:`~repro.extensions.walk_index.WalkIndex.export_state`).

A sidecar is always *optional* state: crash recovery never requires one,
and deleting it costs only re-sampling.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import zlib
from pathlib import Path

from repro.errors import ReproError
from repro.graph.csr import as_csr

__all__ = ["SidecarError", "load_walk_cache", "save_walk_cache"]

_MAGIC = b"RWIX"
_VERSION = 1
_HEADER_STRUCT = struct.Struct("<4sI16s16sII")  # magic, ver, 2 digests, crc, len


class SidecarError(ReproError):
    """The sidecar file is torn, corrupt, or pinned to a different state."""


def _config_signature(config) -> bytes:
    """16-byte digest of the engine configuration the walks depend on."""
    return hashlib.blake2b(repr(config).encode(), digest_size=16).digest()


def save_walk_cache(index, path: str | Path) -> int:
    """Freeze ``index``'s cached trees to ``path`` (atomic write).

    Returns the number of trees saved.  The file pins the index's current
    graph digest and config signature; save after warming, before the
    graph moves on.
    """
    path = Path(path)
    state = index.export_state()
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    graph_digest = bytes.fromhex(as_csr(index.engine.graph).digest())
    header = _HEADER_STRUCT.pack(
        _MAGIC,
        _VERSION,
        graph_digest,
        _config_signature(index.config),
        zlib.crc32(payload) & 0xFFFFFFFF,
        len(payload),
    )
    tmp = path.parent / f".{path.name}.tmp-{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(header)
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return len(state["trees"])


def load_walk_cache(index, path: str | Path) -> int:
    """Warm ``index`` from a sidecar file; returns the restored tree count.

    Raises :class:`SidecarError` when the file is torn (bad magic/CRC/
    length) or was saved against a different graph or configuration —
    restoring such a cache would serve answers sampled from the wrong
    distribution.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except FileNotFoundError:
        raise SidecarError(f"walk-cache sidecar not found: {path}") from None
    if len(raw) < _HEADER_STRUCT.size:
        raise SidecarError(f"{path}: truncated sidecar header")
    magic, version, graph_digest, config_sig, crc, length = _HEADER_STRUCT.unpack(
        raw[: _HEADER_STRUCT.size]
    )
    if magic != _MAGIC:
        raise SidecarError(f"{path}: not a walk-cache sidecar (magic {magic!r})")
    if version != _VERSION:
        raise SidecarError(
            f"{path}: sidecar version {version} unsupported (expected {_VERSION})"
        )
    payload = raw[_HEADER_STRUCT.size : _HEADER_STRUCT.size + length]
    if len(payload) != length or crc != (zlib.crc32(payload) & 0xFFFFFFFF):
        raise SidecarError(f"{path}: sidecar payload is torn (CRC mismatch)")
    expected_graph = bytes.fromhex(as_csr(index.engine.graph).digest())
    if graph_digest != expected_graph:
        raise SidecarError(
            f"{path}: sidecar was saved against a different graph "
            f"(digest {graph_digest.hex()}, index has {expected_graph.hex()})"
        )
    if config_sig != _config_signature(index.config):
        raise SidecarError(
            f"{path}: sidecar was saved under a different ProbeSim "
            "configuration"
        )
    return index.restore_state(pickle.loads(payload))
