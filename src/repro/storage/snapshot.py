"""Versioned, memory-mappable CSR snapshot files.

A snapshot file is one frozen :class:`~repro.graph.csr.CSRGraph` on disk:
a fixed 64-byte header followed by the adjacency arrays packed exactly as
:func:`repro.graph.csr.payload_layout` lays them out for shared memory.
Because the payload bytes are identical to a shared-memory generation,
attaching a snapshot is the same zero-copy view construction the parallel
workers already do — ``mmap`` the file, slice past the header, and hand the
views straight to :class:`~repro.graph.csr.CSRGraph`.  A multi-GB graph
therefore "loads" in O(1): the kernel pages adjacency in on demand and
shares the pages across every process that attaches the same file.

Header (little-endian, 64 bytes total)::

    offset  0  magic      b"RCSR"
    offset  4  version    u32 (currently 1)
    offset  8  num_nodes  u64
    offset 16  num_edges  u64
    offset 24  digest     16 raw bytes — blake2b-128 of the payload,
                          equal to ``CSRGraph.digest()`` of the graph
    offset 40  crc32      u32 over header bytes [0, 40)
    offset 44  zero padding to 64 (keeps the payload 8-byte aligned)

Writes are crash-safe: the file is built under a temporary name in the
destination directory, flushed and fsynced, then atomically renamed into
place (and the directory fsynced), so a reader can never observe a torn
snapshot under the final name.  The embedded digest lets
:func:`attach_snapshot` (with ``verify=True``) prove bit-identity against
the payload it mapped.
"""

from __future__ import annotations

import mmap
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ReproError
from repro.graph.csr import CSRGraph, as_csr, payload_layout

__all__ = [
    "HEADER_BYTES",
    "MAGIC",
    "VERSION",
    "MappedSnapshot",
    "SnapshotError",
    "SnapshotHeader",
    "attach_snapshot",
    "read_snapshot_header",
    "write_snapshot",
]

MAGIC = b"RCSR"
VERSION = 1
#: fixed header size; also the payload's file offset (8-byte aligned).
HEADER_BYTES = 64

_HEADER_STRUCT = struct.Struct("<4sIQQ16s")  # magic, version, n, m, digest
_CRC_STRUCT = struct.Struct("<I")


class SnapshotError(ReproError):
    """A snapshot file is missing, truncated, corrupt, or version-mismatched."""


@dataclass(frozen=True)
class SnapshotHeader:
    """Parsed header of one snapshot file."""

    num_nodes: int
    num_edges: int
    digest: str  # hex, as CSRGraph.digest() returns it

    @property
    def payload_bytes(self) -> int:
        """Byte size of the packed adjacency payload this header describes."""
        _, size = payload_layout(self.num_nodes, self.num_edges)
        return size

    @property
    def file_bytes(self) -> int:
        """Expected total file size (header + payload)."""
        return HEADER_BYTES + self.payload_bytes


def _pack_header(num_nodes: int, num_edges: int, digest_hex: str) -> bytes:
    body = _HEADER_STRUCT.pack(
        MAGIC, VERSION, num_nodes, num_edges, bytes.fromhex(digest_hex)
    )
    crc = zlib.crc32(body) & 0xFFFFFFFF
    header = body + _CRC_STRUCT.pack(crc)
    return header.ljust(HEADER_BYTES, b"\0")


def _unpack_header(raw: bytes, path: Path) -> SnapshotHeader:
    if len(raw) < HEADER_BYTES:
        raise SnapshotError(f"{path}: truncated snapshot header ({len(raw)} bytes)")
    body = raw[: _HEADER_STRUCT.size]
    magic, version, num_nodes, num_edges, digest = _HEADER_STRUCT.unpack(body)
    if magic != MAGIC:
        raise SnapshotError(f"{path}: not a snapshot file (magic {magic!r})")
    if version != VERSION:
        raise SnapshotError(
            f"{path}: snapshot version {version} unsupported (expected {VERSION})"
        )
    (crc,) = _CRC_STRUCT.unpack_from(raw, _HEADER_STRUCT.size)
    if crc != (zlib.crc32(body) & 0xFFFFFFFF):
        raise SnapshotError(f"{path}: snapshot header CRC mismatch")
    return SnapshotHeader(int(num_nodes), int(num_edges), digest.hex())


def read_snapshot_header(path: str | Path) -> SnapshotHeader:
    """Parse and validate one snapshot file's header (magic, version, CRC).

    Also checks the file size against the header's node/edge counts, so a
    snapshot truncated mid-payload is rejected here without reading the
    payload itself.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            raw = handle.read(HEADER_BYTES)
    except FileNotFoundError:
        raise SnapshotError(f"snapshot not found: {path}") from None
    header = _unpack_header(raw, path)
    actual = path.stat().st_size
    if actual != header.file_bytes:
        raise SnapshotError(
            f"{path}: snapshot is {actual} bytes, header describes "
            f"{header.file_bytes}"
        )
    return header


def fsync_directory(directory: str | Path) -> None:
    """fsync a directory so a just-renamed entry survives a crash."""
    fd = os.open(str(directory), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_snapshot(graph, path: str | Path) -> SnapshotHeader:
    """Write ``graph`` (DiGraph or CSRGraph) as a snapshot file, atomically.

    The payload is streamed array by array (no packed in-memory copy of the
    whole graph is built), fsynced, and renamed into place.  Returns the
    written header; ``header.digest`` equals ``as_csr(graph).digest()``.
    """
    csr = as_csr(graph)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    digest = csr.digest()
    tmp = path.parent / f".{path.name}.tmp-{os.getpid()}"
    payload = csr.shm_payload()
    try:
        with open(tmp, "wb") as handle:
            handle.write(_pack_header(csr.num_nodes, csr.num_edges, digest))
            for array in payload.values():  # SHM_LAYOUT order, gapless
                handle.write(memoryview(array).cast("B"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        fsync_directory(path.parent)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return SnapshotHeader(csr.num_nodes, csr.num_edges, digest)


class MappedSnapshot:
    """One snapshot file mapped read-only; the storage twin of a shm segment.

    Mirrors the slice of the ``multiprocessing.shared_memory`` surface the
    parallel layer touches — :attr:`buf` (a memoryview of the *payload*
    region, header already sliced off, so byte offsets match a shared-memory
    generation exactly), :meth:`close`, and a no-op :meth:`unlink` (the
    snapshot file is durable state owned by whoever wrote it; releasing a
    mapping must never delete it).  That duck-typing is what lets
    :class:`~repro.parallel.shm.SharedCSRGraph` treat an mmap-backed epoch
    like any other generation segment.
    """

    def __init__(self, path: str | Path, header: SnapshotHeader, mapping) -> None:
        self.path = Path(path)
        self.header = header
        self._mmap = mapping
        self._buf: memoryview | None = memoryview(mapping)[HEADER_BYTES:]

    @classmethod
    def open(cls, path: str | Path) -> "MappedSnapshot":
        """Map ``path`` read-only after validating its header."""
        path = Path(path)
        header = read_snapshot_header(path)
        with open(path, "rb") as handle:
            mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        return cls(path, header, mapping)

    @property
    def buf(self) -> memoryview:
        """The payload bytes (view past the header), shm-segment compatible."""
        if self._buf is None:
            raise SnapshotError(f"snapshot mapping for {self.path} is closed")
        return self._buf

    def graph(self) -> CSRGraph:
        """A :class:`CSRGraph` whose arrays are zero-copy views of the file."""
        layout, _ = payload_layout(self.header.num_nodes, self.header.num_edges)
        views = {
            field: np.ndarray((count,), dtype=dtype, buffer=self.buf, offset=offset)
            for field, dtype, offset, count in layout
        }
        return CSRGraph(
            self.header.num_nodes,
            views["out_indptr"],
            views["out_indices"],
            views["in_indptr"],
            views["in_indices"],
        )

    def close(self) -> None:
        """Release the mapping.  Matches ``SharedMemory.close`` semantics:
        drop every numpy view *before* closing — like a shared-memory
        segment, the mapping goes away underneath surviving views (and the
        parallel layer's tolerant close path handles the rare
        :class:`BufferError` from a still-exported buffer identically for
        both segment kinds).
        """
        if self._buf is not None:
            self._buf.release()
            self._buf = None
        self._mmap.close()

    def unlink(self) -> None:
        """No-op: snapshot files outlive mappings by design."""

    def __enter__(self) -> "MappedSnapshot":
        return self

    def __exit__(self, *exc) -> None:
        try:
            self.close()
        except BufferError:  # a caller still holds graph views
            pass

    def __repr__(self) -> str:
        state = "closed" if self._buf is None else "open"
        return f"MappedSnapshot({str(self.path)!r}, {state})"


def attach_snapshot(path: str | Path, verify: bool = False) -> MappedSnapshot:
    """Memory-map a snapshot file for serving (no CSR rebuild, no copy).

    With ``verify=True`` the payload is re-hashed and compared against the
    header's embedded digest — an O(payload) sequential read that proves
    bit-identity, used by the recovery path; plain attaches skip it so a
    warm restart touches only the header.
    """
    mapped = MappedSnapshot.open(path)
    try:
        if verify:
            actual = mapped.graph().digest()
            if actual != mapped.header.digest:
                raise SnapshotError(
                    f"{path}: payload digest {actual} does not match header "
                    f"digest {mapped.header.digest}"
                )
    except BaseException:
        # verification failed or raised: the caller never sees the handle,
        # so the mapping must not outlive this frame
        try:
            mapped.close()
        except BufferError:  # pragma: no cover - views still referenced
            pass
        raise
    return mapped
