"""Snapshot + WAL storage directories: durable graphs with crash recovery.

A *store* is one directory holding the log-structured persistent form of a
graph, LogBase-style::

    <dir>/
      snapshot-000001.csr    # CSR snapshot of generation 1
      wal-000001.log         # updates acknowledged since that snapshot
      walks-000001.bin       # optional walk-cache sidecar (never required)

The mutation path appends every update burst to the live generation's WAL
*before* the burst is shipped to serving replicas; a checkpoint (triggered
by the serving layer's compaction, or explicitly) writes a fresh snapshot
that folds the log in, starts an empty next-generation WAL, and only then
deletes the superseded files.  Every step is individually crash-safe:

- snapshot writes are tmp + atomic rename (:func:`~repro.storage.snapshot.
  write_snapshot`), so a renamed snapshot is always complete;
- a crash before the new WAL exists recovers as "snapshot + no tail" — the
  snapshot already contains everything the old WAL held;
- a crash before the old generation is deleted is invisible — recovery
  always picks the *newest valid* generation;
- a crash mid-WAL-append leaves a torn frame that replay drops.

:func:`recover` is the read-only half: pick the newest generation whose
snapshot verifies (header CRC, size, payload digest), replay its WAL's
valid prefix, and hand back the pre-crash graph — bit-identical to the
state after the last acknowledged burst (or the burst boundary just before
a torn append).  It never repairs anything, so fault-injection tests can
re-recover the same wreckage repeatedly; :meth:`PersistentGraphStore.open`
is the writer-side variant that truncates the torn tail and resumes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ReproError
from repro.graph.csr import CSRGraph, as_csr
from repro.graph.digraph import DiGraph
from repro.graph.dynamic import EdgeUpdate, apply_update
from repro.storage.snapshot import (
    MappedSnapshot,
    SnapshotError,
    attach_snapshot,
    write_snapshot,
)
from repro.storage.wal import WalError, WriteAheadLog

__all__ = ["PersistentGraphStore", "RecoveredGraph", "StoreError", "recover"]

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{6})\.csr$")


class StoreError(ReproError):
    """The store directory holds no usable generation."""


def snapshot_path(directory: Path, generation: int) -> Path:
    """The snapshot file name of ``generation`` inside ``directory``."""
    return directory / f"snapshot-{generation:06d}.csr"


def wal_path(directory: Path, generation: int) -> Path:
    """The WAL file name of ``generation`` inside ``directory``."""
    return directory / f"wal-{generation:06d}.log"


def sidecar_path(directory: Path, generation: int) -> Path:
    """The walk-cache sidecar file name of ``generation`` (optional file)."""
    return directory / f"walks-{generation:06d}.bin"


def _generations(directory: Path) -> list[int]:
    """Snapshot generations present in ``directory``, newest first."""
    found = []
    for entry in directory.iterdir():
        match = _SNAPSHOT_RE.match(entry.name)
        if match:
            found.append(int(match.group(1)))
    return sorted(found, reverse=True)


@dataclass
class RecoveredGraph:
    """One :func:`recover` result: the newest durable graph state.

    ``snapshot`` is the mmap-attached (verified) snapshot; ``tail`` the
    WAL updates acknowledged after it.  :meth:`graph` materialises
    snapshot+tail; with an empty tail :meth:`csr` is the zero-copy mmap
    view itself — the warm-attach path that serves without rebuilding.
    """

    directory: Path
    generation: int
    snapshot: MappedSnapshot
    tail: tuple[EdgeUpdate, ...]
    torn_bytes: int

    def graph(self) -> DiGraph:
        """Mutable snapshot+tail replay (the writer-side recovery state)."""
        graph = self.snapshot.graph().to_digraph()
        for update in self.tail:
            apply_update(graph, update)
        return graph

    def csr(self) -> CSRGraph:
        """Frozen recovered state; zero-copy when the tail is empty."""
        if not self.tail:
            return self.snapshot.graph()
        return CSRGraph.from_digraph(self.graph())

    def digest(self) -> str:
        """Bit-identity digest of the recovered graph state."""
        if not self.tail:
            return self.snapshot.header.digest
        return self.csr().digest()

    def close(self) -> None:
        """Release the snapshot mapping (drop graph views first)."""
        try:
            self.snapshot.close()
        except BufferError:  # views still referenced; mapping dies with them
            pass

    def __enter__(self) -> "RecoveredGraph":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def recover(path: str | Path, verify: bool = True) -> RecoveredGraph:
    """Replay the newest valid snapshot + WAL tail of a store directory.

    Read-only and idempotent: nothing in ``path`` is modified, so the same
    crash state recovers to the same graph every time.  Generations whose
    snapshot fails validation (torn header, size mismatch, payload digest
    mismatch under ``verify=True``) are skipped in favour of the next
    older one; a missing WAL is an empty tail.  Raises :class:`StoreError`
    when no generation is usable.
    """
    directory = Path(path)
    if not directory.is_dir():
        raise StoreError(f"not a store directory: {directory}")
    failures: list[str] = []
    for generation in _generations(directory):
        try:
            snapshot = attach_snapshot(
                snapshot_path(directory, generation), verify=verify
            )
        except SnapshotError as exc:
            failures.append(str(exc))
            continue
        tail: tuple[EdgeUpdate, ...] = ()
        torn = 0
        wal_file = wal_path(directory, generation)
        if wal_file.exists():
            try:
                replay = WriteAheadLog.replay(wal_file)
            except WalError as exc:
                # an unreadable WAL header means the rotation crashed before
                # the log existed in full: the snapshot alone is the state
                failures.append(str(exc))
            else:
                if replay.generation != generation:
                    failures.append(
                        f"{wal_file}: generation {replay.generation} does not "
                        f"match snapshot generation {generation}"
                    )
                else:
                    tail = replay.updates
                    torn = replay.torn_bytes
        return RecoveredGraph(directory, generation, snapshot, tail, torn)
    detail = "; ".join(failures) if failures else "no snapshot files"
    raise StoreError(f"{directory}: no recoverable generation ({detail})")


class PersistentGraphStore:
    """Writer-side handle: log update bursts, checkpoint generations.

    The serving layer drives this through two calls — :meth:`log` on every
    acknowledged burst (write-ahead, before replicas see it) and
    :meth:`checkpoint` whenever it compacts its delta log into a fresh CSR
    generation.  ``fsync=False`` trades the per-burst durability barrier
    for throughput (the frames still stream to the OS immediately); the
    crash-safety *structure* is unaffected.
    """

    def __init__(
        self, directory: Path, generation: int, wal: WriteAheadLog, fsync: bool
    ) -> None:
        self.directory = directory
        self.generation = int(generation)
        self._wal = wal
        self._fsync = bool(fsync)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def create(
        cls, directory: str | Path, graph, fsync: bool = True
    ) -> "PersistentGraphStore":
        """Initialise ``directory`` with generation 1 of ``graph``.

        Refuses a directory that already holds a store (use :meth:`open`);
        creates it (and parents) when missing.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if _generations(directory):
            raise StoreError(
                f"{directory} already holds a store; open() it instead"
            )
        write_snapshot(graph, snapshot_path(directory, 1))
        wal = WriteAheadLog.create(wal_path(directory, 1), 1, fsync=fsync)
        return cls(directory, 1, wal, fsync)

    @classmethod
    def open(
        cls, directory: str | Path, verify: bool = True, fsync: bool = True
    ) -> "PersistentGraphStore":
        """Recover ``directory`` and resume writing where the log ends.

        Repairs crash debris: truncates a torn WAL tail, creates the WAL if
        the previous writer died between snapshot rename and log creation,
        and removes files of superseded or invalid generations.
        """
        directory = Path(directory)
        with recover(directory, verify=verify) as state:
            generation = state.generation
        wal_file = wal_path(directory, generation)
        if wal_file.exists():
            wal = WriteAheadLog.open(wal_file)
        else:
            wal = WriteAheadLog.create(wal_file, generation, fsync=fsync)
        store = cls(directory, generation, wal, fsync)
        store._sweep()
        return store

    # ------------------------------------------------------------------ #
    # the two write paths
    # ------------------------------------------------------------------ #

    @property
    def wal_records(self) -> int:
        """Updates durably logged against the live generation."""
        return self._wal.records

    def log(self, updates) -> int:
        """Write-ahead one update burst; durable before the call returns."""
        return self._wal.append(updates, fsync=self._fsync)

    def checkpoint(self, graph) -> int:
        """Fold state into a fresh snapshot generation; rotate the WAL.

        ``graph`` must be the post-burst graph the caller serves (the
        coordinator's authoritative copy).  Ordering is the crash-safety
        argument: snapshot rename → new WAL → old files deleted, each step
        leaving recovery with either the old generation (plus its full
        log) or the new one.  Returns the new generation number.
        """
        new_generation = self.generation + 1
        write_snapshot(as_csr(graph), snapshot_path(self.directory, new_generation))
        old_wal = self._wal
        self._wal = WriteAheadLog.create(
            wal_path(self.directory, new_generation), new_generation,
            fsync=self._fsync,
        )
        old_generation = self.generation
        self.generation = new_generation
        old_wal.close()
        wal_path(self.directory, old_generation).unlink(missing_ok=True)
        snapshot_path(self.directory, old_generation).unlink(missing_ok=True)
        sidecar_path(self.directory, old_generation).unlink(missing_ok=True)
        return new_generation

    def _sweep(self) -> None:
        """Remove files of generations other than the live one, and tmp debris."""
        for entry in list(self.directory.iterdir()):
            match = _SNAPSHOT_RE.match(entry.name)
            stale_generation = None
            if match:
                stale_generation = int(match.group(1))
            elif entry.name.startswith((".snapshot-", ".ingest-")):
                entry.unlink(missing_ok=True)  # crashed tmp/scratch files
                continue
            else:
                wal_match = re.match(r"^(?:wal|walks)-(\d{6})\.(?:log|bin)$", entry.name)
                if wal_match:
                    stale_generation = int(wal_match.group(1))
            if stale_generation is not None and stale_generation != self.generation:
                entry.unlink(missing_ok=True)

    # ------------------------------------------------------------------ #
    # reads / lifecycle
    # ------------------------------------------------------------------ #

    def materialize(self) -> DiGraph:
        """The live graph state: snapshot + every logged update, mutable."""
        with recover(self.directory, verify=False) as state:
            return state.graph()

    def close(self) -> None:
        """Close the WAL handle (idempotent; all state stays on disk)."""
        self._wal.close()

    def __enter__(self) -> "PersistentGraphStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"PersistentGraphStore({str(self.directory)!r}, "
            f"generation={self.generation}, wal_records={self.wal_records})"
        )
