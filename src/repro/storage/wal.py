"""Append-only write-ahead log of edge updates, CRC-framed per record.

The on-disk twin of the shared-memory delta log
(:meth:`repro.parallel.shm.SharedCSRGraph.append_deltas`): where the shm log
makes an update burst visible to worker processes, this log makes it
*durable*.  The serving layer appends each burst before shipping it
(write-ahead), so after a crash the log holds every acknowledged burst and
recovery replays it on top of the last snapshot.

File layout (little-endian)::

    header   b"RWAL" | version u32 | generation u64 | crc32 u32 | pad → 24 B
    records  crc32 u32 over payload | payload (kind u8, source i64, target i64)

Every record is a fixed 21-byte frame.  A writer killed mid-append leaves a
*torn tail*: a partial frame, or a frame whose CRC does not match its bytes.
:meth:`WriteAheadLog.replay` stops at the first invalid frame and reports the
byte offset of the valid prefix — the durable history is exactly the records
before it, never a torn one.  :meth:`WriteAheadLog.open` truncates that tail
away (standard log repair) so appends resume from a clean end.

``generation`` ties a log to the snapshot it extends: generation ``g``'s
records apply on top of ``snapshot-g``.  Checkpointing rotates to a fresh
log with a bumped generation (see :mod:`repro.storage.store`).
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ReproError
from repro.graph.dynamic import EdgeUpdate

__all__ = ["RECORD_BYTES", "WalError", "WalTail", "WriteAheadLog"]

_MAGIC = b"RWAL"
_VERSION = 1
_HEADER_STRUCT = struct.Struct("<4sIQI")  # magic, version, generation, crc
#: fixed header size (struct + zero padding, keeps records 8-aligned-ish)
HEADER_BYTES = 24

_PAYLOAD_STRUCT = struct.Struct("<Bqq")  # kind, source, target
_CRC_STRUCT = struct.Struct("<I")
#: fixed size of one framed record: crc32 prefix + packed payload.
RECORD_BYTES = _CRC_STRUCT.size + _PAYLOAD_STRUCT.size

_KINDS = ("insert", "delete")


class WalError(ReproError):
    """The log file is missing, has a bad header, or refused an append."""


@dataclass(frozen=True)
class WalTail:
    """One :meth:`WriteAheadLog.replay` result: the valid record prefix.

    ``valid_bytes`` is the file offset right after the last intact record;
    anything beyond it (``torn_bytes > 0``) is a torn tail from a writer
    killed mid-append, safe to truncate away.
    """

    generation: int
    updates: tuple[EdgeUpdate, ...]
    valid_bytes: int
    torn_bytes: int


def _pack_record(update: EdgeUpdate) -> bytes:
    payload = _PAYLOAD_STRUCT.pack(
        _KINDS.index(update.kind), update.source, update.target
    )
    return _CRC_STRUCT.pack(zlib.crc32(payload) & 0xFFFFFFFF) + payload


def _pack_file_header(generation: int) -> bytes:
    body = struct.pack("<4sIQ", _MAGIC, _VERSION, generation)
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return (body + _CRC_STRUCT.pack(crc)).ljust(HEADER_BYTES, b"\0")


def _read_file_header(raw: bytes, path: Path) -> int:
    if len(raw) < HEADER_BYTES:
        raise WalError(f"{path}: truncated WAL header ({len(raw)} bytes)")
    magic, version, generation, crc = _HEADER_STRUCT.unpack(
        raw[: _HEADER_STRUCT.size]
    )
    if magic != _MAGIC:
        raise WalError(f"{path}: not a WAL file (magic {magic!r})")
    if version != _VERSION:
        raise WalError(
            f"{path}: WAL version {version} unsupported (expected {_VERSION})"
        )
    body = raw[: _HEADER_STRUCT.size - _CRC_STRUCT.size]
    if crc != (zlib.crc32(body) & 0xFFFFFFFF):
        raise WalError(f"{path}: WAL header CRC mismatch")
    return int(generation)


class WriteAheadLog:
    """Writer handle over one generation's append-only log file.

    Create with :meth:`create` (fresh, truncating) or :meth:`open`
    (existing — replays to validate, repairs a torn tail, resumes
    appending).  :meth:`replay` is a classmethod so recovery can read a
    dead writer's log without taking write ownership of it.
    """

    def __init__(self, path: Path, generation: int, handle, records: int) -> None:
        self.path = path
        self.generation = int(generation)
        self._handle = handle
        self._records = int(records)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def create(
        cls, path: str | Path, generation: int, fsync: bool = True
    ) -> "WriteAheadLog":
        """Start a fresh log for ``generation`` (truncates any existing file)."""
        path = Path(path)
        handle = open(path, "wb")
        try:
            handle.write(_pack_file_header(generation))
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        except BaseException:
            handle.close()
            raise
        return cls(path, generation, handle, records=0)

    @classmethod
    def open(cls, path: str | Path) -> "WriteAheadLog":
        """Open an existing log for appending, truncating any torn tail."""
        path = Path(path)
        tail = cls.replay(path)
        handle = open(path, "r+b")
        try:
            if tail.torn_bytes:
                handle.truncate(tail.valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
            handle.seek(tail.valid_bytes)
        except BaseException:
            handle.close()
            raise
        return cls(path, tail.generation, handle, records=len(tail.updates))

    @classmethod
    def replay(cls, path: str | Path) -> WalTail:
        """Read the valid record prefix of ``path`` (read-only, no repair).

        Scans frame by frame; the first incomplete frame or CRC mismatch
        ends the replay — by construction an append is acknowledged only
        after its frame is fully written, so the valid prefix is exactly
        the acknowledged history.
        """
        path = Path(path)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            raise WalError(f"WAL not found: {path}") from None
        generation = _read_file_header(raw, path)
        updates: list[EdgeUpdate] = []
        offset = HEADER_BYTES
        while offset + RECORD_BYTES <= len(raw):
            (crc,) = _CRC_STRUCT.unpack_from(raw, offset)
            payload = raw[
                offset + _CRC_STRUCT.size : offset + RECORD_BYTES
            ]
            if crc != (zlib.crc32(payload) & 0xFFFFFFFF):
                break
            kind, source, target = _PAYLOAD_STRUCT.unpack(payload)
            if kind >= len(_KINDS):
                break
            updates.append(EdgeUpdate(_KINDS[kind], int(source), int(target)))
            offset += RECORD_BYTES
        return WalTail(
            generation=generation,
            updates=tuple(updates),
            valid_bytes=offset,
            torn_bytes=len(raw) - offset,
        )

    # ------------------------------------------------------------------ #
    # appending
    # ------------------------------------------------------------------ #

    @property
    def records(self) -> int:
        """Records durably appended through this handle (incl. pre-existing)."""
        return self._records

    def append(self, updates, fsync: bool = True) -> int:
        """Frame and append an update burst; returns the new record count.

        The burst is written as one contiguous byte string and (with
        ``fsync=True``, the default) forced to disk before returning —
        the write-ahead guarantee the serving layer acknowledges bursts
        on.  A crash mid-call leaves at most one torn frame, which replay
        drops; it can never corrupt earlier records.
        """
        if self._handle is None:
            raise WalError(f"{self.path}: log is closed")
        frames = b"".join(_pack_record(update) for update in updates)
        if not frames:
            return self._records
        self._handle.write(frames)
        self._handle.flush()
        if fsync:
            os.fsync(self._handle.fileno())
        self._records += len(frames) // RECORD_BYTES
        return self._records

    def close(self) -> None:
        """Close the file handle (idempotent; the log itself stays on disk)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._handle is None else "open"
        return (
            f"WriteAheadLog({str(self.path)!r}, generation={self.generation}, "
            f"records={self._records}, {state})"
        )
