"""Shared low-level utilities: RNG handling, validation, timing, sizing."""

from repro.utils.rng import as_generator, spawn_generator
from repro.utils.sizing import deep_sizeof, format_bytes
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = [
    "Timer",
    "as_generator",
    "check_fraction",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "deep_sizeof",
    "format_bytes",
    "spawn_generator",
]
