"""Random-number-generator plumbing.

Every randomized component in the library accepts a ``seed`` argument that may
be ``None`` (fresh OS entropy), an ``int``, or an existing
:class:`numpy.random.Generator`.  Routing all of them through
:func:`as_generator` keeps the whole library reproducible from a single seed
while still allowing callers to share one generator across components.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_generator(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (no copy), so state is
    shared with the caller; anything else is fed to ``numpy.random.default_rng``.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generator(rng: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Used when a component needs its own stream (e.g. one per trial batch)
    whose draws do not perturb the parent's sequence.
    """
    seed = rng.integers(0, 2**63 - 1, dtype=np.int64)
    return np.random.default_rng(int(seed))


def derive_stream(seed: int, key: int) -> np.random.Generator:
    """A fresh generator derived deterministically from ``(seed, key)``.

    Unlike :func:`spawn_generator` this consumes no parent state: equal
    ``(seed, key)`` pairs always produce identical streams, regardless of
    what was drawn before or between the calls.  Per-query-seeded engines
    (``ProbeSimConfig.query_seeded``) use one stream per ``(seed, query)``
    so a query's draws cannot depend on call order or batch grouping.
    """
    mask = (1 << 64) - 1  # SeedSequence entropy words must be non-negative
    entropy = np.random.SeedSequence([seed & mask, key & mask])
    return np.random.default_rng(entropy)
