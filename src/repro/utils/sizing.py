"""Memory accounting for index structures (Table 4's space column).

The paper reports index space overheads in GB.  Comparing Python RSS would be
dominated by interpreter overhead, so instead each index exposes its payload
structures and :func:`deep_sizeof` sums their recursive ``sys.getsizeof``,
treating numpy arrays as their buffer size (``nbytes``) — the closest analogue
of what a C++ implementation would allocate.
"""

from __future__ import annotations

import sys

import numpy as np


def deep_sizeof(obj: object, _seen: set[int] | None = None) -> int:
    """Recursive size of ``obj`` in bytes.

    Follows containers (dict / list / tuple / set / frozenset) and object
    ``__dict__`` / ``__slots__``; counts each distinct object once.  numpy
    arrays contribute ``nbytes`` (their data buffer) plus header size.
    """
    if _seen is None:
        _seen = set()
    oid = id(obj)
    if oid in _seen:
        return 0
    _seen.add(oid)

    if isinstance(obj, np.ndarray):
        # base arrays own their buffer; views do not.
        size = sys.getsizeof(obj)
        if obj.base is None:
            size += obj.nbytes
        return size

    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        size += sum(
            deep_sizeof(k, _seen) + deep_sizeof(v, _seen) for k, v in obj.items()
        )
    elif isinstance(obj, (list, tuple, set, frozenset)):
        size += sum(deep_sizeof(item, _seen) for item in obj)
    else:
        attrs = getattr(obj, "__dict__", None)
        if attrs is not None:
            size += deep_sizeof(attrs, _seen)
        slots = getattr(obj, "__slots__", ())
        for slot in slots:
            if hasattr(obj, slot):
                size += deep_sizeof(getattr(obj, slot), _seen)
    return size


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte count: ``format_bytes(2048) == '2.00 KB'``."""
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    units = ["B", "KB", "MB", "GB", "TB"]
    value = float(num_bytes)
    for unit in units:
        if value < 1024.0 or unit == units[-1]:
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")
