"""A tiny wall-clock timer used by the experiment runner.

The evaluation figures in the paper plot accuracy against *query time*, so the
runner needs consistent, low-overhead timing.  ``time.perf_counter`` is the
right clock for that; this wrapper just adds the context-manager and
accumulation ergonomics the runner wants.
"""

from __future__ import annotations

import time


class Timer:
    """Accumulating wall-clock timer.

    Can be used as a context manager (each ``with`` block adds to
    :attr:`elapsed`) or manually via :meth:`start` / :meth:`stop`.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.laps: list[float] = []
        self._started_at: float | None = None

    def start(self) -> "Timer":
        """Begin a lap (error if already running)."""
        if self._started_at is not None:
            raise RuntimeError("timer is already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the timer and return the duration of the lap just ended."""
        if self._started_at is None:
            raise RuntimeError("timer is not running")
        lap = time.perf_counter() - self._started_at
        self._started_at = None
        self.elapsed += lap
        self.laps.append(lap)
        return lap

    def reset(self) -> None:
        """Zero the accumulated time and lap history."""
        self.elapsed = 0.0
        self.laps = []
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    @property
    def mean_lap(self) -> float:
        """Mean duration over all completed laps (0.0 when no laps)."""
        if not self.laps:
            return 0.0
        return self.elapsed / len(self.laps)

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return f"Timer(elapsed={self.elapsed:.6f}s, laps={len(self.laps)}, {state})"
