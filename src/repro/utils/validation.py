"""Argument-validation helpers.

These raise :class:`repro.errors.ConfigurationError` (a ``ValueError``
subclass) with uniform messages, so every public entry point reports bad
parameters the same way.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError


def check_positive(name: str, value: float) -> float:
    """Validate that ``value`` is a finite number strictly greater than zero."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {type(value).__name__}")
    if not math.isfinite(value) or value <= 0:
        raise ConfigurationError(f"{name} must be a positive finite number, got {value!r}")
    return float(value)


def check_positive_int(name: str, value: int) -> int:
    """Validate that ``value`` is an integer strictly greater than zero."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` lies in the open interval (0, 1)."""
    value = check_positive(name, value)
    if value >= 1:
        raise ConfigurationError(f"{name} must lie in (0, 1), got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {type(value).__name__}")
    if not math.isfinite(value) or value < 0 or value > 1:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)
