"""Dynamic-workload subsystem: mixed query/update traffic at serving scale.

The paper's headline claim — index-free ProbeSim serves real-time queries on
*dynamic* graphs while index-based baselines pay maintenance — is a claim
about mixed traffic, not about queries or updates in isolation.  This
package reproduces it end to end:

:mod:`~repro.workloads.generator`
    Reproducible interleaved query/update traces — read/write ratio,
    Zipf-skewed query keys, insert/delete mix, batch arrival sizes.
:mod:`~repro.workloads.driver`
    Replays one trace against a :class:`~repro.api.service.SimRankService`
    per method, with a multi-worker query thread pool, and reports latency
    percentiles, sustained QPS, maintenance cost, and read staleness.
:mod:`~repro.workloads.stats`
    The latency histogram those reports are built from.

Entry points: ``repro workload`` on the CLI and
``benchmarks/bench_dynamic_workload.py`` in the harness.
"""

from repro.workloads.driver import MethodReport, WorkloadResult, run_workload
from repro.workloads.generator import (
    TraceBatch,
    WorkloadConfig,
    WorkloadTrace,
    generate_workload,
)
from repro.workloads.stats import LatencyHistogram

__all__ = [
    "LatencyHistogram",
    "MethodReport",
    "TraceBatch",
    "WorkloadConfig",
    "WorkloadResult",
    "WorkloadTrace",
    "generate_workload",
    "run_workload",
]
