"""Replay a workload trace against a :class:`~repro.api.service.SimRankService`.

This is the heavy-traffic half of the paper's dynamic-graph experiment: one
driver replays the *same* :class:`~repro.workloads.generator.WorkloadTrace`
against each compared method and reports what a serving operator would
measure — per-op latency percentiles, sustained QPS under interference from
the update stream, maintenance cost, and read staleness.

Execution model
---------------
Per method, the driver builds one service on a fresh copy of the graph and
mounts ``workers`` *replicas* of the method (``alias=f"{method}#w{i}"``,
each with a seed derived from the method seed), because estimators own
mutable RNG/scratch state and must be driven by one thread at a time.  The
trace is replayed batch by batch:

- a **query batch** is split round-robin by position across the replicas
  and executed on a thread pool (one task per replica; the batched engine's
  sparse matmuls release the GIL, so replicas overlap);
- an **update batch** is applied on the coordinator thread through
  :meth:`~repro.api.service.SimRankService.apply_update_stream` — a batch
  barrier separates updates from queries, which keeps replay deterministic.

Reproducibility
---------------
Replica assignment is positional (not load-based) and each replica consumes
its ops in trace order, so every replica's RNG stream is a pure function of
``(trace, method config, workers)``.  The driver folds each result's score
vector into a running digest in global op order; two runs with the same
inputs produce bit-identical digests (asserted by the test suite), while
wall-clock numbers of course vary.

Staleness
---------
With ``sync_every=1`` (the default) non-incremental estimators re-sync
after every update batch and reads are always fresh.  With
``sync_every=k > 1`` the service defers syncs (``auto_sync=False``) and the
driver flushes every ``k`` update batches — each query then records how
many applied-but-unsynced updates its answer may be missing.  Methods with
``capabilities().incremental_updates`` (TSF, the walk cache) are notified
per update and never go stale.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Sequence

import numpy as np

from repro.api.registry import get_entry
from repro.api.service import SimRankService
from repro.errors import EvaluationError
from repro.graph.digraph import DiGraph
from repro.utils.validation import check_positive_int
from repro.workloads.generator import WorkloadTrace
from repro.workloads.stats import LatencyHistogram

__all__ = ["MethodReport", "WorkloadResult", "run_workload"]


@dataclass
class MethodReport:
    """Everything measured for one method over one trace replay.

    All times are wall-clock seconds.  ``digest`` is the order-sensitive
    hash of every query's score vector — the bit-reproducibility handle.
    """

    method: str
    workers: int
    sync_every: int
    num_queries: int = 0
    num_updates: int = 0
    wall_seconds: float = 0.0
    maintenance_seconds: float = 0.0
    syncs: int = 0
    incremental_notifications: int = 0
    staleness_samples: list[int] = field(default_factory=list)
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    digest: str = ""

    @property
    def qps(self) -> float:
        """Sustained queries/second over the whole replay (updates included
        in the denominator — this is throughput *under interference*)."""
        return self.num_queries / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def maintenance_per_update(self) -> float:
        """Mean maintenance cost charged per applied update."""
        return (
            self.maintenance_seconds / self.num_updates if self.num_updates else 0.0
        )

    @property
    def staleness_mean(self) -> float:
        """Mean unsynced-updates-behind across all queries."""
        return float(np.mean(self.staleness_samples)) if self.staleness_samples else 0.0

    @property
    def staleness_max(self) -> int:
        """Worst unsynced-updates-behind any query observed."""
        return int(max(self.staleness_samples)) if self.staleness_samples else 0

    def as_row(self) -> dict[str, object]:
        """Flat dict row for table rendering (times in milliseconds)."""
        return {
            "method": self.method,
            "queries": self.num_queries,
            "updates": self.num_updates,
            "qps": self.qps,
            "p50_ms": self.latency.percentile(50) * 1e3,
            "p95_ms": self.latency.percentile(95) * 1e3,
            "p99_ms": self.latency.percentile(99) * 1e3,
            "maint_s": self.maintenance_seconds,
            "maint_per_update_ms": self.maintenance_per_update * 1e3,
            "stale_mean": self.staleness_mean,
        }

    def to_dict(self) -> dict[str, object]:
        """JSON-ready dict (full latency histogram included)."""
        return {
            "method": self.method,
            "workers": self.workers,
            "sync_every": self.sync_every,
            "num_queries": self.num_queries,
            "num_updates": self.num_updates,
            "wall_seconds": self.wall_seconds,
            "qps": self.qps,
            "latency": self.latency.to_dict(),
            "maintenance_seconds": self.maintenance_seconds,
            "maintenance_per_update_s": self.maintenance_per_update,
            "syncs": self.syncs,
            "incremental_notifications": self.incremental_notifications,
            "staleness_mean": self.staleness_mean,
            "staleness_max": self.staleness_max,
            "digest": self.digest,
        }


@dataclass
class WorkloadResult:
    """One driver run: the trace's identity plus a report per method."""

    trace_signature: str
    trace_config: dict[str, object]
    reports: list[MethodReport] = field(default_factory=list)

    def rows(self) -> list[dict[str, object]]:
        """Per-method table rows (for ``format_table``)."""
        return [report.as_row() for report in self.reports]

    def to_dict(self) -> dict[str, object]:
        """JSON-ready dict for :func:`repro.eval.reporting.write_json_report`."""
        return {
            "trace": {
                "signature": self.trace_signature,
                **self.trace_config,
            },
            "reports": [report.to_dict() for report in self.reports],
        }


def _derived_seed(config: dict, entry, worker: int) -> dict:
    """Per-replica config: offset the seed so replica RNG streams differ
    deterministically (replica ``i`` of any run draws the same stream)."""
    config = dict(config)
    if "seed" in entry.config_keys:
        base = config.get("seed", 0) or 0
        config["seed"] = int(base) + worker
    return config


def _replay_one(
    graph: DiGraph,
    trace: WorkloadTrace,
    method: str,
    config: dict,
    workers: int,
    sync_every: int,
) -> MethodReport:
    """Replay ``trace`` for one method; see the module docstring for the model."""
    entry = get_entry(method)
    service = SimRankService(graph.copy(), methods=(), auto_sync=sync_every == 1)
    aliases = []
    for worker in range(workers):
        alias = f"{method}#w{worker}"
        service.add_method(method, alias=alias, **_derived_seed(config, entry, worker))
        aliases.append(alias)
    incremental = service.capabilities(aliases[0]).incremental_updates

    report = MethodReport(method=method, workers=workers, sync_every=sync_every)
    digest = blake2b(digest_size=16)
    unsynced_updates = 0
    batches_since_sync = 0

    def run_share(alias: str, share: list[tuple[int, int]]):
        """One replica's slice of a query batch: (global op id, node) pairs.

        Runs on a pool thread; touches only its own replica (plus the
        service's lock-guarded counters).  Returns per-op records so the
        coordinator can merge them back in deterministic global order.
        """
        records = []
        for op_id, node in share:
            started = time.perf_counter()
            result = service.single_source(node, method=alias)
            elapsed = time.perf_counter() - started
            fingerprint = blake2b(
                np.ascontiguousarray(result.scores).tobytes(), digest_size=16
            ).digest()
            records.append((op_id, node, elapsed, fingerprint))
        return records

    wall_started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=workers) as pool:
        for batch in trace:
            if batch.kind == "update":
                service.apply_update_stream(batch.updates)
                report.num_updates += len(batch.updates)
                if sync_every > 1:
                    unsynced_updates += len(batch.updates)
                    batches_since_sync += 1
                    if batches_since_sync >= sync_every:
                        service.sync()
                        unsynced_updates = 0
                        batches_since_sync = 0
                continue
            ops = [(batch.offset + i, node) for i, node in enumerate(batch.queries)]
            shares = [ops[w::workers] for w in range(workers)]
            futures = [
                pool.submit(run_share, aliases[w], shares[w])
                for w in range(workers)
                if shares[w]
            ]
            merged = [record for future in futures for record in future.result()]
            merged.sort()  # deterministic global op order
            for op_id, node, elapsed, fingerprint in merged:
                digest.update(op_id.to_bytes(8, "little"))
                digest.update(node.to_bytes(8, "little"))
                digest.update(fingerprint)
                report.latency.record(elapsed)
                report.staleness_samples.append(0 if incremental else unsynced_updates)
            report.num_queries += len(ops)
    if sync_every > 1 and unsynced_updates:
        service.sync()  # flush the tail so the service ends consistent
    report.wall_seconds = time.perf_counter() - wall_started
    report.maintenance_seconds = service.stats.total_maintenance_seconds
    report.syncs = service.stats.syncs
    report.incremental_notifications = service.stats.incremental_notifications
    report.digest = digest.hexdigest()
    return report


def run_workload(
    graph: DiGraph,
    trace: WorkloadTrace,
    methods: Sequence[str],
    configs: dict[str, dict] | None = None,
    workers: int = 1,
    sync_every: int = 1,
) -> WorkloadResult:
    """Replay ``trace`` once per method and collect comparable reports.

    Every method sees an identical workload: the replay starts from a fresh
    copy of ``graph`` each time, and the trace (queries, updates, arrival
    order) is fixed up front by the generator.

    Parameters
    ----------
    graph:
        Starting graph (not modified; each replay copies it).
    trace:
        The workload to replay (from
        :func:`repro.workloads.generator.generate_workload`).
    methods:
        Registry names to compare (e.g. ``("probesim-batched", "tsf")``).
    configs:
        Optional per-method keyword configuration, ``{name: {key: value}}``.
    workers:
        Query-side thread-pool width; each worker drives its own estimator
        replica.  Must be positive.
    sync_every:
        Sync non-incremental estimators every ``sync_every`` update batches.
        ``1`` (default) syncs after every update batch (always-fresh reads);
        larger values trade staleness for maintenance cost.

    Returns
    -------
    WorkloadResult
        One :class:`MethodReport` per method, in ``methods`` order.

    Raises
    ------
    EvaluationError
        If ``methods`` is empty or a config references an unknown method.
    ConfigurationError
        From the registry, for unknown method names or bad config keys.
    """
    check_positive_int("workers", workers)
    check_positive_int("sync_every", sync_every)
    if not methods:
        raise EvaluationError("need at least one method to replay the workload")
    configs = configs or {}
    unknown = sorted(set(configs) - set(methods))
    if unknown:
        raise EvaluationError(f"configs given for methods not replayed: {unknown}")
    result = WorkloadResult(
        trace_signature=trace.signature(),
        trace_config=trace.config.as_dict(),
    )
    for method in methods:
        result.reports.append(
            _replay_one(
                graph, trace, method, configs.get(method, {}), workers, sync_every
            )
        )
    return result
