"""Replay a workload trace against a SimRank serving layer.

This is the heavy-traffic half of the paper's dynamic-graph experiment: one
driver replays the *same* :class:`~repro.workloads.generator.WorkloadTrace`
against each compared method and reports what a serving operator would
measure — per-op latency percentiles, sustained QPS under interference from
the update stream, maintenance cost, and read staleness.

Execution model
---------------
Two executors replay the trace batch by batch:

``executor="thread"``
    One :class:`~repro.api.service.SimRankService` per method, mounting
    ``workers`` estimator *replicas* (``alias=f"{method}#w{i}"``, seeds
    derived per replica).  Each query batch is deduplicated (duplicates
    share their batch-mate's answer, the services' batching rule) and the
    distinct queries split round-robin by position across the replicas on
    a thread pool.  Replicas overlap only where kernels release the GIL —
    this is the single-process ceiling.
``executor="process"``
    One :class:`~repro.parallel.pool.ParallelSimRankService` per method:
    the same positional split, but across worker *processes* answering
    against a shared-memory graph — throughput scales with cores.  Updates
    are maintained by graph-epoch rebuilds (no per-update incremental
    path), so ``staleness`` counts unsynced updates for every method.

Result caching
--------------
``cache_size > 0`` puts an update-aware LRU
(:class:`~repro.parallel.cache.ResultCache`) in front of the query path,
keyed ``(method, query, epoch)``.  The epoch advances whenever the serving
state absorbs updates — per update batch for incremental estimators and
under ``sync_every=1``, at sync flushes otherwise — so a cache hit is
always exactly as fresh as the replica would be.  Hit/miss/invalidation
counters land in each :class:`MethodReport`.

Reproducibility
---------------
Replica assignment is positional (not load-based) and each replica consumes
its ops in trace order, so every replica's RNG stream is a pure function of
``(trace, method config, workers)``.  The driver folds each result's score
vector into a running digest in global op order; two runs with the same
inputs produce bit-identical digests (asserted by the test suite), while
wall-clock numbers of course vary.  Cache hits reuse the digest fingerprint
of the answer they were served from, so caching keeps runs bit-reproducible
too (for fixed knobs); the two executors use different maintenance models,
so their digests agree only on update-free traces.

Staleness
---------
With ``sync_every=1`` (the default) non-incremental estimators re-sync
after every update batch and reads are always fresh.  With
``sync_every=k > 1`` the service defers syncs (``auto_sync=False``) and the
driver flushes every ``k`` update batches — each query then records how
many applied-but-unsynced updates its answer may be missing.  Methods with
``capabilities().incremental_updates`` (TSF, the walk cache) are notified
per update under the thread executor and never go stale.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Sequence

import numpy as np

from repro.api.registry import get_entry
from repro.api.service import SimRankService
from repro.errors import EvaluationError
from repro.graph.digraph import DiGraph
from repro.parallel.cache import ResultCache
from repro.parallel.pool import ParallelSimRankService, derive_replica_config
from repro.utils.validation import check_positive_int
from repro.workloads.generator import WorkloadTrace
from repro.workloads.stats import LatencyHistogram

__all__ = ["MethodReport", "WorkloadResult", "run_workload"]

#: executors the driver can replay on.
EXECUTORS = ("thread", "process")


@dataclass
class MethodReport:
    """Everything measured for one method over one trace replay.

    All times are wall-clock seconds.  ``digest`` is the order-sensitive
    hash of every query's score vector — the bit-reproducibility handle.
    ``cache`` carries the result-cache counters (empty when caching is off).
    """

    method: str
    workers: int
    sync_every: int
    executor: str = "thread"
    cache_size: int = 0
    num_queries: int = 0
    num_updates: int = 0
    wall_seconds: float = 0.0
    maintenance_seconds: float = 0.0
    syncs: int = 0
    incremental_notifications: int = 0
    worker_restarts: int = 0
    cache: dict[str, object] = field(default_factory=dict)
    staleness_samples: list[int] = field(default_factory=list)
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    digest: str = ""

    @property
    def qps(self) -> float:
        """Sustained queries/second over the whole replay (updates included
        in the denominator — this is throughput *under interference*)."""
        return self.num_queries / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def maintenance_per_update(self) -> float:
        """Mean maintenance cost charged per applied update."""
        return (
            self.maintenance_seconds / self.num_updates if self.num_updates else 0.0
        )

    @property
    def staleness_mean(self) -> float:
        """Mean unsynced-updates-behind across all queries."""
        return float(np.mean(self.staleness_samples)) if self.staleness_samples else 0.0

    @property
    def staleness_max(self) -> int:
        """Worst unsynced-updates-behind any query observed."""
        return int(max(self.staleness_samples)) if self.staleness_samples else 0

    def as_row(self) -> dict[str, object]:
        """Flat dict row for table rendering (times in milliseconds)."""
        row = {
            "method": self.method,
            "queries": self.num_queries,
            "updates": self.num_updates,
            "qps": self.qps,
            "p50_ms": self.latency.percentile(50) * 1e3,
            "p95_ms": self.latency.percentile(95) * 1e3,
            "p99_ms": self.latency.percentile(99) * 1e3,
            "maint_s": self.maintenance_seconds,
            "maint_per_update_ms": self.maintenance_per_update * 1e3,
            "stale_mean": self.staleness_mean,
        }
        if self.cache:
            row["cache_hit"] = self.cache.get("hit_rate", 0.0)
        return row

    def to_dict(self) -> dict[str, object]:
        """JSON-ready dict (full latency histogram included)."""
        return {
            "method": self.method,
            "workers": self.workers,
            "sync_every": self.sync_every,
            "executor": self.executor,
            "cache_size": self.cache_size,
            "num_queries": self.num_queries,
            "num_updates": self.num_updates,
            "wall_seconds": self.wall_seconds,
            "qps": self.qps,
            "latency": self.latency.to_dict(),
            "maintenance_seconds": self.maintenance_seconds,
            "maintenance_per_update_s": self.maintenance_per_update,
            "syncs": self.syncs,
            "incremental_notifications": self.incremental_notifications,
            "worker_restarts": self.worker_restarts,
            "cache": dict(self.cache),
            "staleness_mean": self.staleness_mean,
            "staleness_max": self.staleness_max,
            "digest": self.digest,
        }


@dataclass
class WorkloadResult:
    """One driver run: the trace's identity plus a report per method."""

    trace_signature: str
    trace_config: dict[str, object]
    reports: list[MethodReport] = field(default_factory=list)

    def rows(self) -> list[dict[str, object]]:
        """Per-method table rows (for ``format_table``)."""
        return [report.as_row() for report in self.reports]

    def to_dict(self) -> dict[str, object]:
        """JSON-ready dict for :func:`repro.eval.reporting.write_json_report`."""
        return {
            "trace": {
                "signature": self.trace_signature,
                **self.trace_config,
            },
            "reports": [report.to_dict() for report in self.reports],
        }


def _fingerprint(scores: np.ndarray) -> bytes:
    """16-byte digest fingerprint of one result's score vector."""
    return blake2b(
        np.ascontiguousarray(scores).tobytes(), digest_size=16
    ).digest()


def _replay_thread(
    graph: DiGraph,
    trace: WorkloadTrace,
    method: str,
    config: dict,
    workers: int,
    sync_every: int,
    cache_size: int,
) -> MethodReport:
    """Thread-executor replay; see the module docstring for the model."""
    entry = get_entry(method)
    service = SimRankService(graph.copy(), methods=(), auto_sync=sync_every == 1)
    aliases = []
    for worker in range(workers):
        alias = f"{method}#w{worker}"
        service.add_method(
            method, alias=alias, **derive_replica_config(entry, config, worker)
        )
        aliases.append(alias)
    incremental = service.capabilities(aliases[0]).incremental_updates

    report = MethodReport(
        method=method, workers=workers, sync_every=sync_every,
        executor="thread", cache_size=cache_size,
    )
    cache = ResultCache(cache_size)
    epoch = 0
    digest = blake2b(digest_size=16)
    unsynced_updates = 0
    batches_since_sync = 0

    def run_share(alias: str, share: list[tuple[int, int]]):
        """One replica's slice of a query batch: (global op id, node) pairs.

        Runs on a pool thread; touches only its own replica (plus the
        service's lock-guarded counters).  Returns per-op records so the
        coordinator can merge them back in deterministic global order.
        """
        records = []
        for op_id, node in share:
            started = time.perf_counter()
            result = service.single_source(node, method=alias)
            elapsed = time.perf_counter() - started
            records.append((op_id, node, elapsed, _fingerprint(result.scores)))
        return records

    wall_started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=workers) as pool:
        for batch in trace:
            if batch.kind == "update":
                service.apply_update_stream(batch.updates)
                report.num_updates += len(batch.updates)
                if incremental or sync_every == 1:
                    epoch += 1  # replicas absorbed the batch: new cache epoch
                if sync_every > 1:
                    unsynced_updates += len(batch.updates)
                    batches_since_sync += 1
                    if batches_since_sync >= sync_every:
                        service.sync()
                        if not incremental:
                            epoch += 1
                        unsynced_updates = 0
                        batches_since_sync = 0
                cache.invalidate_older(epoch)
                continue
            # cache probe and batch dedup happen on the coordinator,
            # *before* the split — the same discipline as both services'
            # single_source_many — so replica RNG streams (and the digest)
            # stay a pure function of the knobs: hot hits never reach a
            # replica, and duplicate queries share one computation.
            hit_records = []
            unique_ops = []
            dup_ops = []
            dispatched: set[int] = set()
            for position, node in enumerate(batch.queries):
                op_id = batch.offset + position
                started = time.perf_counter()
                fingerprint = cache.get(method, node, epoch)
                if fingerprint is not None:
                    elapsed = time.perf_counter() - started
                    hit_records.append((op_id, node, elapsed, fingerprint))
                elif node in dispatched:
                    dup_ops.append((op_id, node))
                else:
                    dispatched.add(node)
                    unique_ops.append((op_id, node))
            shares = [unique_ops[w::workers] for w in range(workers)]
            futures = [
                pool.submit(run_share, aliases[w], shares[w])
                for w in range(workers)
                if shares[w]
            ]
            merged = [record for future in futures for record in future.result()]
            by_node = {}
            for op_id, node, elapsed, fingerprint in merged:
                by_node[node] = (elapsed, fingerprint)
                cache.put(method, node, epoch, fingerprint)
            # a duplicate waits on its batch-mate's computation: same answer,
            # same latency, no replica work
            merged += [(op, node) + by_node[node] for op, node in dup_ops]
            merged += hit_records
            merged.sort()  # deterministic global op order
            for op_id, node, elapsed, fingerprint in merged:
                digest.update(op_id.to_bytes(8, "little"))
                digest.update(node.to_bytes(8, "little"))
                digest.update(fingerprint)
                report.latency.record(elapsed)
                report.staleness_samples.append(0 if incremental else unsynced_updates)
            report.num_queries += len(merged)
    if sync_every > 1 and unsynced_updates:
        service.sync()  # flush the tail so the service ends consistent
    report.wall_seconds = time.perf_counter() - wall_started
    report.maintenance_seconds = service.stats.total_maintenance_seconds
    report.syncs = service.stats.syncs
    report.incremental_notifications = service.stats.incremental_notifications
    if cache.enabled:
        report.cache = cache.stats.as_dict()
    report.digest = digest.hexdigest()
    return report


def _replay_process(
    graph: DiGraph,
    trace: WorkloadTrace,
    method: str,
    config: dict,
    workers: int,
    sync_every: int,
    cache_size: int,
) -> MethodReport:
    """Process-executor replay on a :class:`ParallelSimRankService`.

    The service owns the positional split, the shared-memory epochs, and
    the update-aware cache; the driver contributes the sync cadence and the
    deterministic digest.  Per-op latency is the batch mean (results cross
    a process boundary, so op timings are not individually observable from
    the coordinator).
    """
    report = MethodReport(
        method=method, workers=workers, sync_every=sync_every,
        executor="process", cache_size=cache_size,
    )
    digest = blake2b(digest_size=16)
    unsynced_updates = 0
    batches_since_sync = 0

    service = ParallelSimRankService(
        graph.copy(),
        methods=(method,),
        configs={method: config},
        workers=workers,
        cache_size=cache_size,
        auto_sync=sync_every == 1,
        executor="process",
    )
    try:
        wall_started = time.perf_counter()
        for batch in trace:
            if batch.kind == "update":
                service.apply_update_stream(batch.updates)
                report.num_updates += len(batch.updates)
                if sync_every > 1:
                    unsynced_updates += len(batch.updates)
                    batches_since_sync += 1
                    if batches_since_sync >= sync_every:
                        service.sync()
                        unsynced_updates = 0
                        batches_since_sync = 0
                continue
            started = time.perf_counter()
            results = service.single_source_many(batch.queries)
            batch_seconds = time.perf_counter() - started
            per_op = batch_seconds / max(len(results), 1)
            for position, result in enumerate(results):
                op_id = batch.offset + position
                digest.update(op_id.to_bytes(8, "little"))
                digest.update(int(result.query).to_bytes(8, "little"))
                digest.update(_fingerprint(result.scores))
                report.latency.record(per_op)
                report.staleness_samples.append(unsynced_updates)
            report.num_queries += len(results)
        if sync_every > 1 and unsynced_updates:
            service.sync()
        report.wall_seconds = time.perf_counter() - wall_started
        report.maintenance_seconds = service.stats.total_maintenance_seconds
        report.syncs = service.stats.syncs
        report.incremental_notifications = 0
        report.worker_restarts = service.stats.worker_restarts
        if service.cache.enabled:
            report.cache = service.cache.stats.as_dict()
    finally:
        service.close()
    report.digest = digest.hexdigest()
    return report


def run_workload(
    graph: DiGraph,
    trace: WorkloadTrace,
    methods: Sequence[str],
    configs: dict[str, dict] | None = None,
    workers: int = 1,
    sync_every: int = 1,
    executor: str = "thread",
    cache_size: int = 0,
) -> WorkloadResult:
    """Replay ``trace`` once per method and collect comparable reports.

    Every method sees an identical workload: the replay starts from a fresh
    copy of ``graph`` each time, and the trace (queries, updates, arrival
    order) is fixed up front by the generator.

    Parameters
    ----------
    graph:
        Starting graph (not modified; each replay copies it).
    trace:
        The workload to replay (from
        :func:`repro.workloads.generator.generate_workload`).
    methods:
        Registry names to compare (e.g. ``("probesim-batched", "tsf")``).
    configs:
        Optional per-method keyword configuration, ``{name: {key: value}}``.
    workers:
        Query-side pool width; each worker drives its own estimator
        replica.  Must be positive.
    sync_every:
        Sync non-incremental estimators every ``sync_every`` update batches.
        ``1`` (default) syncs after every update batch (always-fresh reads);
        larger values trade staleness for maintenance cost.
    executor:
        ``"thread"`` (estimator replicas on a thread pool — the GIL-bound
        single-process path) or ``"process"`` (the shared-memory
        multiprocess service; throughput scales with cores).
    cache_size:
        Capacity of the update-aware single-source result cache in front of
        the query path; ``0`` (default) disables caching.

    Returns
    -------
    WorkloadResult
        One :class:`MethodReport` per method, in ``methods`` order.

    Raises
    ------
    EvaluationError
        If ``methods`` is empty, a config references an unknown method, or
        ``executor`` is unknown.
    ConfigurationError
        From the registry, for unknown method names or bad config keys.
    """
    check_positive_int("workers", workers)
    check_positive_int("sync_every", sync_every)
    if executor not in EXECUTORS:
        raise EvaluationError(
            f"executor must be one of {EXECUTORS}, got {executor!r}"
        )
    if cache_size < 0:
        raise EvaluationError(f"cache_size must be >= 0, got {cache_size}")
    if not methods:
        raise EvaluationError("need at least one method to replay the workload")
    configs = configs or {}
    unknown = sorted(set(configs) - set(methods))
    if unknown:
        raise EvaluationError(f"configs given for methods not replayed: {unknown}")
    replay = _replay_thread if executor == "thread" else _replay_process
    result = WorkloadResult(
        trace_signature=trace.signature(),
        trace_config=trace.config.as_dict(),
    )
    for method in methods:
        result.reports.append(
            replay(
                graph, trace, method, configs.get(method, {}), workers,
                sync_every, cache_size,
            )
        )
    return result
