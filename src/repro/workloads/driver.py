"""Replay a workload trace against a SimRank serving layer.

This is the heavy-traffic half of the paper's dynamic-graph experiment: one
driver replays the *same* :class:`~repro.workloads.generator.WorkloadTrace`
against each compared method and reports what a serving operator would
measure — per-op latency percentiles, sustained QPS under interference from
the update stream, maintenance cost, and read staleness.

Execution model
---------------
Two executors replay the trace batch by batch:

``executor="thread"``
    One :class:`~repro.api.service.SimRankService` per method, mounting
    ``workers`` estimator *replicas* (``alias=f"{method}#w{i}"``, seeds
    derived per replica).  Each query batch is deduplicated (duplicates
    share their batch-mate's answer, the services' batching rule) and the
    distinct queries split round-robin by position across the replicas on
    a thread pool.  Replicas overlap only where kernels release the GIL —
    this is the single-process ceiling.
``executor="process"``
    One :class:`~repro.parallel.pool.ParallelSimRankService` per method:
    the same positional split, but across worker *processes* answering
    against a shared-memory graph — throughput scales with cores.  The
    ``maintenance`` knob picks the update path: ``"rebuild"`` publishes a
    graph epoch per sync (every replica rebuilt, O(m)), ``"delta"`` ships
    the edge deltas through the shared log and replicas absorb them in
    place (O(Δ); needs ``capabilities().incremental_updates``), ``"auto"``
    (default) chooses delta exactly when the method supports it.
``executor="sequential"``
    The parallel service's in-process oracle: the identical dispatch,
    maintenance, and caching schedule with no worker processes.  Its
    digests are the bit-exactness reference the process executor is held
    to — including under updates, on both maintenance paths.

With ``shards=P`` the process/sequential replay targets a
:class:`~repro.parallel.sharded.ShardedSimRankService` instead — ``P``
per-shard worker groups of ``workers`` each behind one router — and the
same sequential oracle pins the sharded process digests per ``P``.

Result caching
--------------
``cache_size > 0`` puts an update-aware LRU
(:class:`~repro.parallel.cache.ResultCache`) in front of the query path,
keyed ``(method, query, epoch)``.  For bulk-synced estimators the epoch
advances whenever the serving state absorbs updates and the whole cache
turns over; for incremental estimators (and the process executor's delta
path) the epoch stands still and only the entries in the updates' touched
neighborhood are invalidated
(:meth:`~repro.parallel.cache.ResultCache.invalidate_nodes`) — hot Zipf
keys stay warm across small updates.  Epoch turnover keeps hits exactly as
fresh as a recompute; neighborhood invalidation deliberately trades a
geometrically decaying residual staleness outside the 1-hop set for that
warmth (see :func:`repro.graph.dynamic.touched_neighborhood`).
Hit/miss/invalidation counters land in each :class:`MethodReport` via one
locked snapshot.

Reproducibility
---------------
Replica assignment is positional (not load-based) and each replica consumes
its ops in trace order, so every replica's RNG stream is a pure function of
``(trace, method config, workers)``.  The driver folds each result's score
vector into a running digest in global op order; two runs with the same
inputs produce bit-identical digests (asserted by the test suite), while
wall-clock numbers of course vary.  Cache hits reuse the digest fingerprint
of the answer they were served from, so caching keeps runs bit-reproducible
too (for fixed knobs).  Every replay — thread replicas included — starts
from the *canonical* (CSR-ordered) form of the graph, the order worker
processes reconstruct from shared memory, so adjacency-order-sensitive
samplers draw identical streams everywhere: thread and process digests are
bit-identical on update-free traces, and stay bit-identical under updates
for incremental methods replayed through the delta path (asserted by the
test suite).  Under ``maintenance="rebuild"`` the process executor restarts
replica RNG at every epoch, so there (and only there) executor digests
diverge on update traces.

Staleness
---------
With ``sync_every=1`` (the default) non-incremental estimators re-sync
after every update batch and reads are always fresh.  With
``sync_every=k > 1`` the service defers syncs (``auto_sync=False``) and the
driver flushes every ``k`` update batches — each query then records how
many applied-but-unsynced updates its answer may be missing.  Methods with
``capabilities().incremental_updates`` (TSF, the walk cache) are notified
per update under the thread executor and never go stale.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Sequence

import numpy as np

from repro.api.registry import get_entry
from repro.api.service import SimRankService
from repro.errors import EvaluationError
from repro.eval.metrics_export import flatten_metrics
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.dynamic import touched_neighborhood
from repro.parallel.cache import ResultCache
from repro.parallel.partition import PARTITION_STRATEGIES
from repro.parallel.pool import (
    MAINTENANCE_MODES,
    ParallelSimRankService,
    derive_replica_config,
)
from repro.parallel.sharded import ShardedSimRankService
from repro.utils.validation import check_positive_int
from repro.workloads.generator import WorkloadTrace
from repro.workloads.stats import LatencyHistogram

__all__ = ["MethodReport", "WorkloadResult", "run_workload"]

#: executors the driver can replay on ("sequential" is the process
#: service's in-process oracle — same schedule, no worker processes).
EXECUTORS = ("thread", "process", "sequential")


@dataclass
class MethodReport:
    """Everything measured for one method over one trace replay.

    All times are wall-clock seconds.  ``digest`` is the order-sensitive
    hash of every query's score vector — the bit-reproducibility handle.
    ``cache`` carries the result-cache counters (empty when caching is off).
    """

    method: str
    workers: int
    sync_every: int
    executor: str = "thread"
    cache_size: int = 0
    #: shard count of the sharded router (0 = unsharded service)
    shards: int = 0
    #: partition strategy behind ``shards`` ("" when unsharded)
    partition: str = ""
    #: resolved maintenance path: "delta" (updates absorbed in place) or
    #: "rebuild" (full re-sync / epoch republish per update burst)
    maintenance: str = "rebuild"
    num_queries: int = 0
    num_updates: int = 0
    wall_seconds: float = 0.0
    maintenance_seconds: float = 0.0
    syncs: int = 0
    delta_syncs: int = 0
    epochs: int = 0
    incremental_notifications: int = 0
    worker_restarts: int = 0
    cache: dict[str, object] = field(default_factory=dict)
    staleness_samples: list[int] = field(default_factory=list)
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    digest: str = ""

    @property
    def qps(self) -> float:
        """Sustained queries/second over the whole replay (updates included
        in the denominator — this is throughput *under interference*)."""
        return self.num_queries / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def maintenance_per_update(self) -> float:
        """Mean maintenance cost charged per applied update."""
        return (
            self.maintenance_seconds / self.num_updates if self.num_updates else 0.0
        )

    @property
    def staleness_mean(self) -> float:
        """Mean unsynced-updates-behind across all queries."""
        return float(np.mean(self.staleness_samples)) if self.staleness_samples else 0.0

    @property
    def staleness_max(self) -> int:
        """Worst unsynced-updates-behind any query observed."""
        return int(max(self.staleness_samples)) if self.staleness_samples else 0

    def as_row(self) -> dict[str, object]:
        """Flat dict row for table rendering (times in milliseconds)."""
        row = {
            "method": self.method,
            "queries": self.num_queries,
            "updates": self.num_updates,
            "qps": self.qps,
            "p50_ms": self.latency.percentile(50) * 1e3,
            "p95_ms": self.latency.percentile(95) * 1e3,
            "p99_ms": self.latency.percentile(99) * 1e3,
            "maint_s": self.maintenance_seconds,
            "maint_per_update_ms": self.maintenance_per_update * 1e3,
            "stale_mean": self.staleness_mean,
        }
        if self.cache:
            row["cache_hit"] = self.cache.get("hit_rate", 0.0)
        return row

    def metrics(self) -> dict[str, float]:
        """Flat Prometheus-style counters for this replay.

        Shares naming with the HTTP tier's ``/metrics`` endpoint (both run
        through :mod:`repro.eval.metrics_export`), so offline reports and
        live scrapes are comparable metric-for-metric.
        """
        return flatten_metrics(
            {
                "queries": self.num_queries,
                "updates": self.num_updates,
                "qps": self.qps,
                "p50_ms": self.latency.percentile(50) * 1e3,
                "p95_ms": self.latency.percentile(95) * 1e3,
                "p99_ms": self.latency.percentile(99) * 1e3,
                "maintenance_s": self.maintenance_seconds,
                "syncs": self.syncs,
                "delta_syncs": self.delta_syncs,
                "epochs": self.epochs,
                "worker_restarts": self.worker_restarts,
                "staleness_mean": self.staleness_mean,
            },
            cache=self.cache,
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-ready dict (full latency histogram included)."""
        return {
            "method": self.method,
            "workers": self.workers,
            "sync_every": self.sync_every,
            "executor": self.executor,
            "cache_size": self.cache_size,
            "shards": self.shards,
            "partition": self.partition,
            "maintenance": self.maintenance,
            "num_queries": self.num_queries,
            "num_updates": self.num_updates,
            "wall_seconds": self.wall_seconds,
            "qps": self.qps,
            "latency": self.latency.to_dict(),
            "maintenance_seconds": self.maintenance_seconds,
            "maintenance_per_update_s": self.maintenance_per_update,
            "syncs": self.syncs,
            "delta_syncs": self.delta_syncs,
            "epochs": self.epochs,
            "incremental_notifications": self.incremental_notifications,
            "worker_restarts": self.worker_restarts,
            "cache": dict(self.cache),
            "metrics": self.metrics(),
            "staleness_mean": self.staleness_mean,
            "staleness_max": self.staleness_max,
            "digest": self.digest,
        }


@dataclass
class WorkloadResult:
    """One driver run: the trace's identity plus a report per method."""

    trace_signature: str
    trace_config: dict[str, object]
    reports: list[MethodReport] = field(default_factory=list)

    def rows(self) -> list[dict[str, object]]:
        """Per-method table rows (for ``format_table``)."""
        return [report.as_row() for report in self.reports]

    def to_dict(self) -> dict[str, object]:
        """JSON-ready dict for :func:`repro.eval.reporting.write_json_report`."""
        return {
            "trace": {
                "signature": self.trace_signature,
                **self.trace_config,
            },
            "reports": [report.to_dict() for report in self.reports],
        }


def _fingerprint(scores: np.ndarray) -> bytes:
    """16-byte digest fingerprint of one result's score vector."""
    return blake2b(
        np.ascontiguousarray(scores).tobytes(), digest_size=16
    ).digest()


def _replay_thread(
    graph: DiGraph,
    trace: WorkloadTrace,
    method: str,
    config: dict,
    workers: int,
    sync_every: int,
    cache_size: int,
    maintenance: str,
) -> MethodReport:
    """Thread-executor replay; see the module docstring for the model.

    ``maintenance`` is advisory here — in-process replicas are always
    maintained by capability (incremental notification when the method
    supports it, bulk sync otherwise), which is exactly the parallel
    service's ``"auto"`` resolution.
    """
    del maintenance
    entry = get_entry(method)
    service = SimRankService(graph.copy(), methods=(), auto_sync=sync_every == 1)
    aliases = []
    for worker in range(workers):
        alias = f"{method}#w{worker}"
        service.add_method(
            method, alias=alias, **derive_replica_config(entry, config, worker)
        )
        aliases.append(alias)
    incremental = service.capabilities(aliases[0]).incremental_updates

    report = MethodReport(
        method=method, workers=workers, sync_every=sync_every,
        executor="thread", cache_size=cache_size,
        maintenance="delta" if incremental else "rebuild",
    )
    cache = ResultCache(cache_size)
    epoch = 0
    digest = blake2b(digest_size=16)
    unsynced_updates = 0
    batches_since_sync = 0

    def run_share(alias: str, share: list[tuple[int, int]]):
        """One replica's slice of a query batch: (global op id, node) pairs.

        Runs on a pool thread; touches only its own replica (plus the
        service's lock-guarded counters).  Returns per-op records so the
        coordinator can merge them back in deterministic global order.
        """
        records = []
        for op_id, node in share:
            started = time.perf_counter()
            result = service.single_source(node, method=alias)
            elapsed = time.perf_counter() - started
            records.append((op_id, node, elapsed, _fingerprint(result.scores)))
        return records

    wall_started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=workers) as pool:
        for batch in trace:
            if batch.kind == "update":
                # touched set computed against the pre-batch graph: a burst
                # only toggles edges between its own endpoints (all of which
                # are in the set), so pre-batch and per-update reads yield
                # the same union — see touched_neighborhood
                touched = (
                    touched_neighborhood(service.graph, batch.updates)
                    if incremental else None
                )
                service.apply_update_stream(batch.updates)
                report.num_updates += len(batch.updates)
                if incremental:
                    # replicas absorbed the batch in place (delta
                    # semantics): the epoch stands still and only the
                    # touched neighborhood turns over — hot keys stay warm
                    cache.invalidate_nodes(touched)
                elif sync_every == 1:
                    epoch += 1  # replicas re-synced: new cache epoch
                    cache.invalidate_older(epoch)
                else:
                    unsynced_updates += len(batch.updates)
                    batches_since_sync += 1
                    if batches_since_sync >= sync_every:
                        service.sync()
                        epoch += 1
                        cache.invalidate_older(epoch)
                        unsynced_updates = 0
                        batches_since_sync = 0
                continue
            # cache probe and batch dedup happen on the coordinator,
            # *before* the split — the same discipline as both services'
            # single_source_many — so replica RNG streams (and the digest)
            # stay a pure function of the knobs: hot hits never reach a
            # replica, and duplicate queries share one computation.
            hit_records = []
            unique_ops = []
            dup_ops = []
            dispatched: set[int] = set()
            for position, node in enumerate(batch.queries):
                op_id = batch.offset + position
                started = time.perf_counter()
                fingerprint = cache.get(method, node, epoch)
                if fingerprint is not None:
                    elapsed = time.perf_counter() - started
                    hit_records.append((op_id, node, elapsed, fingerprint))
                elif node in dispatched:
                    dup_ops.append((op_id, node))
                else:
                    dispatched.add(node)
                    unique_ops.append((op_id, node))
            shares = [unique_ops[w::workers] for w in range(workers)]
            futures = [
                pool.submit(run_share, aliases[w], shares[w])
                for w in range(workers)
                if shares[w]
            ]
            merged = [record for future in futures for record in future.result()]
            by_node = {}
            for op_id, node, elapsed, fingerprint in merged:
                by_node[node] = (elapsed, fingerprint)
                cache.put(method, node, epoch, fingerprint)
            # a duplicate waits on its batch-mate's computation: same answer,
            # same latency, no replica work
            merged += [(op, node) + by_node[node] for op, node in dup_ops]
            merged += hit_records
            merged.sort()  # deterministic global op order
            for op_id, node, elapsed, fingerprint in merged:
                digest.update(op_id.to_bytes(8, "little"))
                digest.update(node.to_bytes(8, "little"))
                digest.update(fingerprint)
                report.latency.record(elapsed)
                report.staleness_samples.append(0 if incremental else unsynced_updates)
            report.num_queries += len(merged)
    if sync_every > 1 and unsynced_updates:
        service.sync()  # flush the tail so the service ends consistent
    report.wall_seconds = time.perf_counter() - wall_started
    report.maintenance_seconds = service.stats.total_maintenance_seconds
    report.syncs = service.stats.syncs
    report.incremental_notifications = service.stats.incremental_notifications
    if cache.enabled:
        report.cache = cache.snapshot()
    report.digest = digest.hexdigest()
    return report


def _replay_process(
    graph: DiGraph | None,
    trace: WorkloadTrace,
    method: str,
    config: dict,
    workers: int,
    sync_every: int,
    cache_size: int,
    maintenance: str,
    executor: str = "process",
    shards: int | None = None,
    partition: str = "hash",
    snapshot=None,
) -> MethodReport:
    """Process-executor replay on a :class:`ParallelSimRankService`.

    The service owns the positional split, the shared-memory epochs or
    delta log (per ``maintenance``), and the update-aware cache; the driver
    contributes the sync cadence and the deterministic digest.  Per-op
    latency is the batch mean (results cross a process boundary, so op
    timings are not individually observable from the coordinator).
    ``executor="sequential"`` replays the identical schedule in-process —
    the bit-exactness oracle.  With ``shards`` set the replay targets a
    :class:`ShardedSimRankService` (``workers`` per shard) instead.  With
    ``snapshot`` set the services ``mmap``-attach the persistent snapshot
    (file, or :func:`~repro.parallel.sharded.write_shard_snapshots`
    directory when sharded) instead of copying ``graph``.
    """
    report = MethodReport(
        method=method, workers=workers, sync_every=sync_every,
        executor=executor, cache_size=cache_size,
        shards=shards or 0, partition=partition if shards else "",
    )
    digest = blake2b(digest_size=16)
    unsynced_updates = 0
    batches_since_sync = 0

    source = graph.copy() if graph is not None else None
    if shards is None:
        service = ParallelSimRankService(
            source,
            methods=(method,),
            configs={method: config},
            workers=workers,
            cache_size=cache_size,
            auto_sync=sync_every == 1,
            maintenance=maintenance,
            executor=executor,
            snapshot=snapshot,
        )
    else:
        service = ShardedSimRankService(
            source,
            methods=(method,),
            configs={method: config},
            shards=shards,
            partition=partition,
            workers=workers,
            cache_size=cache_size,
            auto_sync=sync_every == 1,
            maintenance=maintenance,
            executor=executor,
            snapshot=snapshot,
        )
    report.maintenance = service.maintenance
    with service:  # guarantees worker/shared-memory teardown
        wall_started = time.perf_counter()
        for batch in trace:
            if batch.kind == "update":
                service.apply_update_stream(batch.updates)
                report.num_updates += len(batch.updates)
                if sync_every > 1:
                    unsynced_updates += len(batch.updates)
                    batches_since_sync += 1
                    if batches_since_sync >= sync_every:
                        service.sync()
                        unsynced_updates = 0
                        batches_since_sync = 0
                continue
            started = time.perf_counter()
            results = service.single_source_many(batch.queries)
            batch_seconds = time.perf_counter() - started
            per_op = batch_seconds / max(len(results), 1)
            for position, result in enumerate(results):
                op_id = batch.offset + position
                digest.update(op_id.to_bytes(8, "little"))
                digest.update(int(result.query).to_bytes(8, "little"))
                digest.update(_fingerprint(result.scores))
                report.latency.record(per_op)
                report.staleness_samples.append(unsynced_updates)
            report.num_queries += len(results)
        if sync_every > 1 and unsynced_updates:
            service.sync()
        report.wall_seconds = time.perf_counter() - wall_started
        report.maintenance_seconds = service.stats.total_maintenance_seconds
        report.syncs = service.stats.syncs
        report.delta_syncs = service.stats.delta_syncs
        report.epochs = service.stats.epochs
        report.incremental_notifications = (
            service.stats.incremental_notifications
        )
        report.worker_restarts = service.stats.worker_restarts
        if service.cache.enabled:
            report.cache = service.cache.snapshot()
    report.digest = digest.hexdigest()
    return report


def run_workload(
    graph: DiGraph | None,
    trace: WorkloadTrace,
    methods: Sequence[str],
    configs: dict[str, dict] | None = None,
    workers: int = 1,
    sync_every: int = 1,
    executor: str = "thread",
    cache_size: int = 0,
    maintenance: str = "auto",
    shards: int | None = None,
    partition: str = "hash",
    snapshot=None,
) -> WorkloadResult:
    """Replay ``trace`` once per method and collect comparable reports.

    Every method sees an identical workload: the replay starts from a fresh
    copy of ``graph`` each time, and the trace (queries, updates, arrival
    order) is fixed up front by the generator.

    Parameters
    ----------
    graph:
        Starting graph (not modified; each replay copies it).
    trace:
        The workload to replay (from
        :func:`repro.workloads.generator.generate_workload`).
    methods:
        Registry names to compare (e.g. ``("probesim-batched", "tsf")``).
    configs:
        Optional per-method keyword configuration, ``{name: {key: value}}``.
    workers:
        Query-side pool width; each worker drives its own estimator
        replica.  Must be positive.
    sync_every:
        Sync non-incremental estimators every ``sync_every`` update batches.
        ``1`` (default) syncs after every update batch (always-fresh reads);
        larger values trade staleness for maintenance cost.
    executor:
        ``"thread"`` (estimator replicas on a thread pool — the GIL-bound
        single-process path), ``"process"`` (the shared-memory multiprocess
        service; throughput scales with cores), or ``"sequential"`` (the
        process service's in-process oracle — identical schedule, useful
        for bit-exactness baselines).
    cache_size:
        Capacity of the update-aware single-source result cache in front of
        the query path; ``0`` (default) disables caching.
    maintenance:
        Update-maintenance path for the process/sequential executors:
        ``"rebuild"`` (epoch republish per update burst), ``"delta"``
        (in-place delta propagation; requires incremental-capable methods),
        or ``"auto"`` (default — delta exactly when the method supports
        it).  The thread executor always maintains by capability (its
        ``"auto"``); the knob is validated but advisory there.
    shards:
        ``None`` (default) replays on the unsharded services.  A positive
        shard count replays on a
        :class:`~repro.parallel.sharded.ShardedSimRankService` — one
        worker group of ``workers`` per shard — and requires the process
        or sequential executor (the shard layer has no thread path).
    partition:
        Partition strategy for ``shards`` (``"hash"`` or ``"degree"``).
    snapshot:
        Replay against a persistent mmap-attached snapshot instead of
        ``graph`` (which must then be ``None``): a
        :func:`repro.storage.write_snapshot` / ``repro ingest`` file
        unsharded, or a :func:`~repro.parallel.sharded.
        write_shard_snapshots` directory with ``shards``.  The mapped tier
        is read-only, so the trace must contain no updates, and it has no
        thread path.

    Returns
    -------
    WorkloadResult
        One :class:`MethodReport` per method, in ``methods`` order.

    Raises
    ------
    EvaluationError
        If ``methods`` is empty, a config references an unknown method, or
        ``executor`` is unknown.
    ConfigurationError
        From the registry, for unknown method names or bad config keys.
    """
    check_positive_int("workers", workers)
    check_positive_int("sync_every", sync_every)
    if executor not in EXECUTORS:
        raise EvaluationError(
            f"executor must be one of {EXECUTORS}, got {executor!r}"
        )
    if maintenance not in MAINTENANCE_MODES:
        raise EvaluationError(
            f"maintenance must be one of {MAINTENANCE_MODES}, "
            f"got {maintenance!r}"
        )
    if cache_size < 0:
        raise EvaluationError(f"cache_size must be >= 0, got {cache_size}")
    if shards is not None:
        check_positive_int("shards", shards)
        if executor == "thread":
            raise EvaluationError(
                "shards require the process or sequential executor; the "
                "thread executor has no shard layer"
            )
        if partition not in PARTITION_STRATEGIES:
            raise EvaluationError(
                f"partition must be one of {PARTITION_STRATEGIES}, "
                f"got {partition!r}"
            )
    if snapshot is not None:
        if graph is not None:
            raise EvaluationError(
                "pass either graph or snapshot=, not both — the snapshot is "
                "the graph source"
            )
        if executor == "thread":
            raise EvaluationError(
                "snapshot replay needs the process or sequential executor; "
                "the thread executor has no mmap path"
            )
        if trace.num_updates:
            raise EvaluationError(
                "snapshot replay is read-only: the trace must contain no "
                f"updates, got {trace.num_updates}"
            )
    elif graph is None:
        raise EvaluationError("need a graph (or snapshot=) to replay against")
    if not methods:
        raise EvaluationError("need at least one method to replay the workload")
    configs = configs or {}
    unknown = sorted(set(configs) - set(methods))
    if unknown:
        raise EvaluationError(f"configs given for methods not replayed: {unknown}")
    # every replay starts from the canonical (CSR-ordered) form of the
    # graph: delta-mode worker processes reconstruct their mutable mirrors
    # from the shared CSR arrays in exactly this order, so starting thread
    # replicas and rebuild-mode snapshots from it too is what lets
    # adjacency-order-sensitive samplers (TSF draws neighbors by list
    # position) agree bit-for-bit across every executor.  The round-trip
    # is a fixed point, so re-canonicalising downstream changes nothing.
    # (Snapshot replays skip this: the snapshot payload already *is* the
    # canonical CSR byte order, attached without materialisation.)
    if graph is not None:
        graph = CSRGraph.from_digraph(graph).to_digraph()
    result = WorkloadResult(
        trace_signature=trace.signature(),
        trace_config=trace.config.as_dict(),
    )
    for method in methods:
        if executor == "thread":
            report = _replay_thread(
                graph, trace, method, configs.get(method, {}), workers,
                sync_every, cache_size, maintenance,
            )
        else:
            report = _replay_process(
                graph, trace, method, configs.get(method, {}), workers,
                sync_every, cache_size, maintenance, executor=executor,
                shards=shards, partition=partition, snapshot=snapshot,
            )
        result.reports.append(report)
    return result
