"""Reproducible mixed query/update workload traces.

The paper's dynamic-graph argument (§1, §6.5) is about *mixed* traffic: an
index-free method keeps answering real-time queries while the graph churns,
whereas index-based baselines pay maintenance between reads.  This module
generates the traffic side of that experiment as a :class:`WorkloadTrace` —
an ordered sequence of arrival batches, each either a batch of single-source
queries or a batch of edge updates — with the knobs real serving traces have:

- **read/write ratio** (``read_fraction``): the op-level probability that an
  operation is a query rather than an edge update;
- **key skew** (``zipf_s``): query nodes are drawn from a Zipf distribution
  over the eligible nodes (``s = 0`` degenerates to uniform), so hot keys
  repeat within and across batches — the shape that exercises the service's
  batch deduplication;
- **insert/delete mix** (``insert_fraction``): forwarded to
  :class:`~repro.graph.dynamic.MutationSampler`, which keeps every update
  valid against the evolving graph;
- **batch arrival sizes** (``max_query_batch`` / ``max_update_batch``):
  consecutive same-kind operations coalesce into one arrival batch, capped
  at the configured maximum — so batch size never distorts the op-level
  read/write ratio.

Everything is drawn from one :class:`numpy.random.Generator`, so a trace is
a pure function of ``(graph, config, seed)`` — replaying it twice gives the
driver (:mod:`repro.workloads.driver`) bit-identical inputs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from hashlib import blake2b
from typing import Iterator

import numpy as np

from repro.errors import EvaluationError
from repro.graph.csr import as_csr
from repro.graph.digraph import DiGraph
from repro.graph.dynamic import EdgeUpdate, MutationSampler
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["TraceBatch", "WorkloadConfig", "WorkloadTrace", "generate_workload"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of one generated workload (echoed into every report).

    Parameters
    ----------
    num_ops:
        Total operations (queries + updates) in the trace; must be positive.
    read_fraction:
        Op-level probability in ``[0, 1]`` that an operation is a query.
    zipf_s:
        Zipf skew exponent for query-node popularity; ``0.0`` is uniform,
        ``~1.0`` is web-like skew.  Must be non-negative.
    insert_fraction:
        Probability in ``[0, 1]`` that an edge update is an insertion.
    max_query_batch:
        Largest query arrival-batch size (consecutive query ops coalesce up
        to this cap).
    max_update_batch:
        Largest update arrival-batch size (consecutive update ops coalesce
        up to this cap).
    seed:
        Trace seed; two generations with equal ``(graph, config)`` and equal
        seeds produce identical traces.

    Raises
    ------
    EvaluationError
        From :meth:`validate`, if any knob is out of range.
    """

    num_ops: int = 1000
    read_fraction: float = 0.9
    zipf_s: float = 1.0
    insert_fraction: float = 0.5
    max_query_batch: int = 8
    max_update_batch: int = 4
    seed: int | None = None

    def validate(self) -> None:
        """Check every knob, raising :class:`EvaluationError` on the first bad one."""
        try:
            check_positive_int("num_ops", self.num_ops)
            check_positive_int("max_query_batch", self.max_query_batch)
            check_positive_int("max_update_batch", self.max_update_batch)
            check_fraction("read_fraction", self.read_fraction)
            check_fraction("insert_fraction", self.insert_fraction)
        except Exception as exc:
            raise EvaluationError(str(exc)) from None
        if self.zipf_s < 0:
            raise EvaluationError(f"zipf_s must be non-negative, got {self.zipf_s}")

    def as_dict(self) -> dict[str, object]:
        """Flat dict for JSON reports."""
        return asdict(self)


@dataclass(frozen=True)
class TraceBatch:
    """One arrival: a batch of queries **or** a batch of edge updates.

    Exactly one of ``queries`` / ``updates`` is non-empty, according to
    ``kind`` (``"query"`` or ``"update"``).  ``offset`` is the index of the
    batch's first operation in the trace's global op order, so drivers can
    label per-op records without re-counting.
    """

    kind: str
    offset: int
    queries: tuple[int, ...] = ()
    updates: tuple[EdgeUpdate, ...] = ()

    def __len__(self) -> int:
        return len(self.queries) if self.kind == "query" else len(self.updates)


class WorkloadTrace:
    """An immutable, replayable sequence of arrival batches.

    Iterating yields :class:`TraceBatch` in arrival order.  The trace also
    carries the generating :class:`WorkloadConfig` so reports are
    self-describing.
    """

    def __init__(self, batches: list[TraceBatch], config: WorkloadConfig) -> None:
        self._batches = tuple(batches)
        self.config = config

    def __len__(self) -> int:
        return len(self._batches)

    def __iter__(self) -> Iterator[TraceBatch]:
        return iter(self._batches)

    def __getitem__(self, index: int) -> TraceBatch:
        return self._batches[index]

    @property
    def num_queries(self) -> int:
        """Total query operations across all batches."""
        return sum(len(b) for b in self._batches if b.kind == "query")

    @property
    def num_updates(self) -> int:
        """Total edge-update operations across all batches."""
        return sum(len(b) for b in self._batches if b.kind == "update")

    @property
    def num_ops(self) -> int:
        """Total operations (queries + updates)."""
        return self.num_queries + self.num_updates

    def query_nodes(self) -> list[int]:
        """Every queried node in op order (duplicates preserved)."""
        return [q for b in self._batches if b.kind == "query" for q in b.queries]

    def signature(self) -> str:
        """Content digest of the trace (op kinds, nodes, edges — not timings).

        Two traces with equal signatures are operation-for-operation
        identical; the reproducibility tests and the driver's report use
        this to pin "same trace" down to bytes.
        """
        h = blake2b(digest_size=16)
        for batch in self._batches:
            h.update(b"Q" if batch.kind == "query" else b"U")
            for q in batch.queries:
                h.update(q.to_bytes(8, "little"))
            for u in batch.updates:
                h.update(b"+" if u.kind == "insert" else b"-")
                h.update(u.source.to_bytes(8, "little"))
                h.update(u.target.to_bytes(8, "little"))
        return h.hexdigest()

    def __repr__(self) -> str:
        return (
            f"WorkloadTrace(batches={len(self)}, queries={self.num_queries}, "
            f"updates={self.num_updates})"
        )


def _query_distribution(graph, zipf_s: float, rng) -> tuple[np.ndarray, np.ndarray]:
    """Eligible query nodes and their Zipf sampling probabilities.

    Eligibility follows the paper's §6.1 protocol (nonzero in-degree).  Node
    popularity ranks are a seeded permutation of the eligible set, weighted
    ``1 / rank**zipf_s`` — so the *hot set* itself is reproducible from the
    trace seed, not an artifact of node numbering.
    """
    csr = as_csr(graph)
    eligible = np.nonzero(csr.in_degrees > 0)[0]
    if len(eligible) == 0:
        raise EvaluationError("graph has no nodes with nonzero in-degree to query")
    ranked = rng.permutation(eligible)
    weights = 1.0 / np.power(np.arange(1, len(ranked) + 1, dtype=np.float64), zipf_s)
    return ranked, weights / weights.sum()


def generate_workload(
    graph: DiGraph,
    config: WorkloadConfig | None = None,
    **overrides,
) -> WorkloadTrace:
    """Generate a reproducible interleaved query/update trace for ``graph``.

    Operations are drawn one at a time (query with probability
    ``read_fraction``, update otherwise) and consecutive same-kind
    operations coalesce into arrival batches capped at the configured
    maxima — so the op-level read/write ratio matches ``read_fraction`` in
    expectation regardless of the batch-size knobs.  Updates are drawn from
    a :class:`~repro.graph.dynamic.MutationSampler` over a scratch copy, so
    the whole trace is valid when its updates are applied in order.

    Parameters
    ----------
    graph:
        Graph the trace will be replayed against (not modified).
    config:
        A :class:`WorkloadConfig`; defaults to ``WorkloadConfig()``.
    overrides:
        Keyword overrides applied on top of ``config``
        (``generate_workload(g, num_ops=500, seed=7)``).

    Returns
    -------
    WorkloadTrace
        The generated trace, carrying the effective config.

    Raises
    ------
    EvaluationError
        If the config is invalid or ``graph`` has no eligible query nodes.
    GraphError
        If an update is drawn and ``graph`` is too small/full for the
        update sampler (see :class:`~repro.graph.dynamic.MutationSampler`);
        pure-read traces never construct the sampler.
    """
    config = config or WorkloadConfig()
    if overrides:
        config = WorkloadConfig(**{**config.as_dict(), **overrides})
    config.validate()
    rng = as_generator(config.seed)
    ranked, probs = _query_distribution(graph, config.zipf_s, rng)
    # lazy: pure-read traces never pay the sampler's scratch-graph copy
    # (and a graph too small to mutate is fine as long as no update is drawn)
    sampler: MutationSampler | None = None

    batches: list[TraceBatch] = []
    emitted = 0

    def flush(kind: str, size: int) -> None:
        """Materialize one coalesced run of ``size`` same-kind ops."""
        nonlocal sampler, emitted
        if kind == "query":
            nodes = rng.choice(ranked, size=size, p=probs)  # with replacement: hot keys repeat
            batch = TraceBatch(
                kind="query", offset=emitted,
                queries=tuple(int(v) for v in nodes),
            )
        else:
            if sampler is None:
                sampler = MutationSampler(
                    graph, insert_fraction=config.insert_fraction, seed=rng
                )
            batch = TraceBatch(
                kind="update", offset=emitted,
                updates=tuple(sampler.sample_many(size)),
            )
        batches.append(batch)
        emitted += size

    # one read/write coin per OP (the documented op-level ratio); consecutive
    # same-kind ops coalesce into an arrival batch capped at the configured max
    pending_kind: str | None = None
    pending_size = 0
    for _ in range(config.num_ops):
        kind = "query" if rng.random() < config.read_fraction else "update"
        cap = config.max_query_batch if kind == "query" else config.max_update_batch
        if kind != pending_kind or pending_size >= cap:
            if pending_size:
                flush(pending_kind, pending_size)
            pending_kind, pending_size = kind, 0
        pending_size += 1
    if pending_size:
        flush(pending_kind, pending_size)
    return WorkloadTrace(batches, config)
