"""Latency accounting for the workload driver.

Per-operation latencies are recorded into a :class:`LatencyHistogram`, which
keeps both the exact samples (for precise p50/p95/p99 over the modest op
counts a trace holds) and fixed log-spaced bucket counts (for the compact
JSON reports the benchmark harness persists — bucket edges are identical
across methods and runs, so reports are directly comparable).
"""

from __future__ import annotations

import numpy as np

from repro.errors import EvaluationError

__all__ = ["LatencyHistogram"]

#: shared log-spaced bucket edges (seconds): 1µs .. 100s, 4 buckets/decade.
BUCKET_EDGES = np.logspace(-6, 2, num=33)


class LatencyHistogram:
    """Accumulates per-op latencies; summarizes percentiles and buckets.

    >>> h = LatencyHistogram()
    >>> for ms in (1, 2, 3, 4, 100):
    ...     h.record(ms / 1000)
    >>> h.count
    5
    >>> round(h.percentile(50) * 1000)
    3
    """

    def __init__(self) -> None:
        self._samples: list[float] = []

    def record(self, seconds: float) -> None:
        """Add one latency sample (non-negative seconds).

        Raises
        ------
        EvaluationError
            If ``seconds`` is negative.
        """
        if seconds < 0:
            raise EvaluationError(f"latency must be non-negative, got {seconds}")
        self._samples.append(float(seconds))

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's samples into this one."""
        self._samples.extend(other._samples)

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self._samples)

    @property
    def mean(self) -> float:
        """Mean latency in seconds (0.0 when empty)."""
        return float(np.mean(self._samples)) if self._samples else 0.0

    @property
    def max(self) -> float:
        """Largest recorded latency in seconds (0.0 when empty)."""
        return float(np.max(self._samples)) if self._samples else 0.0

    def percentile(self, q: float) -> float:
        """Exact ``q``-th percentile (0-100) over the samples, in seconds.

        Raises
        ------
        EvaluationError
            If ``q`` is outside ``[0, 100]``.
        """
        if not 0 <= q <= 100:
            raise EvaluationError(f"percentile must be in [0, 100], got {q}")
        if not self._samples:
            return 0.0
        return float(np.percentile(self._samples, q))

    def bucket_counts(self) -> list[int]:
        """Sample counts per shared log-spaced bucket (see ``BUCKET_EDGES``).

        Samples outside the bucket range are clamped into the first/last
        bucket, so ``sum(bucket_counts()) == count`` always holds and the
        persisted histogram never silently drops an outlier (the exact
        ``max_s`` in :meth:`summary` still reports the true extreme).
        """
        if not self._samples:
            return [0] * (len(BUCKET_EDGES) - 1)
        # np.histogram's last bin is closed on the right, so clamping to the
        # outermost edges lands every outlier in an end bucket
        clamped = np.clip(self._samples, BUCKET_EDGES[0], BUCKET_EDGES[-1])
        counts, _ = np.histogram(clamped, bins=BUCKET_EDGES)
        return [int(c) for c in counts]

    def summary(self) -> dict[str, float]:
        """The headline numbers every report carries (seconds)."""
        return {
            "count": self.count,
            "mean_s": self.mean,
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
            "max_s": self.max,
        }

    def to_dict(self) -> dict[str, object]:
        """JSON-ready dict: summary plus the shared-bucket histogram."""
        return {
            **self.summary(),
            "bucket_edges_s": [float(e) for e in BUCKET_EDGES],
            "bucket_counts": self.bucket_counts(),
        }

    def __repr__(self) -> str:
        return (
            f"LatencyHistogram(count={self.count}, p50={self.percentile(50):.6f}s, "
            f"p99={self.percentile(99):.6f}s)"
        )
