"""Known-bad Capabilities declarations (fixture corpus — never imported)."""

from repro.api.estimator import Capabilities


def partial_caps() -> Capabilities:
    return Capabilities(  # finding: omits the four defaulted fields
        method="corpus",
        exact=False,
        index_based=False,
        supports_dynamic=True,
    )


def full_caps() -> Capabilities:
    return Capabilities(  # ok: every field explicit
        method="corpus",
        exact=False,
        index_based=False,
        supports_dynamic=True,
        incremental_updates=False,
        vectorized=False,
        parallel_safe=True,
        native=False,
    )
