"""Known-bad determinism snippets (fixture corpus — never imported).

Each function demonstrates one determinism finding; tests assert the
exact locations, so keep line numbers stable when editing.
"""

import random
import secrets
import time

import numpy as np


def draw_global() -> float:
    return random.random()  # finding: process-global RNG


def draw_unseeded():
    return np.random.default_rng()  # finding: OS entropy


def draw_default_none(seed=None):
    return np.random.default_rng(seed)  # finding: seed defaults to None


def draw_legacy() -> float:
    return np.random.rand()  # finding: legacy global numpy RNG


def machine_token() -> str:
    return secrets.token_hex(4)  # finding: machine entropy


def stamp() -> float:
    return time.time()  # finding: wall clock
