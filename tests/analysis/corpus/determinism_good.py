"""Determinism negatives: seed-derived draws and monotonic clocks."""

import time

import numpy as np


def draw_seeded(seed: int):
    return np.random.default_rng(seed)  # ok: seed is a required parameter


def draw_literal():
    return np.random.default_rng(7)  # ok: concrete seed


def elapsed() -> float:
    return time.monotonic()  # ok: monotonic, not wall clock


def measure() -> float:
    return time.perf_counter()  # ok
