"""Known-bad resource-lifecycle snippets (fixture corpus — never imported)."""

import mmap
import os
from multiprocessing import shared_memory


def leak_mapping(path: str) -> bytes:
    fd = os.open(path, os.O_RDONLY)
    mapping = mmap.mmap(fd, 0)  # finding: read() below can raise, mapping leaks
    header = mapping.read(16)
    mapping.close()
    os.close(fd)
    return header


def leak_segment(name: str) -> int:
    segment = shared_memory.SharedMemory(name=name)  # finding: no guard at all
    size = segment.size
    return size


def drop_segment(name: str) -> None:
    shared_memory.SharedMemory(name=name)  # finding: constructed and dropped
