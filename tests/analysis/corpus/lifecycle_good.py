"""Resource-lifecycle negatives: every accepted ownership pattern."""

import mmap
import os
import weakref
from multiprocessing import shared_memory


class Holder:
    def __init__(self, segment: shared_memory.SharedMemory) -> None:
        self.segment = segment


def with_block(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read(16)


def wrap_then_guard(name: str) -> shared_memory.SharedMemory:
    segment = shared_memory.SharedMemory(name=name)
    try:
        if segment.size == 0:
            raise ValueError(name)
    except BaseException:
        segment.close()
        raise
    return segment


def try_finally(path: str) -> int:
    fd = os.open(path, os.O_RDONLY)
    try:
        return os.stat(fd).st_size
    finally:
        os.close(fd)


def transfer_by_return(fd: int) -> "mmap.mmap":
    mapping = mmap.mmap(fd, 0)
    return mapping


def transfer_to_holder(name: str) -> Holder:
    segment = shared_memory.SharedMemory(name=name)
    return Holder(segment)


def registered_finalizer(name: str) -> shared_memory.SharedMemory:
    segment = shared_memory.SharedMemory(name=name)
    weakref.finalize(segment, shared_memory.SharedMemory.close, segment)
    return segment
