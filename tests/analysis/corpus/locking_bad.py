"""Known-bad lock-discipline snippets (fixture corpus — never imported)."""

import threading


class Counter:
    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.hits = 0  # guarded-by: lock
        self.entries: list[int] = []  # guarded-by: lock

    def record_unlocked(self) -> None:
        self.hits += 1  # finding: mutation outside the lock

    def record_locked(self) -> None:
        with self.lock:
            self.hits += 1  # ok

    def append_unlocked(self, value: int) -> None:
        self.entries.append(value)  # finding: mutator call outside the lock

    # holds-lock: lock
    def _bump_assuming_held(self) -> None:
        self.hits += 1  # ok: annotated caller-holds-lock


class SubCounter(Counter):
    def reset(self) -> None:
        self.hits = 0  # finding: inherited guard annotation applies here
