"""Known-bad server API-contract snippets (fixture corpus — never imported).

Lives under a ``server/`` directory because the envelope checks are
scoped to server code, mirroring ``src/repro/server/``.
"""

_ERROR_CODES = {400: "bad_request", 404: "not_found"}


def render_response(status: int, body: bytes) -> tuple[int, bytes]:
    return status, body


def _error_response(status: int, detail: str) -> tuple[int, bytes]:
    error = {"error": {"code": _ERROR_CODES.get(status, "internal"), "detail": detail}}
    return render_response(status, repr(error).encode())


def handle_naked_error() -> tuple[int, bytes]:
    return render_response(500, b"boom")  # finding: no error envelope


def handle_unregistered_status() -> tuple[int, bytes]:
    return _error_response(418, "teapot")  # finding: 418 missing from _ERROR_CODES


def handle_ok() -> tuple[int, bytes]:
    return render_response(200, b"{}")  # ok: 2xx needs no envelope


def handle_registered() -> tuple[int, bytes]:
    return _error_response(404, "nope")  # ok: slug registered
