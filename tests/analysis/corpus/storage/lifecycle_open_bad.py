"""Known-bad plain-open snippets, scoped to a ``storage/`` directory
(mirrors ``src/repro/storage/`` where WAL/snapshot opens are tracked)."""


def read_header_leaky(path: str) -> bytes:
    handle = open(path, "rb")  # finding: read can raise, handle leaks
    header = handle.read(16)
    handle.close()
    return header


def read_header_safe(path: str) -> bytes:
    with open(path, "rb") as handle:  # ok: context manager
        return handle.read(16)


def wrap_then_guard(path: str) -> object:
    handle = open(path, "rb")  # ok: immediately guarded, WAL-style
    try:
        if handle.read(1) != b"\x01":
            raise ValueError(path)
    except BaseException:
        handle.close()
        raise
    return handle
