"""Known-bad thread-spawn snippets (fixture corpus — never imported)."""

import threading
from concurrent.futures import ThreadPoolExecutor


def spawn_thread() -> threading.Thread:
    worker = threading.Thread(target=print)  # finding: raw thread
    worker.start()
    return worker


def spawn_pool() -> ThreadPoolExecutor:
    return ThreadPoolExecutor(max_workers=2)  # finding: raw executor


def spawn_timer() -> threading.Timer:
    return threading.Timer(1.0, print)  # finding: threading.Timer spawns


class Timer:
    """Same name as the perf-timing helper: must NOT be flagged."""

    def __enter__(self) -> "Timer":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


def time_something() -> Timer:
    timer = Timer()  # ok: the repo's perf Timer, not threading.Timer
    return timer
