"""Tests for the analysis runner, baseline machinery, and visitor index."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import Baseline, BaselineEntry, analyze, default_target
from repro.analysis.report import render_json, render_text
from repro.analysis.runner import collect_files, default_baseline_path
from repro.analysis.visitor import (
    DEFAULT_CAPABILITIES_FIELDS,
    ProjectIndex,
    SourceFile,
)
from repro.errors import AnalysisError, ReproError


def write(tmp_path: Path, name: str, body: str) -> Path:
    path = tmp_path / name
    path.write_text(textwrap.dedent(body))
    return path


class TestCollectFiles:
    def test_missing_path_is_config_error(self, tmp_path):
        with pytest.raises(AnalysisError, match="does not exist"):
            collect_files([tmp_path / "nope.py"])

    def test_non_python_file_rejected(self, tmp_path):
        path = write(tmp_path, "notes.txt", "hello")
        with pytest.raises(AnalysisError, match="not a python file"):
            collect_files([path])

    def test_pycache_skipped_and_duplicates_collapsed(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "mod.py").write_text("x = 1\n")
        real = write(tmp_path, "mod.py", "x = 1\n")
        files = collect_files([tmp_path, real])
        assert files == [real.resolve()]

    def test_analysis_error_is_a_repro_error(self):
        assert issubclass(AnalysisError, ReproError)


class TestAnalyzeRunner:
    def test_parse_error_becomes_finding_not_crash(self, tmp_path):
        bad = write(tmp_path, "broken.py", "def oops(:\n")
        report = analyze([bad], root=tmp_path)
        assert report.files_scanned == 1
        assert [f.rule for f in report.findings] == ["parse-error"]
        assert report.findings[0].path == "broken.py"
        assert report.findings[0].key == "<module>:parse"
        assert not report.is_clean()

    def test_clean_file_is_clean(self, tmp_path):
        good = write(tmp_path, "fine.py", "import time\n\nSTART = time.monotonic()\n")
        report = analyze([good], root=tmp_path)
        assert report.findings == []
        assert report.is_clean(strict=True)

    def test_duplicate_identities_get_suffixes(self, tmp_path):
        src = write(
            tmp_path,
            "dupes.py",
            """
            import random


            def draw() -> float:
                a = random.random()
                b = random.random()
                return a + b
            """,
        )
        report = analyze([src], root=tmp_path)
        keys = [f.key for f in report.findings]
        assert keys == ["draw:rng:random.random", "draw:rng:random.random#2"]

    def test_default_target_is_the_installed_package(self):
        target = default_target()
        assert target.name == "repro"
        assert (target / "analysis").is_dir()


class TestBaseline:
    def test_empty_baseline_suppresses_nothing(self, tmp_path):
        src = write(tmp_path, "mod.py", "import random\n\nX = random.random()\n")
        report = analyze([src], root=tmp_path)
        assert len(report.findings) == 1
        assert report.suppressed == []

    def test_matching_entry_suppresses(self, tmp_path):
        src = write(tmp_path, "mod.py", "import random\n\nX = random.random()\n")
        baseline = Baseline(
            entries=[
                BaselineEntry(
                    rule="determinism",
                    path="mod.py",
                    key="<module>:rng:random.random",
                    justification="fixture",
                )
            ]
        )
        report = analyze([src], root=tmp_path, baseline=baseline)
        assert report.findings == []
        assert [f.key for f in report.suppressed] == ["<module>:rng:random.random"]
        assert report.stale_baseline == []
        assert report.is_clean(strict=True)

    def test_stale_entry_fails_only_under_strict(self, tmp_path):
        src = write(tmp_path, "mod.py", "X = 1\n")
        baseline = Baseline(
            entries=[
                BaselineEntry(
                    rule="determinism",
                    path="gone.py",
                    key="gone:rng:random.random",
                    justification="obsolete",
                )
            ]
        )
        report = analyze([src], root=tmp_path, baseline=baseline)
        assert len(report.stale_baseline) == 1
        assert report.is_clean()
        assert not report.is_clean(strict=True)

    def test_load_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "suppressions": [
                {"rule": "determinism", "path": "a.py", "key": "f:rng:random.random",
                 "justification": "because"},
            ],
        }))
        baseline = Baseline.load(path)
        assert [e.identity() for e in baseline.entries] == [
            ("determinism", "a.py", "f:rng:random.random")
        ]

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(AnalysisError, match="baseline"):
            Baseline.load(tmp_path / "nope.json")

    def test_load_rejects_bad_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 2, "suppressions": []}))
        with pytest.raises(AnalysisError, match="version"):
            Baseline.load(path)

    def test_load_rejects_empty_justification(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "suppressions": [
                {"rule": "r", "path": "p.py", "key": "k", "justification": "  "},
            ],
        }))
        with pytest.raises(AnalysisError, match="justification"):
            Baseline.load(path)

    def test_load_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(AnalysisError):
            Baseline.load(path)

    def test_default_baseline_path(self, tmp_path):
        assert default_baseline_path(tmp_path) == tmp_path / ".analysis-baseline.json"


class TestReporters:
    @pytest.fixture()
    def report(self, tmp_path):
        src = write(tmp_path, "mod.py", "import random\n\nX = random.random()\n")
        return analyze([src], root=tmp_path)

    def test_text_report_has_location_and_summary(self, report):
        text = render_text(report)
        assert "mod.py:3:" in text
        assert "[determinism]" in text
        assert "1 finding(s)" in text

    def test_json_report_parses_and_carries_findings(self, report):
        payload = json.loads(render_json(report))
        assert payload["clean"] is False
        assert payload["files_scanned"] == 1
        assert payload["findings"][0]["rule"] == "determinism"
        assert payload["findings"][0]["path"] == "mod.py"

    def test_strict_text_mentions_stale_entries(self, tmp_path):
        src = write(tmp_path, "ok.py", "X = 1\n")
        baseline = Baseline(entries=[BaselineEntry("r", "gone.py", "k", "old")])
        report = analyze([src], root=tmp_path, baseline=baseline)
        text = render_text(report, strict=True)
        assert "stale" in text
        assert "gone.py" in text


class TestVisitorAnnotations:
    def make_index(self, tmp_path, body):
        path = write(tmp_path, "mod.py", body)
        src = SourceFile.load(path, "mod.py")
        return src, ProjectIndex.build([src])

    def test_trailing_and_standalone_guard_comments(self, tmp_path):
        src, index = self.make_index(
            tmp_path,
            """
            class Service:
                def __init__(self) -> None:
                    self.hits = 0  # guarded-by: _lock
                    # guarded-by: _lock
                    self.entries = {}
            """,
        )
        assert index.effective_guards("Service") == {
            "hits": "_lock",
            "entries": "_lock",
        }

    def test_guards_inherited_across_bases(self, tmp_path):
        src, index = self.make_index(
            tmp_path,
            """
            class Base:
                def __init__(self) -> None:
                    self.count = 0  # guarded-by: lock


            class Child(Base):
                pass
            """,
        )
        assert index.effective_guards("Child") == {"count": "lock"}

    def test_holds_lock_annotation_attaches_to_function(self, tmp_path):
        src, index = self.make_index(
            tmp_path,
            """
            class Service:
                # holds-lock: _lock
                def _bump(self) -> None:
                    self.hits += 1
            """,
        )
        assert src.holds_lock.get("Service._bump") == "_lock"

    def test_capabilities_fields_default_tuple_has_eight(self):
        assert len(DEFAULT_CAPABILITIES_FIELDS) == 8
        assert DEFAULT_CAPABILITIES_FIELDS[0] == "method"
