"""Exit-code and output-format tests for ``repro analyze``."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.cli import main

CORPUS = Path(__file__).parent / "corpus"
REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture()
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text("import time\n\nSTART = time.monotonic()\n")
    return str(path)


@pytest.fixture()
def dirty_file(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text("import random\n\nX = random.random()\n")
    return str(path)


class TestExitCodes:
    def test_clean_target_exits_zero(self, clean_file, capsys):
        assert main(["analyze", clean_file, "--no-baseline"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, dirty_file, capsys):
        assert main(["analyze", dirty_file, "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "[determinism]" in out
        assert "1 finding(s)" in out

    def test_corpus_exits_one(self, capsys):
        assert main(["analyze", str(CORPUS), "--no-baseline"]) == 1
        assert "finding(s)" in capsys.readouterr().out

    def test_missing_target_is_config_error(self, tmp_path, capsys):
        code = main(["analyze", str(tmp_path / "nope.py"), "--no-baseline"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_baseline_file_is_config_error(self, dirty_file, tmp_path, capsys):
        code = main(["analyze", dirty_file,
                     "--baseline", str(tmp_path / "nope.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestBaselineFlags:
    def test_explicit_baseline_suppresses(self, dirty_file, tmp_path, capsys,
                                          monkeypatch):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "suppressions": [
                {"rule": "determinism", "path": "dirty.py",
                 "key": "<module>:rng:random.random",
                 "justification": "fixture"},
            ],
        }))
        monkeypatch.chdir(tmp_path)  # finding paths anchor at the cwd
        code = main(["analyze", "dirty.py", "--baseline", str(baseline)])
        assert code == 0
        assert "1 suppressed" in capsys.readouterr().out

    def test_stale_entry_fails_under_strict(self, clean_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "suppressions": [
                {"rule": "determinism", "path": "gone.py",
                 "key": "gone:rng:random.random", "justification": "obsolete"},
            ],
        }))
        assert main(["analyze", clean_file, "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        code = main(["analyze", clean_file, "--baseline", str(baseline), "--strict"])
        assert code == 1
        assert "stale" in capsys.readouterr().out

    def test_suppressions_are_path_relative_to_cwd(self, tmp_path, capsys,
                                                   monkeypatch):
        # The committed baseline stores src/repro/... paths; matching is
        # anchored at the invocation cwd, like the CI job.
        (tmp_path / "pkg").mkdir()
        src = tmp_path / "pkg" / "mod.py"
        src.write_text("import random\n\nX = random.random()\n")
        baseline = tmp_path / ".analysis-baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "suppressions": [
                {"rule": "determinism", "path": "pkg/mod.py",
                 "key": "<module>:rng:random.random",
                 "justification": "fixture"},
            ],
        }))
        monkeypatch.chdir(tmp_path)
        # auto-discovered ./.analysis-baseline.json, no flag needed
        assert main(["analyze", "pkg"]) == 0
        assert "1 suppressed" in capsys.readouterr().out


class TestJsonOutput:
    def test_json_payload_parses(self, dirty_file, capsys):
        assert main(["analyze", dirty_file, "--no-baseline", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["findings"][0]["rule"] == "determinism"
        assert payload["findings"][0]["line"] == 3
        assert set(payload["rules"]) >= {
            "determinism", "lock-discipline", "resource-lifecycle",
            "api-contract", "no-bare-thread",
        }

    def test_json_clean_payload(self, clean_file, capsys):
        assert main(["analyze", clean_file, "--no-baseline", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["findings"] == []


class TestSubprocessEntryPoint:
    def test_module_invocation_matches_in_process(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(textwrap.dedent(
            """
            import random

            X = random.random()
            """
        ))
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "analyze", str(dirty),
             "--no-baseline"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert proc.returncode == 1
        assert "[determinism]" in proc.stdout

    def test_repo_default_target_with_committed_baseline(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "analyze", "--strict"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout
