"""Self-check: the analyzer runs clean over the repo's own source tree
modulo the committed baseline — the same gate CI enforces."""

from pathlib import Path

import pytest

from repro.analysis import Baseline, analyze, default_target, iter_rules

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = REPO_ROOT / ".analysis-baseline.json"


@pytest.fixture(scope="module")
def repo_report():
    baseline = Baseline.load(BASELINE_PATH)
    return analyze([default_target()], root=REPO_ROOT, baseline=baseline)


def test_repo_is_clean_modulo_baseline(repo_report):
    rendered = "\n".join(f.render() for f in repo_report.findings)
    assert repo_report.findings == [], f"new findings:\n{rendered}"


def test_no_stale_baseline_entries(repo_report):
    stale = [e.identity() for e in repo_report.stale_baseline]
    assert stale == [], f"stale baseline entries: {stale}"
    assert repo_report.is_clean(strict=True)


def test_baseline_suppressions_all_match(repo_report):
    # every committed suppression corresponds to a live finding
    baseline = Baseline.load(BASELINE_PATH)
    assert len(repo_report.suppressed) == len(baseline.entries)


def test_every_suppression_is_justified():
    baseline = Baseline.load(BASELINE_PATH)
    for entry in baseline.entries:
        assert len(entry.justification.split()) >= 4, entry.identity()


def test_all_five_rules_registered():
    assert {rule.rule_id for rule in iter_rules()} == {
        "determinism",
        "lock-discipline",
        "resource-lifecycle",
        "api-contract",
        "no-bare-thread",
    }


def test_scan_covers_the_whole_package(repo_report):
    # the analyzer must see every module under src/repro (a subdir being
    # silently skipped would quietly disable the gate for that tier)
    expected = len([
        p for p in (REPO_ROOT / "src" / "repro").rglob("*.py")
        if "__pycache__" not in p.parts
    ])
    assert repo_report.files_scanned == expected
